//! Deterministic-load harness (ISSUE acceptance, DESIGN.md §11).
//!
//! A seeded open-loop arrival schedule is replayed through the
//! virtual-time simulator — the exact same admission/breaker/drain state
//! machines the threaded server runs — against real [`TklusEngine`]s
//! (clean and `FaultPager`-backed). Each scenario asserts one pillar:
//!
//! * admitted queries return **bitwise-identical** results to an
//!   unloaded reference engine, or a **typed degraded** exact prefix;
//! * shed/evict/degrade decisions are **deterministic per seed**;
//! * the circuit breaker **provably trips and recovers** under injected
//!   storage faults, shedding typed `CircuitOpen` while open;
//! * a graceful **drain never silently loses** an admitted query: every
//!   ticket is accounted for by name;
//! * under saturation, shedding is **priority-ordered** (Low before High).
//!
//! Scenarios run under seeds 1/2/3 (the CI overload matrix); set
//! `TKLUS_LOAD_SEED` to pin one seed, `TKLUS_SOAK=1` (nightly) to widen
//! the schedule 10×.

use std::collections::BTreeSet;
use std::sync::Arc;
use tklus_core::{
    BoundsMode, Completeness, EngineConfig, MetadataStoreFactory, RankedUser, Ranking, TklusEngine,
};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Priority, Semantics, TklusQuery};
use tklus_serve::sim::{
    generate_plan, run_sim, Disposition, DrainPlan, LoadConfig, SimConfig, SimResult,
};
use tklus_serve::{BreakerConfig, BreakerState, DegradePolicy, Rejected, ServeConfig, TklusServer};
use tklus_storage::{FaultConfig, FaultHandle, FaultPager, MemPager, PageStore};

/// Seeds each scenario runs under; `TKLUS_LOAD_SEED` (the CI matrix
/// variable) replaces the whole list with one seed.
fn load_seeds() -> Vec<u64> {
    match std::env::var("TKLUS_LOAD_SEED") {
        Ok(s) => vec![s.parse().expect("TKLUS_LOAD_SEED must be a u64")],
        Err(_) => vec![1, 2, 3],
    }
}

/// Nightly soak widens every schedule 10×; default is CI-sized.
fn soak_factor() -> usize {
    if std::env::var("TKLUS_SOAK").is_ok_and(|v| v == "1") {
        10
    } else {
        1
    }
}

fn corpus() -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: 300,
        users: 60,
        vocab_size: 300,
        ..GenConfig::default()
    })
}

fn workload(corpus: &Corpus) -> Vec<(TklusQuery, Ranking)> {
    let specs = generate_queries(corpus, &QueryConfig { per_bucket: 4, seed: 0x10AD });
    specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking =
                if i % 3 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            let q = TklusQuery::new(spec.location, 15.0, spec.keywords, 5, semantics)
                .expect("generated query is valid");
            (q, ranking)
        })
        .collect()
}

/// `parallelism: 1` keeps execution order — and therefore any seeded
/// fault schedule — deterministic; `cache_pages: 0` keeps the buffer
/// pool from masking injected faults.
fn engine_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

fn clean_engine(corpus: &Corpus) -> TklusEngine {
    TklusEngine::build(corpus, &engine_config()).0
}

fn faulty_store(cfg: FaultConfig, handle: Arc<FaultHandle>) -> MetadataStoreFactory {
    Arc::new(move |stats| {
        Box::new(FaultPager::with_handle(MemPager::with_stats(stats), cfg, Arc::clone(&handle)))
            as Box<dyn PageStore>
    })
}

fn assert_same_users(got: &[RankedUser], want: &[RankedUser], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result size");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.user, w.user, "{ctx}");
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{ctx}: {} vs {}", g.score, w.score);
    }
}

/// A saturating open-loop schedule: arrivals outpace 3 workers.
fn saturating_load(seed: u64) -> LoadConfig {
    LoadConfig {
        seed,
        requests: 240 * soak_factor(),
        mean_interarrival_ms: 2,
        deadline_ms: 60,
        mean_service_ms: 7,
        priority_weights: [1, 2, 1],
    }
}

fn saturating_serve() -> ServeConfig {
    ServeConfig {
        workers: 3,
        queue_capacity: 8,
        default_deadline_ms: 60,
        est_service_ms: 7,
        degrade: Some(DegradePolicy { queue_threshold: 4, max_cells: 2 }),
        breaker: BreakerConfig::default(),
    }
}

/// Pillar 1: every admitted-and-completed query under load is either
/// bitwise-identical to the unloaded reference or a typed degraded answer
/// equal to the reference run under the same tightened budget.
#[test]
fn admitted_results_match_reference_or_degrade_typed() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let engine = clean_engine(&corpus);
    let reference = clean_engine(&corpus);
    let serve = saturating_serve();
    let policy = serve.degrade.expect("scenario uses degrade");
    // The engine (and so its registry) is reused across seeds: registry
    // counters are cumulative, per-run serve rows are not.
    let mut answered_so_far = 0u64;
    let mut degraded_so_far = 0u64;
    for seed in load_seeds() {
        let plan = generate_plan(&saturating_load(seed), workload.len());
        let report =
            run_sim(&engine, &workload, &plan, &SimConfig { serve: serve.clone(), drain: None });
        let mut completed = 0usize;
        let mut degraded = 0usize;
        for (req, outcome) in plan.requests.iter().zip(&report.outcomes) {
            let Disposition::Completed { result, .. } = &outcome.disposition else {
                continue;
            };
            completed += 1;
            let SimResult::Ranked { users, completeness } = result else {
                panic!("seed {seed}: clean engine must not fail typed");
            };
            let (q, ranking) = &workload[req.query_idx];
            match completeness {
                Completeness::Complete => {
                    let want = reference.query(q, *ranking).0;
                    assert_same_users(users, &want, &format!("seed {seed} req@{}", req.arrival_ms));
                }
                Completeness::Degraded { .. } => {
                    degraded += 1;
                    // The only budget the sim applies is the degrade
                    // policy's cell cap; the same capped query on the
                    // unloaded reference must agree bitwise.
                    let capped = q.clone().with_max_cells(policy.max_cells);
                    let want = reference.try_query(&capped, *ranking).expect("fault-free");
                    assert_same_users(
                        users,
                        &want.users,
                        &format!("seed {seed} degraded req@{}", req.arrival_ms),
                    );
                    assert_eq!(*completeness, want.completeness, "seed {seed}");
                }
            }
        }
        assert!(completed > 0, "seed {seed}: nothing completed — vacuous run");
        assert!(degraded > 0, "seed {seed}: degrade mode never engaged — vacuous run");
        assert!(
            report.admission.shed_total() + report.shed_circuit > 0,
            "seed {seed}: load never saturated — vacuous run"
        );
        assert_eq!(report.degraded, degraded as u64);

        // Registry coherence (DESIGN.md §12): the end-of-run snapshot's
        // engine counters equal the cumulative answered/degraded tallies,
        // and the `tklus_serve_*` rows mirror this run's sim accounting.
        answered_so_far += completed as u64;
        degraded_so_far += degraded as u64;
        let m = &report.metrics;
        assert_eq!(m.counter("tklus_queries_total"), Some(answered_so_far), "seed {seed}");
        assert_eq!(m.counter("tklus_queries_degraded_total"), Some(degraded_so_far), "seed {seed}");
        assert_eq!(m.counter("tklus_query_errors_total"), Some(0), "seed {seed}: clean engine");
        assert_eq!(m.counter("tklus_serve_completed"), Some(completed as u64), "seed {seed}");
        assert_eq!(m.counter("tklus_serve_admitted"), Some(report.admission.admitted));
        assert_eq!(
            m.counter("tklus_serve_shed_total"),
            Some(report.admission.shed_total() + report.shed_circuit + report.shed_shutdown),
        );
        let latency = m.histogram("tklus_query_latency_us").expect("engine records latency");
        assert_eq!(latency.count, answered_so_far, "seed {seed}: one latency sample per answer");
    }
}

/// Pillar 2: the entire disposition sequence — sheds, evictions, degrade
/// choices, latencies — is a pure function of the seed.
#[test]
fn shed_decisions_are_deterministic_per_seed() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let serve = saturating_serve();
    for seed in load_seeds() {
        let plan = generate_plan(&saturating_load(seed), workload.len());
        // Two engines built independently from the same corpus: nothing
        // may leak between runs.
        let a = run_sim(
            &clean_engine(&corpus),
            &workload,
            &plan,
            &SimConfig { serve: serve.clone(), drain: None },
        );
        let b = run_sim(
            &clean_engine(&corpus),
            &workload,
            &plan,
            &SimConfig { serve: serve.clone(), drain: None },
        );
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}: nondeterministic run");
        assert_eq!(a.outcomes, b.outcomes, "seed {seed}");
        assert_eq!(a.admission, b.admission, "seed {seed}");
        // And a different seed genuinely exercises a different trajectory.
        let other = generate_plan(&saturating_load(seed.wrapping_add(7)), workload.len());
        let c = run_sim(
            &clean_engine(&corpus),
            &workload,
            &other,
            &SimConfig { serve: serve.clone(), drain: None },
        );
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed {seed}: seed has no effect");
    }
}

/// Pillar 3: with a seeded `FaultPager` underneath, the storage breaker
/// trips open (shedding typed `CircuitOpen` work at admission), goes
/// half-open after its backoff, and provably recovers to closed.
#[test]
fn breaker_trips_and_recovers_under_storage_faults() {
    let corpus = corpus();
    let workload = workload(&corpus);
    for seed in load_seeds() {
        let handle = FaultHandle::new();
        let fault = FaultConfig { seed, transient_read_ppm: 9_000, ..FaultConfig::default() };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(fault, Arc::clone(&handle))),
            ..engine_config()
        };
        let engine = TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean").0;
        handle.arm(true);
        let serve = ServeConfig {
            workers: 2,
            queue_capacity: 16,
            default_deadline_ms: 400,
            est_service_ms: 5,
            degrade: None,
            breaker: BreakerConfig {
                window: 8,
                failure_threshold: 3,
                base_backoff_ms: 40,
                max_backoff_ms: 320,
                half_open_probes: 1,
            },
        };
        let load = LoadConfig {
            seed,
            requests: 600 * soak_factor(),
            mean_interarrival_ms: 3,
            deadline_ms: 400,
            mean_service_ms: 5,
            priority_weights: [1, 2, 1],
        };
        let plan = generate_plan(&load, workload.len());
        let report = run_sim(&engine, &workload, &plan, &SimConfig { serve, drain: None });
        assert!(handle.transient_injected() > 0, "seed {seed}: no faults fired — vacuous");
        assert!(report.failed > 0, "seed {seed}: no query observed a fault");
        assert!(report.breaker_trips > 0, "seed {seed}: breaker never tripped");
        let states: Vec<BreakerState> =
            report.storage_transitions.iter().map(|&(_, s)| s).collect();
        assert!(states.contains(&BreakerState::Open), "seed {seed}: no open transition");
        assert!(states.contains(&BreakerState::HalfOpen), "seed {seed}: never probed");
        // Recovery: some HalfOpen is later followed by Closed.
        let recovered = states
            .iter()
            .position(|s| *s == BreakerState::HalfOpen)
            .is_some_and(|i| states[i..].contains(&BreakerState::Closed));
        assert!(recovered, "seed {seed}: breaker never recovered: {states:?}");
        assert!(
            report.shed_circuit > 0,
            "seed {seed}: open breaker shed nothing — arrivals never hit the open window"
        );
        let circuit_sheds = report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Shed(Rejected::CircuitOpen { breaker: "storage" })
                )
            })
            .count();
        assert_eq!(circuit_sheds as u64, report.shed_circuit, "seed {seed}");
        // Registry coherence: this engine is fresh per seed, so the
        // error counter equals exactly this run's typed failures.
        assert_eq!(report.metrics.counter("tklus_query_errors_total"), Some(report.failed));
        assert_eq!(report.metrics.counter("tklus_serve_breaker_trips"), Some(report.breaker_trips));
        assert_eq!(report.metrics.counter("tklus_serve_shed_circuit"), Some(report.shed_circuit));
    }
}

/// Pillar 4: a graceful drain accounts for every admitted ticket by name —
/// completed, answered-typed, or listed abandoned. Nothing vanishes.
#[test]
fn drain_never_silently_loses_admitted_queries() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let engine = clean_engine(&corpus);
    let serve = saturating_serve();
    for seed in load_seeds() {
        let load = saturating_load(seed);
        let plan = generate_plan(&load, workload.len());
        let mid = plan.requests[plan.requests.len() / 2].arrival_ms;
        let cfg = SimConfig {
            serve: serve.clone(),
            drain: Some(DrainPlan { at_ms: mid, deadline_ms: 4 }),
        };
        let report = run_sim(&engine, &workload, &plan, &cfg);
        let drain = report.drain.as_ref().expect("drain configured");

        // Every admitted ticket id is unique and lands in exactly one
        // terminal disposition.
        let mut admitted = BTreeSet::new();
        let mut abandoned_queued = BTreeSet::new();
        let mut abandoned_in_flight = BTreeSet::new();
        for outcome in &report.outcomes {
            match (&outcome.ticket, &outcome.disposition) {
                (None, Disposition::Shed(r)) => assert!(
                    !matches!(r, Rejected::Evicted { .. }),
                    "seed {seed}: eviction implies a ticket"
                ),
                (None, d) => panic!("seed {seed}: ticketless terminal state {d:?}"),
                (Some(id), d) => {
                    assert!(admitted.insert(*id), "seed {seed}: duplicate ticket {id}");
                    match d {
                        Disposition::AbandonedQueued => {
                            abandoned_queued.insert(*id);
                        }
                        Disposition::AbandonedInFlight { .. } => {
                            abandoned_in_flight.insert(*id);
                        }
                        Disposition::Completed { .. }
                        | Disposition::ExpiredInQueue
                        | Disposition::Shed(Rejected::Evicted { .. }) => {}
                        other => panic!("seed {seed}: admitted ticket ended as {other:?}"),
                    }
                }
            }
        }
        assert_eq!(admitted.len() as u64, report.admission.admitted, "seed {seed}");
        // The drain report names exactly the abandoned tickets.
        assert_eq!(
            drain.abandoned_queued.iter().copied().collect::<BTreeSet<_>>(),
            abandoned_queued,
            "seed {seed}"
        );
        assert_eq!(
            drain.abandoned_in_flight.iter().copied().collect::<BTreeSet<_>>(),
            abandoned_in_flight,
            "seed {seed}"
        );
        // Arrivals after the drain instant are shed typed, never queued.
        for (req, outcome) in plan.requests.iter().zip(&report.outcomes) {
            if req.arrival_ms >= mid {
                assert!(
                    matches!(outcome.disposition, Disposition::Shed(Rejected::ShuttingDown)),
                    "seed {seed}: post-drain arrival at {} was {:?}",
                    req.arrival_ms,
                    outcome.disposition
                );
            }
        }
        assert!(report.shed_shutdown > 0, "seed {seed}: drain shed nothing — vacuous");
        assert!(
            !drain.abandoned_queued.is_empty() || !drain.abandoned_in_flight.is_empty(),
            "seed {seed}: drain deadline abandoned nothing — vacuous (tighten deadline_ms)"
        );
        // Draining reports not-ready.
        assert!(!report.health.ready, "seed {seed}: draining server must not be ready");
    }
}

/// Pillar 5: under saturation, shedding is priority-ordered — Low-priority
/// work sheds at a strictly higher rate than High-priority work, and no
/// High request is ever evicted (nothing outranks it).
#[test]
fn saturation_sheds_lowest_priority_first() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let engine = clean_engine(&corpus);
    let serve = saturating_serve();
    for seed in load_seeds() {
        let plan = generate_plan(&saturating_load(seed), workload.len());
        let report =
            run_sim(&engine, &workload, &plan, &SimConfig { serve: serve.clone(), drain: None });
        let mut offered = [0usize; 3];
        let mut shed = [0usize; 3];
        for (req, outcome) in plan.requests.iter().zip(&report.outcomes) {
            offered[req.priority.index()] += 1;
            match &outcome.disposition {
                Disposition::Shed(r) => {
                    shed[req.priority.index()] += 1;
                    if matches!(r, Rejected::Evicted { .. }) {
                        assert_ne!(
                            req.priority,
                            Priority::High,
                            "seed {seed}: nothing may evict High-priority work"
                        );
                    }
                }
                Disposition::ExpiredInQueue => shed[req.priority.index()] += 1,
                _ => {}
            }
        }
        assert!(offered.iter().all(|&n| n > 0), "seed {seed}: a priority class never arrived");
        let rate = |p: Priority| shed[p.index()] as f64 / offered[p.index()] as f64;
        assert!(
            rate(Priority::Low) > rate(Priority::High),
            "seed {seed}: Low shed rate {:.3} must exceed High shed rate {:.3} (shed {shed:?} / offered {offered:?})",
            rate(Priority::Low),
            rate(Priority::High),
        );
    }
}

/// The threaded server agrees with the reference engine on an unloaded
/// workload, reports healthy/ready, and drains to a clean report — the
/// wall-clock twin of the simulator's pillars.
#[test]
fn threaded_server_unloaded_matches_reference_and_drains_clean() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let reference = clean_engine(&corpus);
    let engine = Arc::new(TklusEngine::build(&corpus, &EngineConfig::default()).0);
    let serve = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        default_deadline_ms: 30_000,
        est_service_ms: 1,
        degrade: None,
        breaker: BreakerConfig::default(),
    };
    let server = TklusServer::start(Arc::clone(&engine), serve).expect("valid config");
    let report = server.health();
    assert!(report.ready, "fresh server must be ready");
    let tickets: Vec<_> = workload
        .iter()
        .map(|(q, ranking)| {
            server
                .submit(q.clone(), *ranking, Priority::Normal, None)
                .expect("unloaded server admits everything")
        })
        .collect();
    for ((q, ranking), ticket) in workload.iter().zip(tickets) {
        let outcome = ticket.wait().expect("unloaded query succeeds");
        assert_eq!(outcome.completeness, Completeness::Complete);
        let want = reference.query(q, *ranking).0;
        assert_same_users(&outcome.users, &want, "threaded server vs reference");
    }
    let n = workload.len() as u64;
    // The live registry snapshot agrees with the ticket-level accounting
    // before the server drains.
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counter("tklus_queries_total"), Some(n));
    assert_eq!(metrics.counter("tklus_query_errors_total"), Some(0));
    assert_eq!(metrics.counter("tklus_serve_admitted"), Some(n));
    assert_eq!(metrics.counter("tklus_serve_completed"), Some(n));
    let latency = metrics.histogram("tklus_query_latency_us").expect("latency recorded");
    assert_eq!(latency.count, n);
    let text = metrics.render_prometheus();
    assert!(text.contains("tklus_queries_total"), "exposition carries engine counters");
    assert!(text.contains("tklus_serve_completed"), "exposition carries serve counters");
    let drain = server.drain(std::time::Duration::from_secs(10));
    assert_eq!(drain.completed, n, "all admitted queries completed before the drain");
    assert!(drain.abandoned_queued.is_empty());
    assert_eq!(drain.in_flight_at_deadline, 0);
}

/// The threaded server's typed rejection path: a drained/stopped server
/// refuses new work with `ShuttingDown` (via the public error type).
#[test]
fn threaded_server_sheds_typed_when_queue_overflows() {
    let corpus = corpus();
    let workload = workload(&corpus);
    let engine = Arc::new(TklusEngine::build(&corpus, &EngineConfig::default()).0);
    // One worker, capacity one, and a hopeless-deadline configuration that
    // cannot shed at enqueue (deadline is huge), so overflow must show up
    // as QueueFull/Evicted once the queue is full.
    let serve = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        default_deadline_ms: 60_000,
        est_service_ms: 1,
        degrade: None,
        breaker: BreakerConfig::default(),
    };
    let server = TklusServer::start(Arc::clone(&engine), serve).expect("valid config");
    let (q, ranking) = workload[0].clone();
    // Flood: with 1 worker and capacity 1, some submissions must shed
    // typed; admitted ones must all resolve.
    let mut sheds = 0usize;
    let mut tickets = Vec::new();
    for i in 0..64 {
        let priority = if i % 3 == 0 { Priority::High } else { Priority::Low };
        match server.submit(q.clone(), ranking, priority, None) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QueueFull { .. }) => sheds += 1,
            Err(r) => panic!("unexpected rejection class: {r}"),
        }
    }
    let mut delivered = 0usize;
    for t in tickets {
        // Every admitted ticket resolves: success, typed eviction, or a
        // typed deadline expiry — never a hang or a dropped channel panic.
        match t.wait() {
            Ok(_) => delivered += 1,
            Err(tklus_serve::ServeError::Rejected(
                Rejected::Evicted { .. } | Rejected::ExpiredInQueue { .. },
            )) => delivered += 1,
            Err(e) => panic!("admitted ticket resolved as {e}"),
        }
    }
    assert!(delivered > 0, "at least the in-flight query delivers");
    assert!(sheds > 0, "a 1-deep queue flooded 64-wide must shed");
    let drain = server.drain(std::time::Duration::from_secs(10));
    assert!(drain.abandoned_queued.is_empty(), "everything resolved before drain");
}

/// The ingest lane (DESIGN.md §16): writes ride the same admission queue
/// as queries, sink failures come back typed per ticket, and a drained
/// server refuses new writes with `ShuttingDown`.
#[test]
fn threaded_server_ingest_lane_is_typed_end_to_end() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use tklus_model::{Post, TweetId, UserId};
    use tklus_serve::{IngestFailure, IngestSink, ServeError, SinkError};

    /// Accepts everything except tweet id 13 (a "duplicate") and id 66
    /// (an "I/O failure"); hands out sequence numbers in arrival order.
    struct FakeSink {
        seq: AtomicU64,
    }
    impl IngestSink for FakeSink {
        fn ingest(&self, post: Post) -> Result<u64, SinkError> {
            match post.id.0 {
                13 => Err(SinkError {
                    kind: "DuplicateTweet",
                    message: format!("tweet {} already ingested", post.id.0),
                    conflict: true,
                }),
                66 => {
                    Err(SinkError { kind: "Io", message: "disk on fire".into(), conflict: false })
                }
                _ => Ok(self.seq.fetch_add(1, Ordering::SeqCst)),
            }
        }
    }

    let corpus = corpus();
    let engine = Arc::new(TklusEngine::build(&corpus, &EngineConfig::default()).0);
    let serve = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        default_deadline_ms: 60_000,
        est_service_ms: 1,
        degrade: None,
        breaker: BreakerConfig::default(),
    };
    let sink = Arc::new(FakeSink { seq: AtomicU64::new(100) });
    let server =
        TklusServer::start_with_sink(Arc::clone(&engine), serve, Some(sink)).expect("valid config");

    // Borrow a location from the generated corpus (tklus-serve does not
    // depend on the geo crate directly).
    let loc = corpus.posts()[0].location;
    let post = |id: u64| Post::original(TweetId(id), UserId(7), loc, "hi");
    // Happy path: durable ack carries the sink's sequence number.
    let seq = server.submit_ingest(post(1), None).expect("admitted").wait().expect("acked");
    assert_eq!(seq, 100);
    // Typed conflict and typed sink failure, distinguishable by kind.
    match server.submit_ingest(post(13), None).expect("admitted").wait() {
        Err(IngestFailure::Sink(e)) => {
            assert_eq!(e.kind, "DuplicateTweet");
            assert!(e.conflict);
        }
        other => panic!("expected duplicate sink error, got {other:?}"),
    }
    match server.submit_ingest(post(66), None).expect("admitted").wait() {
        Err(IngestFailure::Sink(e)) => {
            assert_eq!(e.kind, "Io");
            assert!(!e.conflict);
        }
        other => panic!("expected io sink error, got {other:?}"),
    }
    // Writes and queries share one queue: both kinds of work complete and
    // both show up in the same metrics snapshot.
    let (q, ranking) = workload(&corpus)[0].clone();
    server.query(q, ranking, Priority::Normal, None).expect("query alongside writes");
    let metrics = server.metrics_snapshot();
    assert_eq!(metrics.counter("tklus_serve_ingested"), Some(3));
    assert_eq!(metrics.counter("tklus_serve_ingest_failed"), Some(2));
    let drain = server.drain(std::time::Duration::from_secs(10));
    assert!(drain.abandoned_queued.is_empty());

    // A server with no sink answers typed instead of hanging or panicking.
    let bare = TklusServer::start(
        engine,
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            default_deadline_ms: 60_000,
            est_service_ms: 1,
            degrade: None,
            breaker: BreakerConfig::default(),
        },
    )
    .expect("valid config");
    match bare.submit_ingest(post(2), None).expect("admitted").wait() {
        Err(IngestFailure::Sink(e)) => assert_eq!(e.kind, "NotConfigured"),
        other => panic!("expected NotConfigured, got {other:?}"),
    }
    drop(bare);
    // ServeError stays reserved for queries; the ingest lane's errors are
    // its own type (this line just pins that both exist and are Display).
    let _ = ServeError::Abandoned.to_string();
}
