//! Serving-layer registry export (DESIGN.md §12).
//!
//! The admission/shed/breaker counters already live in the server's
//! [`Snapshot`] and feed the [`crate::health`] gauges; this module
//! re-exports the same numbers into a [`RegistrySnapshot`] under
//! `tklus_serve_*` counter names. One row list drives both surfaces, so
//! the health report and the metrics exposition can never disagree.

use crate::breaker::BreakerPanel;
use crate::health::Snapshot;
use tklus_metrics::RegistrySnapshot;

/// The serve gauge rows, in the exact name order the health report
/// renders them. Every value is a non-negative integral count, so the
/// registry export keeps them as `u64` counters while the health report
/// widens to `f64` gauges.
pub(crate) fn gauge_rows(snap: &Snapshot, panel: &BreakerPanel) -> Vec<(&'static str, u64)> {
    vec![
        ("queue_depth", snap.depth as u64),
        ("queue_capacity", snap.capacity as u64),
        ("in_flight", snap.busy as u64),
        ("admitted", snap.counters.admitted),
        ("completed", snap.completed),
        ("failed", snap.failed),
        ("degraded", snap.degraded),
        ("ingested", snap.ingested),
        ("ingest_failed", snap.ingest_failed),
        ("shed_queue_full", snap.counters.shed_queue_full),
        ("shed_deadline", snap.counters.shed_deadline),
        ("shed_evicted", snap.counters.shed_evicted),
        ("shed_expired", snap.counters.expired_at_dispatch),
        ("shed_circuit", snap.shed_circuit),
        ("shed_shutdown", snap.shed_shutdown),
        (
            "shed_total",
            snap.counters
                .shed_total()
                .saturating_add(snap.shed_circuit)
                .saturating_add(snap.shed_shutdown),
        ),
        ("breaker_trips", panel.trip_count()),
    ]
}

/// Injects the serve rows into `base` (typically the engine's registry
/// snapshot) as `tklus_serve_<row>` counters and returns it.
pub(crate) fn inject_serve_rows(
    mut base: RegistrySnapshot,
    snap: &Snapshot,
    panel: &BreakerPanel,
) -> RegistrySnapshot {
    for (name, value) in gauge_rows(snap, panel) {
        base.set_counter(&format!("tklus_serve_{name}"), value);
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::health::build_report;
    use crate::queue::AdmissionCounters;

    fn snap() -> Snapshot {
        Snapshot {
            now_ms: 7,
            depth: 3,
            capacity: 8,
            busy: 2,
            workers: 4,
            draining: false,
            counters: AdmissionCounters {
                admitted: 40,
                shed_queue_full: 4,
                shed_deadline: 3,
                shed_evicted: 2,
                expired_at_dispatch: 1,
            },
            shed_circuit: 5,
            shed_shutdown: 6,
            completed: 30,
            failed: 2,
            degraded: 1,
            ingested: 12,
            ingest_failed: 3,
        }
    }

    #[test]
    fn registry_rows_mirror_health_gauges_exactly() {
        let panel = BreakerPanel::new(BreakerConfig::default());
        let s = snap();
        let report = build_report(&s, &panel);
        let rows = gauge_rows(&s, &panel);
        assert_eq!(rows.len(), report.gauges.len());
        for ((name, value), gauge) in rows.iter().zip(&report.gauges) {
            assert_eq!(*name, gauge.0, "gauge order drifted");
            assert_eq!(*value as f64, gauge.1, "gauge {name} disagrees");
        }
    }

    #[test]
    fn injected_snapshot_prefixes_and_sums_sheds() {
        let panel = BreakerPanel::new(BreakerConfig::default());
        let s = snap();
        let out = inject_serve_rows(RegistrySnapshot::default(), &s, &panel);
        assert_eq!(out.counter("tklus_serve_admitted"), Some(40));
        assert_eq!(out.counter("tklus_serve_queue_depth"), Some(3));
        // 4+3+2+1 counter sheds, +5 circuit, +6 shutdown.
        assert_eq!(out.counter("tklus_serve_shed_total"), Some(21));
        assert!(out.render_prometheus().contains("tklus_serve_breaker_trips 0"));
    }
}
