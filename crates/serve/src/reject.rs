//! Typed admission rejections and serving-layer errors (DESIGN.md §11).

use tklus_core::EngineError;
use tklus_model::Priority;

/// Why a request was shed instead of admitted (or, for [`Rejected::Evicted`],
/// after admission but before dispatch). Every shed is typed and costs the
/// engine nothing — that is the whole point of admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded admission queue is full and nothing of lower priority
    /// could be evicted to make room.
    QueueFull {
        /// Queue depth at the time of rejection.
        depth: usize,
        /// The deterministic wait estimate a same-priority retry would face
        /// right now (saturating; the HTTP front-end renders it as
        /// `Retry-After`).
        estimated_wait_ms: u64,
    },
    /// The request's deadline would expire before a worker could plausibly
    /// start it, so running it would waste engine time on an answer nobody
    /// is waiting for. Shed at enqueue.
    DeadlineHopeless {
        /// Milliseconds until the deadline at decision time.
        deadline_in_ms: u64,
        /// The (deterministic) wait estimate that exceeded it.
        estimated_wait_ms: u64,
    },
    /// A circuit breaker guarding the engine's failure domain is open:
    /// the layer fails fast instead of queueing work that is expected to
    /// error.
    CircuitOpen {
        /// Which breaker (`"storage"` / `"index"`).
        breaker: &'static str,
    },
    /// The request was queued but a later, higher-priority arrival took
    /// its slot when the queue was full (shed-lowest-first).
    Evicted {
        /// Priority of the arrival that displaced it.
        by: Priority,
        /// The deterministic wait estimate a retry at the victim's own
        /// priority would face right now (saturating; feeds `Retry-After`).
        estimated_wait_ms: u64,
    },
    /// The request was admitted but its deadline passed while it queued;
    /// a worker caught it at dispatch and answered it typed instead of
    /// running the engine (the threaded twin of the simulator's
    /// `Disposition::ExpiredInQueue`).
    ExpiredInQueue {
        /// Milliseconds the request waited in the queue before expiring.
        waited_ms: u64,
    },
    /// The server is draining or stopped; admission is closed.
    ShuttingDown,
}

impl Rejected {
    /// For sheds a client can sensibly retry after a backoff, the
    /// deterministic queue-wait estimate (ms) at decision time; `None` for
    /// sheds where "try again soon" is the wrong advice (open breakers and
    /// shutdowns heal on their own clock, expiry means the deadline was
    /// already spent). The HTTP front-end renders this as `Retry-After`.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Rejected::QueueFull { estimated_wait_ms, .. }
            | Rejected::Evicted { estimated_wait_ms, .. }
            | Rejected::DeadlineHopeless { estimated_wait_ms, .. } => Some(*estimated_wait_ms),
            Rejected::CircuitOpen { .. }
            | Rejected::ExpiredInQueue { .. }
            | Rejected::ShuttingDown => None,
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { depth, estimated_wait_ms } => {
                write!(f, "admission queue full ({depth} queued, ~{estimated_wait_ms} ms wait)")
            }
            Rejected::DeadlineHopeless { deadline_in_ms, estimated_wait_ms } => write!(
                f,
                "deadline hopeless: {deadline_in_ms} ms left, estimated wait {estimated_wait_ms} ms"
            ),
            Rejected::CircuitOpen { breaker } => write!(f, "{breaker} circuit breaker open"),
            Rejected::Evicted { by, estimated_wait_ms } => write!(
                f,
                "evicted from queue by a {by}-priority arrival (~{estimated_wait_ms} ms to retry)"
            ),
            Rejected::ExpiredInQueue { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms in queue")
            }
            Rejected::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

/// Everything that can come back instead of a successful
/// [`tklus_core::QueryOutcome`].
#[derive(Debug)]
pub enum ServeError {
    /// Shed before reaching the engine.
    Rejected(Rejected),
    /// Admitted and executed, but the engine failed typed.
    Engine(EngineError),
    /// Admitted but abandoned by a graceful drain before completing; the
    /// drain report names it too (nothing is lost silently).
    Abandoned,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Abandoned => f.write_str("abandoned by graceful drain"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Rejected> for ServeError {
    fn from(r: Rejected) -> Self {
        ServeError::Rejected(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let full = Rejected::QueueFull { depth: 9, estimated_wait_ms: 35 };
        assert!(full.to_string().contains("9 queued"));
        assert!(full.to_string().contains("~35 ms"));
        let hopeless = Rejected::DeadlineHopeless { deadline_in_ms: 3, estimated_wait_ms: 40 };
        assert!(hopeless.to_string().contains("estimated wait 40"));
        assert!(Rejected::CircuitOpen { breaker: "storage" }.to_string().contains("storage"));
        let evicted = Rejected::Evicted { by: Priority::High, estimated_wait_ms: 12 };
        assert!(evicted.to_string().contains("high"));
        assert!(Rejected::ExpiredInQueue { waited_ms: 75 }.to_string().contains("75 ms in queue"));
        assert!(ServeError::from(Rejected::ShuttingDown).to_string().contains("shutting down"));
        assert!(ServeError::Abandoned.to_string().contains("drain"));
    }

    #[test]
    fn retry_after_covers_exactly_the_retryable_sheds() {
        assert_eq!(
            Rejected::QueueFull { depth: 4, estimated_wait_ms: 20 }.retry_after_ms(),
            Some(20)
        );
        assert_eq!(
            Rejected::Evicted { by: Priority::High, estimated_wait_ms: 7 }.retry_after_ms(),
            Some(7)
        );
        assert_eq!(
            Rejected::DeadlineHopeless { deadline_in_ms: 1, estimated_wait_ms: u64::MAX }
                .retry_after_ms(),
            Some(u64::MAX)
        );
        assert_eq!(Rejected::CircuitOpen { breaker: "index" }.retry_after_ms(), None);
        assert_eq!(Rejected::ExpiredInQueue { waited_ms: 3 }.retry_after_ms(), None);
        assert_eq!(Rejected::ShuttingDown.retry_after_ms(), None);
    }
}
