//! # tklus-serve — the overload-resilient serving layer
//!
//! Wraps the shared-immutable [`tklus_core::TklusEngine`] with the
//! protection mechanisms a query service needs to degrade *predictably*
//! instead of collapsing when offered load exceeds capacity
//! (DESIGN.md §11):
//!
//! * **admission control** — a bounded, priority-aware queue
//!   ([`AdmissionQueue`]) with a concurrency limit and per-request
//!   deadlines measured from arrival; requests that cannot make their
//!   deadline are shed *at enqueue* with a typed [`Rejected`] reason;
//! * **load shedding with priorities** — under saturation the lowest
//!   [`tklus_model::Priority`] work sheds first (a full queue lets a
//!   higher-priority arrival evict the newest lowest-priority entry), and
//!   an optional [`DegradePolicy`] trades completeness for latency by
//!   tightening `QueryBudget::max_cells` so the engine returns typed
//!   `Completeness::Degraded` exact prefixes;
//! * **circuit breakers** — one [`CircuitBreaker`] per engine failure
//!   domain (`EngineError::Storage` / `EngineError::Index`) with a rolling
//!   failure window, half-open probing, and bounded exponential backoff;
//! * **graceful drain** — [`TklusServer::drain`] closes admission, lets
//!   in-flight work finish up to a drain deadline, and abandons the rest
//!   *by name* — nothing admitted is ever silently lost.
//!
//! Every policy decision is made by pure state machines over
//! caller-supplied millisecond timestamps, so the exact same code runs in
//! two harnesses:
//!
//! * [`TklusServer`] — real worker threads fed wall-clock time;
//! * [`sim`] — a seeded open-loop generator plus a virtual-time
//!   discrete-event simulator whose every shed, trip, and drain decision
//!   is reproducible bit-for-bit per seed (the CI overload matrix).

#![warn(missing_docs)]

mod breaker;
mod config;
mod health;
mod ingest;
mod metrics;
mod queue;
mod reject;
mod server;
pub mod sim;

pub use breaker::{BreakerConfig, BreakerPanel, BreakerState, CircuitBreaker, ProbeGrant};
pub use config::{DegradePolicy, ServeConfig};
pub use ingest::{IngestFailure, IngestSink, SinkError, SinkHealth};
pub use queue::{AdmissionCounters, AdmissionQueue, AdmitResult, Popped, QueuedEntry};
pub use reject::{Rejected, ServeError};
pub use server::{DrainReport, IngestTicket, Ticket, TklusServer};
