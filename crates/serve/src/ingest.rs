//! Write-path plumbing (DESIGN.md §16).
//!
//! Ingest shares the query path's bounded admission queue — a firehose
//! burst and a query storm contend for the same slots, so overload sheds
//! writes with the same typed taxonomy instead of buffering them
//! unboundedly. The serving layer stays storage-agnostic: the durable
//! store (the WAL crate's `IngestStore`, in production) plugs in behind
//! [`IngestSink`], and its failures flow back typed, per request.

use crate::reject::Rejected;
use tklus_model::Post;

/// A durable destination for ingested posts. Implementations are called
/// from worker threads with no serve lock held; they must be internally
/// synchronized. Returns the record's sequence number on success.
pub trait IngestSink: Send + Sync {
    /// Durably ingest one post.
    fn ingest(&self, post: Post) -> Result<u64, SinkError>;

    /// The sink's own health, if it has any to report. `None` (the
    /// default) means "nothing to say" — the serving layer adds no
    /// probe. The production WAL sink reports its background compactor's
    /// failure state here so `/health` goes unhealthy when the store has
    /// stopped sealing.
    fn health(&self) -> Option<SinkHealth> {
        None
    }
}

/// A sink's self-reported health (see [`IngestSink::health`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SinkHealth {
    /// True when the sink's maintenance machinery is persistently
    /// failing (e.g. compaction has failed several times in a row) and
    /// operator attention is needed. Renders the `/health` overall
    /// status unhealthy.
    pub persistent_failure: bool,
    /// Total maintenance failures observed (monotone counter; exported
    /// as `tklus_wal_compaction_failures_total` for the WAL sink).
    pub maintenance_failures: u64,
    /// Human-readable probe detail.
    pub detail: String,
}

/// A typed sink failure. `kind` is the stable error-class name (the WAL
/// taxonomy's variant name, for the production sink) that the HTTP layer
/// exposes verbatim so clients can distinguish `Io` from `Poisoned`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError {
    /// Stable error-class name, e.g. `"Io"`, `"DuplicateTweet"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// True for idempotency conflicts (duplicate tweet id): the write is
    /// not retryable as-is, but the store is healthy — HTTP answers 409,
    /// not 503.
    pub conflict: bool,
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// Everything that can come back instead of a sequence number.
#[derive(Debug)]
pub enum IngestFailure {
    /// Shed by admission control before reaching the sink.
    Rejected(Rejected),
    /// Reached the sink, which failed typed.
    Sink(SinkError),
    /// Admitted but abandoned by a graceful drain before completing.
    Abandoned,
}

impl std::fmt::Display for IngestFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestFailure::Rejected(r) => write!(f, "rejected: {r}"),
            IngestFailure::Sink(e) => write!(f, "sink: {e}"),
            IngestFailure::Abandoned => f.write_str("abandoned by graceful drain"),
        }
    }
}

impl std::error::Error for IngestFailure {}

impl From<Rejected> for IngestFailure {
    fn from(r: Rejected) -> Self {
        IngestFailure::Rejected(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let sink = SinkError { kind: "Io", message: "disk on fire".into(), conflict: false };
        assert!(IngestFailure::Sink(sink).to_string().contains("Io: disk on fire"));
        assert!(IngestFailure::from(Rejected::ShuttingDown).to_string().contains("shutting down"));
        assert!(IngestFailure::Abandoned.to_string().contains("drain"));
    }
}
