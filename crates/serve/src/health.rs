//! Builds the serving layer's [`HealthReport`] (DESIGN.md §11).
//!
//! One code path renders both the threaded server's live snapshot and the
//! simulator's end-of-run state, so probes and gauge names can never
//! drift between them.

use crate::breaker::{BreakerPanel, BreakerState, CircuitBreaker};
use crate::queue::AdmissionCounters;
use tklus_metrics::{Health, HealthReport, Probe};

/// Everything the probes summarize, captured under the caller's lock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Snapshot {
    pub now_ms: u64,
    pub depth: usize,
    pub capacity: usize,
    pub busy: usize,
    pub workers: usize,
    pub draining: bool,
    pub counters: AdmissionCounters,
    pub shed_circuit: u64,
    pub shed_shutdown: u64,
    pub completed: u64,
    pub failed: u64,
    pub degraded: u64,
    pub ingested: u64,
    pub ingest_failed: u64,
}

fn breaker_probe(b: &CircuitBreaker, now_ms: u64) -> Probe {
    let (health, detail) = match b.state() {
        BreakerState::Closed => (Health::Healthy, "closed".to_string()),
        BreakerState::HalfOpen => (Health::Degraded, "half-open, probing recovery".to_string()),
        BreakerState::Open => {
            (Health::Unhealthy, format!("open, next probe in {} ms", b.retry_in_ms(now_ms)))
        }
    };
    Probe::new(format!("breaker:{}", b.name()), health, detail)
}

/// Renders the snapshot plus breaker states into a [`HealthReport`].
pub(crate) fn build_report(snap: &Snapshot, panel: &BreakerPanel) -> HealthReport {
    let mut report = HealthReport::ready();
    report.ready = !snap.draining;
    let admission_health = if snap.draining || snap.depth >= snap.capacity {
        Health::Degraded
    } else {
        Health::Healthy
    };
    let admission_detail = if snap.draining {
        format!("draining, {} queued, {} in flight", snap.depth, snap.busy)
    } else {
        format!(
            "queue {}/{}, {}/{} workers busy",
            snap.depth, snap.capacity, snap.busy, snap.workers
        )
    };
    report.probe(Probe::new("admission", admission_health, admission_detail));
    report.probe(breaker_probe(&panel.storage, snap.now_ms));
    report.probe(breaker_probe(&panel.index, snap.now_ms));

    // One row list feeds both the health gauges and the `tklus_serve_*`
    // registry export (crate::metrics), so the surfaces cannot drift.
    for (name, value) in crate::metrics::gauge_rows(snap, panel) {
        report.gauge(name, value as f64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;

    fn snap() -> Snapshot {
        Snapshot {
            now_ms: 0,
            depth: 0,
            capacity: 8,
            busy: 1,
            workers: 2,
            draining: false,
            counters: AdmissionCounters::default(),
            shed_circuit: 0,
            shed_shutdown: 0,
            completed: 5,
            failed: 0,
            degraded: 0,
            ingested: 0,
            ingest_failed: 0,
        }
    }

    #[test]
    fn healthy_idle_server_reports_healthy_and_ready() {
        let panel = BreakerPanel::new(BreakerConfig::default());
        let report = build_report(&snap(), &panel);
        assert!(report.ready);
        assert_eq!(report.overall(), Health::Healthy);
        assert_eq!(report.gauge_value("completed"), Some(5.0));
        assert_eq!(report.gauge_value("queue_capacity"), Some(8.0));
    }

    #[test]
    fn open_breaker_makes_report_unhealthy() {
        let cfg = BreakerConfig { failure_threshold: 1, window: 4, ..BreakerConfig::default() };
        let mut panel = BreakerPanel::new(cfg);
        panel.storage.record_failure(10);
        let report = build_report(&snap(), &panel);
        assert_eq!(report.overall(), Health::Unhealthy);
        let probe = report.probes.iter().find(|p| p.name == "breaker:storage").expect("probe");
        assert_eq!(probe.health, Health::Unhealthy);
        assert_eq!(report.gauge_value("breaker_trips"), Some(1.0));
    }

    #[test]
    fn draining_is_not_ready() {
        let panel = BreakerPanel::new(BreakerConfig::default());
        let s = Snapshot { draining: true, ..snap() };
        let report = build_report(&s, &panel);
        assert!(!report.ready);
        assert_eq!(report.overall(), Health::Degraded);
    }

    #[test]
    fn full_queue_degrades_admission() {
        let panel = BreakerPanel::new(BreakerConfig::default());
        let s = Snapshot { depth: 8, ..snap() };
        let report = build_report(&s, &panel);
        let probe = report.probes.iter().find(|p| p.name == "admission").expect("probe");
        assert_eq!(probe.health, Health::Degraded);
    }
}
