//! Serving-layer configuration (DESIGN.md §11).

use crate::breaker::BreakerConfig;

/// When (and how) the server trades completeness for latency instead of
/// rejecting outright: once the admission queue holds at least
/// `queue_threshold` entries, every query dispatched while the pressure
/// lasts has its budget tightened to at most `max_cells` cover cells, so
/// the engine returns a typed `Completeness::Degraded` exact prefix
/// rather than timing out or being shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Queue depth at or above which dispatches degrade.
    pub queue_threshold: usize,
    /// The cover-cell cap applied under pressure (merged with any
    /// stricter client budget via `QueryBudget::tighten_max_cells`).
    pub max_cells: usize,
}

/// Configuration of the overload-resilient serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads executing queries (the concurrency limit).
    pub workers: usize,
    /// Bounded admission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline, from *arrival*, applied to requests that do not carry
    /// their own. Queueing time counts against it.
    pub default_deadline_ms: u64,
    /// A priori estimate of one query's service time, used by the
    /// hopeless-deadline check at enqueue (a deliberately crude, fully
    /// deterministic model: estimated wait = ceil(work ahead / workers) ×
    /// this).
    pub est_service_ms: u64,
    /// Optional degrade-instead-of-reject policy under saturation.
    pub degrade: Option<DegradePolicy>,
    /// Circuit-breaker tuning, one breaker per engine error class
    /// (storage, index).
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 1_000,
            est_service_ms: 5,
            degrade: None,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the knobs that must be non-zero for the layer to make
    /// progress.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be at least 1".into());
        }
        if self.est_service_ms == 0 {
            return Err("estimated service time must be at least 1 ms".into());
        }
        self.breaker.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServeConfig { workers: 0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig { queue_capacity: 0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig { est_service_ms: 0, ..ServeConfig::default() }.validate().is_err());
    }
}
