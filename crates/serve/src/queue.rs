//! The bounded, priority-aware admission queue (DESIGN.md §11).
//!
//! This is the deterministic heart of the serving layer: a pure state
//! machine over explicit millisecond timestamps, shared verbatim by the
//! threaded [`crate::server::TklusServer`] (which feeds it wall-clock
//! time) and the virtual-time [`crate::sim`] harness (which feeds it
//! simulated time). All admission policy lives here:
//!
//! * **bounded queue** — at most `capacity` requests wait; arrivals
//!   beyond that are shed typed, never silently dropped;
//! * **shed-lowest-first** — when full, a higher-priority arrival evicts
//!   the *newest* entry of the *lowest* strictly-lower priority class
//!   (newest because it has waited least — evicting it wastes the least
//!   sunk queueing time);
//! * **hopeless-deadline shedding** — an arrival whose deadline would
//!   expire before a worker could plausibly start it is shed at enqueue
//!   with the estimate that condemned it. The estimate is deliberately
//!   crude but fully deterministic:
//!   `est_wait = est_service_ms × ⌊(entries at ≥ its priority + busy workers) / workers⌋`;
//! * **dispatch-order** — pop highest priority first, FIFO within a
//!   priority; entries found dead at dispatch are returned tagged so the
//!   caller can answer them typed instead of wasting engine time.

use crate::reject::Rejected;
use std::collections::VecDeque;
use tklus_model::Priority;

/// A request sitting in (or just removed from) the admission queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedEntry<T> {
    /// Admission ticket id, unique per queue, assigned in admission order.
    pub id: u64,
    /// Scheduling priority.
    pub priority: Priority,
    /// When the request arrived (ms, caller's clock).
    pub arrival_ms: u64,
    /// Absolute deadline (ms, caller's clock): queueing time counts.
    pub deadline_ms: u64,
    /// The caller's request payload.
    pub payload: T,
}

/// What [`AdmissionQueue::try_admit`] decided.
#[derive(Debug, PartialEq, Eq)]
pub enum AdmitResult<T> {
    /// Queued. If making room required shedding a lower-priority entry,
    /// the victim rides along so the caller can answer it typed.
    Admitted {
        /// The ticket id of the newly queued request.
        id: u64,
        /// The lower-priority entry evicted to make room, if any.
        evicted: Option<QueuedEntry<T>>,
    },
    /// Shed at enqueue; the payload comes back untouched.
    Shed {
        /// Why.
        reason: Rejected,
        /// The request payload, returned to the caller.
        payload: T,
    },
}

/// What [`AdmissionQueue::pop_next`] found.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// Alive and ready to execute.
    Ready(QueuedEntry<T>),
    /// Its deadline passed while it queued; answer it typed, don't run it.
    Expired(QueuedEntry<T>),
}

/// Monotone shed/admission counters, exposed through the health probes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Shed: queue full, nothing evictable.
    pub shed_queue_full: u64,
    /// Shed: deadline hopeless at enqueue.
    pub shed_deadline: u64,
    /// Shed: evicted after admission by a higher-priority arrival.
    pub shed_evicted: u64,
    /// Shed: expired in the queue, caught at dispatch.
    pub expired_at_dispatch: u64,
}

impl AdmissionCounters {
    /// Total requests shed before reaching the engine.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_evicted + self.expired_at_dispatch
    }
}

/// The bounded priority admission queue. Generic over the payload so the
/// threaded server can queue response channels while the simulator queues
/// bare request indices.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    workers: usize,
    est_service_ms: u64,
    /// One FIFO per priority, indexed by [`Priority::index`].
    lanes: [VecDeque<QueuedEntry<T>>; 3],
    next_id: u64,
    counters: AdmissionCounters,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue with the given bounds (see
    /// [`crate::ServeConfig`] for the knobs' meaning).
    pub fn new(capacity: usize, workers: usize, est_service_ms: u64) -> Self {
        assert!(capacity > 0 && workers > 0 && est_service_ms > 0, "validated by ServeConfig");
        Self {
            capacity,
            workers,
            est_service_ms,
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            next_id: 0,
            counters: AdmissionCounters::default(),
        }
    }

    /// Entries currently queued.
    pub fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monotone admission/shed counters.
    pub fn counters(&self) -> AdmissionCounters {
        self.counters
    }

    /// Entries queued at `priority` or higher — the work a new arrival of
    /// that priority would wait behind.
    fn depth_at_or_above(&self, priority: Priority) -> usize {
        self.lanes[priority.index()..].iter().map(VecDeque::len).sum()
    }

    /// The deterministic wait estimate for an arrival of `priority` given
    /// `busy_workers` already executing.
    pub fn estimated_wait_ms(&self, priority: Priority, busy_workers: usize) -> u64 {
        let work_ahead = self.depth_at_or_above(priority) + busy_workers.min(self.workers);
        self.est_service_ms.saturating_mul((work_ahead / self.workers) as u64)
    }

    /// Runs the admission decision for an arrival at `now_ms` with an
    /// absolute `deadline_ms`. `busy_workers` is how many workers are
    /// mid-query right now (the simulator and server both know exactly).
    pub fn try_admit(
        &mut self,
        now_ms: u64,
        priority: Priority,
        deadline_ms: u64,
        payload: T,
        busy_workers: usize,
    ) -> AdmitResult<T> {
        // Hopeless deadlines first: shedding here is free, and doing it
        // before the capacity check means a doomed request never evicts a
        // viable lower-priority one.
        let estimated_wait_ms = self.estimated_wait_ms(priority, busy_workers);
        if now_ms.saturating_add(estimated_wait_ms) > deadline_ms {
            self.counters.shed_deadline += 1;
            return AdmitResult::Shed {
                reason: Rejected::DeadlineHopeless {
                    deadline_in_ms: deadline_ms.saturating_sub(now_ms),
                    estimated_wait_ms,
                },
                payload,
            };
        }
        let mut evicted = None;
        if self.depth() >= self.capacity {
            match self.evict_below(priority) {
                Some(victim) => {
                    self.counters.shed_evicted += 1;
                    evicted = Some(victim);
                }
                None => {
                    self.counters.shed_queue_full += 1;
                    return AdmitResult::Shed {
                        reason: Rejected::QueueFull { depth: self.depth(), estimated_wait_ms },
                        payload,
                    };
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.counters.admitted += 1;
        self.lanes[priority.index()].push_back(QueuedEntry {
            id,
            priority,
            arrival_ms: now_ms,
            deadline_ms,
            payload,
        });
        AdmitResult::Admitted { id, evicted }
    }

    /// Sheds the newest entry of the lowest priority class strictly below
    /// `priority`, if any.
    fn evict_below(&mut self, priority: Priority) -> Option<QueuedEntry<T>> {
        self.lanes[..priority.index()].iter_mut().find_map(VecDeque::pop_back)
    }

    /// Removes the next entry in dispatch order (highest priority first,
    /// FIFO within), tagging it [`Popped::Expired`] when its deadline
    /// already passed.
    pub fn pop_next(&mut self, now_ms: u64) -> Option<Popped<T>> {
        let entry = self.lanes.iter_mut().rev().find_map(VecDeque::pop_front)?;
        if entry.deadline_ms < now_ms {
            self.counters.expired_at_dispatch += 1;
            Some(Popped::Expired(entry))
        } else {
            Some(Popped::Ready(entry))
        }
    }

    /// Empties the queue (graceful drain's abandon step), returning the
    /// entries in dispatch order so every one can be answered typed.
    pub fn drain_all(&mut self) -> Vec<QueuedEntry<T>> {
        let mut out = Vec::with_capacity(self.depth());
        while let Some(entry) = self.lanes.iter_mut().rev().find_map(VecDeque::pop_front) {
            out.push(entry);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn queue(capacity: usize, workers: usize) -> AdmissionQueue<&'static str> {
        AdmissionQueue::new(capacity, workers, 10)
    }

    fn admit(
        q: &mut AdmissionQueue<&'static str>,
        now: u64,
        p: Priority,
        deadline: u64,
        tag: &'static str,
    ) -> AdmitResult<&'static str> {
        q.try_admit(now, p, deadline, tag, 0)
    }

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let mut q = queue(8, 2);
        admit(&mut q, 0, Priority::Normal, 1000, "n1");
        admit(&mut q, 1, Priority::Low, 1000, "l1");
        admit(&mut q, 2, Priority::High, 1000, "h1");
        admit(&mut q, 3, Priority::Normal, 1000, "n2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next(10))
            .map(|p| match p {
                Popped::Ready(e) => e.payload,
                Popped::Expired(e) => panic!("unexpected expiry of {}", e.payload),
            })
            .collect();
        assert_eq!(order, vec!["h1", "n1", "n2", "l1"]);
    }

    #[test]
    fn full_queue_sheds_or_evicts_lowest_first() {
        let mut q = queue(2, 1);
        admit(&mut q, 0, Priority::Low, 1000, "l-old");
        admit(&mut q, 1, Priority::Low, 1000, "l-new");
        // A Low arrival cannot evict its own class: queue full. The shed
        // carries the wait estimate a retry would face (2 entries ahead,
        // 1 worker, 10 ms each -> 20 ms).
        match admit(&mut q, 2, Priority::Low, 1000, "l-3") {
            AdmitResult::Shed {
                reason: Rejected::QueueFull { depth: 2, estimated_wait_ms: 20 },
                payload: "l-3",
            } => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // A High arrival evicts the *newest* Low entry.
        match admit(&mut q, 3, Priority::High, 1000, "h1") {
            AdmitResult::Admitted { evicted: Some(victim), .. } => {
                assert_eq!(victim.payload, "l-new");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        let c = q.counters();
        assert_eq!(c.shed_queue_full, 1);
        assert_eq!(c.shed_evicted, 1);
        assert_eq!(c.admitted, 3);
    }

    #[test]
    fn hopeless_deadline_is_shed_at_enqueue() {
        let mut q = queue(16, 1);
        // 3 entries ahead at 10 ms each, 1 worker -> estimated wait 30 ms.
        for _ in 0..3 {
            admit(&mut q, 0, Priority::Normal, 10_000, "w");
        }
        match q.try_admit(100, Priority::Normal, 120, "late", 0) {
            AdmitResult::Shed {
                reason: Rejected::DeadlineHopeless { deadline_in_ms: 20, estimated_wait_ms: 30 },
                ..
            } => {}
            other => panic!("expected DeadlineHopeless, got {other:?}"),
        }
        // Same arrival with a workable deadline is admitted.
        assert!(matches!(
            q.try_admit(100, Priority::Normal, 200, "ok", 0),
            AdmitResult::Admitted { .. }
        ));
        // High priority jumps the Normal backlog, so its estimate is 0.
        assert_eq!(q.estimated_wait_ms(Priority::High, 0), 0);
        assert_eq!(q.counters().shed_deadline, 1);
    }

    #[test]
    fn busy_workers_count_toward_the_estimate() {
        let q = queue(16, 2);
        assert_eq!(q.estimated_wait_ms(Priority::Normal, 0), 0);
        assert_eq!(q.estimated_wait_ms(Priority::Normal, 2), 10);
        // busy_workers is clamped to the worker count.
        assert_eq!(q.estimated_wait_ms(Priority::Normal, 99), 10);
    }

    #[test]
    fn expired_entries_are_tagged_at_dispatch() {
        let mut q = queue(4, 1);
        admit(&mut q, 0, Priority::Normal, 50, "dead");
        admit(&mut q, 0, Priority::Normal, 500, "alive");
        match q.pop_next(100) {
            Some(Popped::Expired(e)) => assert_eq!(e.payload, "dead"),
            other => panic!("expected expired, got {other:?}"),
        }
        match q.pop_next(100) {
            Some(Popped::Ready(e)) => assert_eq!(e.payload, "alive"),
            other => panic!("expected ready, got {other:?}"),
        }
        assert_eq!(q.counters().expired_at_dispatch, 1);
    }

    #[test]
    fn wait_estimate_saturates_at_extreme_clocks() {
        // est_service_ms at the ceiling: the multiply must saturate, not
        // wrap, and the saturated estimate must flow into the typed shed.
        let mut q: AdmissionQueue<&'static str> = AdmissionQueue::new(2, 1, u64::MAX);
        q.try_admit(0, Priority::Normal, u64::MAX, "a", 0);
        assert_eq!(q.estimated_wait_ms(Priority::Normal, 1), u64::MAX);
        // The saturated estimate pushes `now + estimate` to the clock's
        // ceiling; against any deadline below it the hopeless check fires
        // with the saturated value instead of a wrapped small number.
        match q.try_admit(0, Priority::Normal, u64::MAX - 1, "b", 1) {
            AdmitResult::Shed {
                reason: Rejected::DeadlineHopeless { estimated_wait_ms: u64::MAX, .. },
                ..
            } => {}
            other => panic!("expected saturated DeadlineHopeless, got {other:?}"),
        }
        // An idle queue with a live deadline still admits even at the
        // clock's edge (the PR 5 instant-shed guard, re-pinned here).
        let mut idle: AdmissionQueue<&'static str> = AdmissionQueue::new(2, 1, u64::MAX);
        assert!(matches!(
            idle.try_admit(u64::MAX, Priority::Normal, u64::MAX, "c", 0),
            AdmitResult::Admitted { .. }
        ));
        // With a deadline at the ceiling the saturated sum equals (never
        // exceeds) it, so the request survives to the capacity check and
        // the QueueFull shed carries the saturated wait.
        let mut full: AdmissionQueue<&'static str> = AdmissionQueue::new(1, 1, u64::MAX);
        full.try_admit(0, Priority::Normal, u64::MAX, "d", 0);
        match full.try_admit(0, Priority::Normal, u64::MAX, "e", 1) {
            AdmitResult::Shed {
                reason: Rejected::QueueFull { depth: 1, estimated_wait_ms: u64::MAX },
                ..
            } => {}
            other => panic!("expected saturated QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn queue_full_shed_carries_the_retry_estimate() {
        let mut q = queue(1, 2);
        admit(&mut q, 0, Priority::Normal, 1000, "first");
        // 1 queued + 1 busy over 2 workers -> floor(2/2) x 10 ms = 10 ms.
        match q.try_admit(0, Priority::Normal, 1000, "second", 1) {
            AdmitResult::Shed {
                reason: Rejected::QueueFull { depth: 1, estimated_wait_ms: 10 },
                ..
            } => {}
            other => panic!("expected QueueFull with estimate, got {other:?}"),
        }
    }

    #[test]
    fn drain_returns_everything_in_dispatch_order() {
        let mut q = queue(8, 1);
        admit(&mut q, 0, Priority::Low, 1000, "l");
        admit(&mut q, 0, Priority::High, 1000, "h");
        admit(&mut q, 0, Priority::Normal, 1000, "n");
        let drained: Vec<_> = q.drain_all().into_iter().map(|e| e.payload).collect();
        assert_eq!(drained, vec!["h", "n", "l"]);
        assert_eq!(q.depth(), 0);
    }
}
