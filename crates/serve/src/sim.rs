//! The deterministic-load harness (DESIGN.md §11): a seeded open-loop
//! generator plus a virtual-time discrete-event simulator that drives the
//! *exact same* admission queue and breaker state machines as the
//! threaded server — but with simulated timestamps and single-threaded
//! execution, so every shed, evict, degrade, trip, and drain decision is
//! a pure function of `(corpus, workload, seed, config)`.
//!
//! Two clocks coexist deliberately:
//!
//! * **virtual time** decides scheduling — arrivals, queue waits,
//!   synthetic per-request service durations, breaker backoffs, the drain
//!   deadline. It never reads the wall clock.
//! * **the engine runs for real** — each admitted request executes
//!   `try_query` against the actual [`TklusEngine`] (possibly
//!   `FaultPager`-backed) at its virtual dispatch instant, in dispatch
//!   order. With `parallelism: 1` engines the storage fault schedule is a
//!   function of operation order, so even injected faults reproduce
//!   exactly per seed.
//!
//! A real wall-clock budget (`timeout_ms`) would reintroduce
//! nondeterminism, so the simulator's degrade mode only ever tightens
//! `max_cells` — which PR 3 made bitwise-deterministic.

use crate::breaker::{BreakerPanel, BreakerState, ProbeGrant};
use crate::config::ServeConfig;
use crate::health::{build_report, Snapshot};
use crate::queue::{AdmissionCounters, AdmissionQueue, AdmitResult, Popped};
use crate::reject::Rejected;
use tklus_core::{Completeness, EngineError, RankedUser, Ranking, TklusEngine};
use tklus_metrics::{HealthReport, RegistrySnapshot};
use tklus_model::{Priority, QueryBudget, TklusQuery};

// ---- Seeded open-loop generation ---------------------------------------

/// SplitMix64 — the same tiny deterministic generator the storage fault
/// schedule uses; state advances by the golden-gamma constant and each
/// output is a finalized mix of the state.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRequest {
    /// Virtual arrival instant (ms).
    pub arrival_ms: u64,
    /// Index into the caller's workload (`query_idx % workload.len()`).
    pub query_idx: usize,
    /// Scheduling priority.
    pub priority: Priority,
    /// Absolute virtual deadline (arrival + relative deadline).
    pub deadline_ms: u64,
    /// Synthetic virtual service duration (ms) charged to a worker.
    pub service_ms: u64,
}

/// Open-loop generator knobs. "Open loop" means arrivals ignore
/// completions — exactly the regime where an unprotected system melts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Schedule seed (the CI matrix variable).
    pub seed: u64,
    /// Number of arrivals to generate.
    pub requests: usize,
    /// Mean inter-arrival gap; gaps are uniform in `[0, 2·mean]`.
    pub mean_interarrival_ms: u64,
    /// Relative deadline carried by every request.
    pub deadline_ms: u64,
    /// Mean synthetic service time; durations are uniform in `[1, 2·mean]`.
    pub mean_service_ms: u64,
    /// Relative draw weights for Low/Normal/High priorities.
    pub priority_weights: [u32; 3],
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            requests: 400,
            mean_interarrival_ms: 2,
            deadline_ms: 120,
            mean_service_ms: 8,
            priority_weights: [1, 2, 1],
        }
    }
}

/// The generated arrival schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPlan {
    /// Arrivals in nondecreasing `arrival_ms` order.
    pub requests: Vec<SimRequest>,
}

/// Generates the arrival schedule for a workload of `workload_len`
/// queries. Pure in `(cfg, workload_len)`.
pub fn generate_plan(cfg: &LoadConfig, workload_len: usize) -> LoadPlan {
    assert!(workload_len > 0, "workload must not be empty");
    assert!(cfg.mean_interarrival_ms > 0 && cfg.mean_service_ms > 0);
    let total_weight: u32 = cfg.priority_weights.iter().sum();
    assert!(total_weight > 0, "at least one priority must have weight");
    let mut rng = Rng(cfg.seed);
    let mut clock = 0u64;
    let mut requests = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        // Saturating throughout: extreme configured means/deadlines pin at
        // u64::MAX instead of wrapping a request's timeline into the past.
        let gap_span = cfg.mean_interarrival_ms.saturating_mul(2).saturating_add(1);
        clock = clock.saturating_add(rng.below(gap_span));
        let query_idx = rng.below(workload_len as u64) as usize;
        let mut pick = rng.below(u64::from(total_weight)) as u32;
        let mut priority = Priority::Low;
        for (i, &w) in cfg.priority_weights.iter().enumerate() {
            if pick < w {
                priority = Priority::ALL[i];
                break;
            }
            pick -= w;
        }
        let service_span = cfg.mean_service_ms.saturating_mul(2).saturating_sub(1);
        let service_ms = rng.below(service_span).saturating_add(1);
        requests.push(SimRequest {
            arrival_ms: clock,
            query_idx,
            priority,
            deadline_ms: clock.saturating_add(cfg.deadline_ms),
            service_ms,
        });
    }
    LoadPlan { requests }
}

// ---- The simulator ------------------------------------------------------

/// When the simulated server starts a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPlan {
    /// Virtual instant admission closes.
    pub at_ms: u64,
    /// How long after `at_ms` queued/in-flight work may still finish.
    pub deadline_ms: u64,
}

/// Simulator configuration: the serving policy plus an optional drain.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The serving-layer policy under test.
    pub serve: ServeConfig,
    /// Optional mid-run graceful drain.
    pub drain: Option<DrainPlan>,
}

/// The engine-level digest of one executed request.
#[derive(Debug, Clone, PartialEq)]
pub enum SimResult {
    /// The engine answered (exactly or typed-degraded).
    Ranked {
        /// The ranked users.
        users: Vec<RankedUser>,
        /// Exact or degraded-prefix.
        completeness: Completeness,
    },
    /// The engine failed typed; `domain` names the breaker it fed.
    Failed {
        /// `"storage"` or `"index"`.
        domain: &'static str,
    },
}

/// What finally happened to one generated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Shed without engine work (at enqueue, or evicted after admission).
    Shed(Rejected),
    /// Admitted but found dead at dispatch: answered typed, not executed.
    ExpiredInQueue,
    /// Admitted, dispatched, and finished.
    Completed {
        /// Virtual dispatch instant.
        start_ms: u64,
        /// Virtual completion instant (`start + service`).
        end_ms: u64,
        /// The engine's answer.
        result: SimResult,
    },
    /// Admitted but still queued when the drain deadline hit.
    AbandonedQueued,
    /// Dispatched but still running at the drain deadline. (The engine
    /// call itself completed inside the simulator — only its *delivery*
    /// is abandoned, exactly like the threaded server.)
    AbandonedInFlight {
        /// Virtual dispatch instant.
        start_ms: u64,
    },
}

/// One request's record in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Admission ticket id, if the request was ever queued.
    pub ticket: Option<u64>,
    /// The final disposition.
    pub disposition: Disposition,
}

/// Drain accounting: every admitted-but-unfinished request, by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Tickets abandoned while still queued.
    pub abandoned_queued: Vec<u64>,
    /// Tickets abandoned mid-execution.
    pub abandoned_in_flight: Vec<u64>,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-request outcomes, in arrival order (same length as the plan).
    pub outcomes: Vec<RequestOutcome>,
    /// Admission-queue counters.
    pub admission: AdmissionCounters,
    /// Arrivals shed because a breaker was open.
    pub shed_circuit: u64,
    /// Arrivals shed because the server was draining.
    pub shed_shutdown: u64,
    /// Completed answers that were typed-degraded (budget-tightened).
    pub degraded: u64,
    /// Completed answers that failed typed in the engine.
    pub failed: u64,
    /// Completion latencies (virtual ms, completion − arrival).
    pub latencies_ms: Vec<u64>,
    /// The storage breaker's `(t, state)` trajectory.
    pub storage_transitions: Vec<(u64, BreakerState)>,
    /// The index breaker's `(t, state)` trajectory.
    pub index_transitions: Vec<(u64, BreakerState)>,
    /// Total breaker trips.
    pub breaker_trips: u64,
    /// Drain accounting, when a drain was configured.
    pub drain: Option<DrainReport>,
    /// End-of-run health snapshot.
    pub health: HealthReport,
    /// End-of-run registry snapshot: the engine's query/storage/cache
    /// metrics plus the `tklus_serve_*` counters (empty engine side when
    /// the engine was built with metrics off).
    pub metrics: RegistrySnapshot,
}

impl SimReport {
    /// Completed request count.
    pub fn completed(&self) -> usize {
        self.latencies_ms.len()
    }

    /// A 64-bit digest of every disposition — two runs with the same
    /// inputs must produce equal fingerprints (and differing shed or
    /// ranking decisions virtually never collide).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV offset, SplitMix finisher below
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01B3);
            h ^= h >> 29;
        };
        for (i, o) in self.outcomes.iter().enumerate() {
            mix(i as u64);
            mix(o.ticket.map_or(u64::MAX, |t| t));
            match &o.disposition {
                Disposition::Shed(r) => {
                    mix(1);
                    mix(match r {
                        Rejected::QueueFull { depth, estimated_wait_ms } => {
                            10 + *depth as u64 + estimated_wait_ms.wrapping_mul(31)
                        }
                        Rejected::DeadlineHopeless { estimated_wait_ms, .. } => {
                            1000 + estimated_wait_ms
                        }
                        Rejected::CircuitOpen { breaker } => 2000 + breaker.len() as u64,
                        Rejected::Evicted { by, estimated_wait_ms } => {
                            3000 + by.index() as u64 + estimated_wait_ms.wrapping_mul(31)
                        }
                        Rejected::ShuttingDown => 4000,
                        Rejected::ExpiredInQueue { waited_ms } => 5000 + waited_ms,
                    });
                }
                Disposition::ExpiredInQueue => mix(2),
                Disposition::Completed { start_ms, end_ms, result } => {
                    mix(3);
                    mix(*start_ms);
                    mix(*end_ms);
                    match result {
                        SimResult::Ranked { users, completeness } => {
                            match completeness {
                                Completeness::Complete => mix(5),
                                Completeness::Degraded { cells_processed, cells_total } => {
                                    mix(6);
                                    mix(*cells_processed as u64);
                                    mix(*cells_total as u64);
                                }
                            }
                            for u in users {
                                mix(u.user.0);
                                mix(u.score.to_bits());
                            }
                        }
                        SimResult::Failed { domain } => {
                            mix(7);
                            mix(domain.len() as u64);
                        }
                    }
                }
                Disposition::AbandonedQueued => mix(8),
                Disposition::AbandonedInFlight { start_ms } => {
                    mix(9);
                    mix(*start_ms);
                }
            }
        }
        h
    }
}

/// What the simulator queues per admitted request: the plan index plus
/// the breaker probes the panel spent admitting it (refunded if the
/// request dies without executing, exactly like the threaded server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SimJob {
    idx: usize,
    grant: ProbeGrant,
}

fn failure_domain(e: &EngineError) -> &'static str {
    match e {
        EngineError::Storage(_) => "storage",
        EngineError::Index(_) => "index",
    }
}

/// Runs the simulation: replays `plan` against `engine` under `cfg`.
/// Deterministic given `(engine construction, workload, plan, cfg)`.
///
/// Build the engine with `parallelism: 1` when its stores inject seeded
/// faults — the fault schedule is keyed on operation order.
pub fn run_sim(
    engine: &TklusEngine,
    workload: &[(TklusQuery, Ranking)],
    plan: &LoadPlan,
    cfg: &SimConfig,
) -> SimReport {
    assert!(!workload.is_empty(), "workload must not be empty");
    cfg.serve.validate().expect("valid serve config");
    let serve = &cfg.serve;
    let mut queue: AdmissionQueue<SimJob> =
        AdmissionQueue::new(serve.queue_capacity, serve.workers, serve.est_service_ms);
    let mut panel = BreakerPanel::new(serve.breaker);
    let mut workers_free_at = vec![0u64; serve.workers];
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; plan.requests.len()];
    let mut shed_circuit = 0u64;
    let mut shed_shutdown = 0u64;
    let mut degraded = 0u64;
    let mut failed = 0u64;
    let cutoff = cfg.drain.map(|d| d.at_ms.saturating_add(d.deadline_ms));

    // Dispatches every queued entry whose start instant falls strictly
    // before `limit` (and at or before the drain cutoff).
    let dispatch_until = |limit: u64,
                          queue: &mut AdmissionQueue<SimJob>,
                          panel: &mut BreakerPanel,
                          workers_free_at: &mut [u64],
                          outcomes: &mut [Option<RequestOutcome>],
                          degraded: &mut u64,
                          failed: &mut u64| {
        loop {
            if queue.depth() == 0 {
                return;
            }
            let (wi, free_at) = workers_free_at
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(i, t)| (t, i))
                .expect("at least one worker");
            if free_at >= limit {
                return;
            }
            if cutoff.is_some_and(|c| free_at > c) {
                return; // drain finalization abandons the rest
            }
            match queue.pop_next(free_at) {
                None => return,
                Some(Popped::Expired(entry)) => {
                    // Never executed: refund any probes it was holding.
                    panel.release(entry.payload.grant);
                    let slot = &mut outcomes[entry.payload.idx];
                    let ticket = slot.as_ref().and_then(|o| o.ticket);
                    *slot =
                        Some(RequestOutcome { ticket, disposition: Disposition::ExpiredInQueue });
                }
                Some(Popped::Ready(entry)) => {
                    let req = &plan.requests[entry.payload.idx];
                    // A worker idle since before the entry arrived starts
                    // it at its arrival instant, not in the past.
                    let start = free_at.max(entry.arrival_ms);
                    let (query, ranking) = &workload[req.query_idx % workload.len()];
                    let mut q = query.clone();
                    if let Some(policy) = serve.degrade {
                        // Pressure = backlog still queued behind this one.
                        if queue.depth() >= policy.queue_threshold {
                            q.budget
                                .get_or_insert_with(QueryBudget::default)
                                .tighten_max_cells(policy.max_cells);
                        }
                    }
                    let result = engine.try_query(&q, *ranking);
                    panel.record(start, result.as_ref().map(|_| ()));
                    let sim_result = match result {
                        Ok(outcome) => {
                            if !outcome.completeness.is_complete() {
                                *degraded += 1;
                            }
                            SimResult::Ranked {
                                users: outcome.users,
                                completeness: outcome.completeness,
                            }
                        }
                        Err(e) => {
                            *failed += 1;
                            SimResult::Failed { domain: failure_domain(&e) }
                        }
                    };
                    let end = start.saturating_add(req.service_ms.max(1));
                    workers_free_at[wi] = end;
                    let ticket = outcomes[entry.payload.idx].as_ref().and_then(|o| o.ticket);
                    outcomes[entry.payload.idx] = Some(RequestOutcome {
                        ticket,
                        disposition: Disposition::Completed {
                            start_ms: start,
                            end_ms: end,
                            result: sim_result,
                        },
                    });
                }
            }
        }
    };

    for (idx, req) in plan.requests.iter().enumerate() {
        let now = req.arrival_ms;
        dispatch_until(
            now,
            &mut queue,
            &mut panel,
            &mut workers_free_at,
            &mut outcomes,
            &mut degraded,
            &mut failed,
        );
        if cfg.drain.is_some_and(|d| now >= d.at_ms) {
            shed_shutdown += 1;
            outcomes[idx] = Some(RequestOutcome {
                ticket: None,
                disposition: Disposition::Shed(Rejected::ShuttingDown),
            });
            continue;
        }
        let grant = match panel.check(now) {
            Ok(grant) => grant,
            Err(breaker) => {
                shed_circuit += 1;
                outcomes[idx] = Some(RequestOutcome {
                    ticket: None,
                    disposition: Disposition::Shed(Rejected::CircuitOpen { breaker }),
                });
                continue;
            }
        };
        let busy = workers_free_at.iter().filter(|&&t| t > now).count();
        match queue.try_admit(now, req.priority, req.deadline_ms, SimJob { idx, grant }, busy) {
            AdmitResult::Admitted { id, evicted } => {
                outcomes[idx] = Some(RequestOutcome {
                    ticket: Some(id),
                    disposition: {
                        // Placeholder until dispatch/drain decides; overwritten
                        // later. AbandonedQueued is the only state that can
                        // survive to the end untouched.
                        Disposition::AbandonedQueued
                    },
                });
                if let Some(victim) = evicted {
                    // The victim never reaches the engine: refund its probes.
                    panel.release(victim.payload.grant);
                    let ticket = outcomes[victim.payload.idx].as_ref().and_then(|o| o.ticket);
                    // Retry-After for the victim: the wait a retry at its own
                    // priority would face in the post-eviction queue.
                    let est = queue.estimated_wait_ms(victim.priority, busy);
                    outcomes[victim.payload.idx] = Some(RequestOutcome {
                        ticket,
                        disposition: Disposition::Shed(Rejected::Evicted {
                            by: req.priority,
                            estimated_wait_ms: est,
                        }),
                    });
                }
            }
            AdmitResult::Shed { reason, payload } => {
                // Shed at enqueue after the breaker gate: probes come back.
                panel.release(payload.grant);
                outcomes[idx] =
                    Some(RequestOutcome { ticket: None, disposition: Disposition::Shed(reason) });
            }
        }
    }

    // Everything still queued after the last arrival runs to completion —
    // or up to the drain cutoff.
    dispatch_until(
        u64::MAX,
        &mut queue,
        &mut panel,
        &mut workers_free_at,
        &mut outcomes,
        &mut degraded,
        &mut failed,
    );

    // Drain finalization: queued leftovers are abandoned by name, and
    // anything whose completion lands past the cutoff was in flight at
    // the deadline — delivered as abandoned, never silently dropped.
    let mut drain_report = cfg.drain.map(|_| DrainReport::default());
    if let (Some(report), Some(cutoff)) = (drain_report.as_mut(), cutoff) {
        for entry in queue.drain_all() {
            panel.release(entry.payload.grant);
            let slot = &mut outcomes[entry.payload.idx];
            let ticket = slot.as_ref().and_then(|o| o.ticket);
            report.abandoned_queued.push(entry.id);
            *slot = Some(RequestOutcome { ticket, disposition: Disposition::AbandonedQueued });
        }
        for slot in outcomes.iter_mut().flatten() {
            if let Disposition::Completed { start_ms, end_ms, .. } = slot.disposition {
                if end_ms > cutoff {
                    report
                        .abandoned_in_flight
                        .push(slot.ticket.expect("completed implies admitted"));
                    slot.disposition = Disposition::AbandonedInFlight { start_ms };
                }
            }
        }
        report.abandoned_queued.sort_unstable();
        report.abandoned_in_flight.sort_unstable();
    }

    let outcomes: Vec<RequestOutcome> =
        outcomes.into_iter().map(|o| o.expect("every request got a disposition")).collect();
    let latencies_ms: Vec<u64> = plan
        .requests
        .iter()
        .zip(&outcomes)
        .filter_map(|(req, o)| match o.disposition {
            Disposition::Completed { end_ms, .. } => Some(end_ms - req.arrival_ms),
            _ => None,
        })
        .collect();

    let end_ms = workers_free_at.iter().copied().max().unwrap_or(0);
    let snapshot = Snapshot {
        now_ms: end_ms,
        depth: queue.depth(),
        capacity: queue.capacity(),
        busy: 0,
        workers: serve.workers,
        draining: cfg.drain.is_some(),
        counters: queue.counters(),
        shed_circuit,
        shed_shutdown,
        completed: latencies_ms.len() as u64,
        failed,
        degraded,
        // The simulator models the query path only; ingest is exercised
        // by the threaded harness and the HTTP end-to-end tests.
        ingested: 0,
        ingest_failed: 0,
    };
    let health = build_report(&snapshot, &panel);
    let metrics = crate::metrics::inject_serve_rows(
        engine.metrics_snapshot().unwrap_or_default(),
        &snapshot,
        &panel,
    );

    SimReport {
        outcomes,
        admission: queue.counters(),
        shed_circuit,
        shed_shutdown,
        degraded,
        failed,
        latencies_ms,
        storage_transitions: panel.storage.transitions().to_vec(),
        index_transitions: panel.index.transitions().to_vec(),
        breaker_trips: panel.trip_count(),
        drain: drain_report,
        health,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_generation_is_deterministic_and_ordered() {
        let cfg = LoadConfig::default();
        let a = generate_plan(&cfg, 7);
        let b = generate_plan(&cfg, 7);
        assert_eq!(a, b);
        assert!(a.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a.requests.iter().all(|r| r.query_idx < 7));
        assert!(a.requests.iter().all(|r| r.service_ms >= 1));
        assert!(a.requests.iter().all(|r| r.deadline_ms == r.arrival_ms + cfg.deadline_ms));
        // A different seed moves the schedule.
        let c = generate_plan(&LoadConfig { seed: 2, ..cfg }, 7);
        assert_ne!(a, c);
    }

    #[test]
    fn priority_weights_cover_all_classes() {
        let plan = generate_plan(&LoadConfig { requests: 300, ..LoadConfig::default() }, 3);
        for p in Priority::ALL {
            assert!(
                plan.requests.iter().any(|r| r.priority == p),
                "priority {p} never drawn in 300 requests"
            );
        }
    }
}
