//! The threaded overload-resilient server (DESIGN.md §11).
//!
//! [`TklusServer`] wraps a shared-immutable [`TklusEngine`] with the
//! admission queue, breaker panel, degrade policy, and graceful drain. It
//! contains *no policy of its own*: every shed/evict/trip decision is made
//! by the same pure state machines the virtual-time simulator drives —
//! the server merely feeds them wall-clock milliseconds and runs admitted
//! queries on a bounded worker pool.
//!
//! Concurrency shape: one `Mutex<State>` guards the queue, panel, and
//! counters; workers block on a condvar for work and *release the lock
//! while executing the engine query* — the engine itself is `&self` and
//! internally parallel, so holding the admission lock across a query
//! would serialize the whole server.

use crate::breaker::{BreakerPanel, ProbeGrant};
use crate::config::ServeConfig;
use crate::health::{build_report, Snapshot};
use crate::ingest::{IngestFailure, IngestSink, SinkError};
use crate::queue::{AdmissionCounters, AdmissionQueue, AdmitResult, Popped, QueuedEntry};
use crate::reject::{Rejected, ServeError};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tklus_core::{QueryOutcome, Ranking, TklusEngine};
use tklus_metrics::HealthReport;
use tklus_model::{Post, Priority, QueryBudget, TklusQuery};

/// Clamp for drain timeouts: `Instant + Duration` panics on overflow,
/// and a caller passing `Duration::MAX` means "wait forever" anyway.
const DRAIN_TIMEOUT_CAP: Duration = Duration::from_secs(365 * 24 * 60 * 60);

/// One queued unit of work plus the channel its answer goes back on.
/// Dropping a sender wakes the waiter with the typed `Abandoned` error.
struct Job {
    /// Half-open probes the breaker panel spent admitting this job; must
    /// be released if the job dies without executing. `None` for ingest:
    /// writes never consume query-breaker probes (the WAL is its own
    /// failure domain and reports failures typed per request).
    grant: Option<ProbeGrant>,
    work: Work,
}

/// The two kinds of work the admission queue carries (DESIGN.md §16):
/// queries and durable writes share the same bounded slots so overload
/// sheds both with one typed taxonomy instead of buffering writes
/// unboundedly.
enum Work {
    Query {
        query: TklusQuery,
        ranking: Ranking,
        resp: mpsc::SyncSender<Result<QueryOutcome, ServeError>>,
    },
    Ingest {
        post: Post,
        resp: mpsc::SyncSender<Result<u64, IngestFailure>>,
    },
}

/// Mutable server state, guarded by one mutex.
struct State {
    queue: AdmissionQueue<Job>,
    panel: BreakerPanel,
    /// Workers currently executing a query.
    busy: usize,
    draining: bool,
    stopped: bool,
    shed_circuit: u64,
    shed_shutdown: u64,
    completed: u64,
    failed: u64,
    degraded: u64,
    ingested: u64,
    ingest_failed: u64,
}

struct Shared {
    engine: Arc<TklusEngine>,
    cfg: ServeConfig,
    /// Durable write destination; `None` means ingest submissions are
    /// answered with a typed `NotConfigured` sink error.
    sink: Option<Arc<dyn IngestSink>>,
    state: Mutex<State>,
    /// Signalled when work arrives or the server stops.
    work_cv: Condvar,
    /// Signalled when a worker goes idle (drain waits on this).
    idle_cv: Condvar,
    started: Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A pending answer. Obtained from [`TklusServer::submit`]; redeem it with
/// [`Ticket::wait`].
pub struct Ticket {
    /// The admission ticket id (matches drain-report accounting).
    pub id: u64,
    rx: mpsc::Receiver<Result<QueryOutcome, ServeError>>,
}

impl Ticket {
    /// Blocks until the query completes, is shed post-admission (evicted
    /// or expired), fails, or is abandoned by a drain.
    pub fn wait(self) -> Result<QueryOutcome, ServeError> {
        // A dropped sender (worker pool torn down without answering) is an
        // abandonment, never a panic.
        self.rx.recv().unwrap_or(Err(ServeError::Abandoned))
    }
}

/// A pending write acknowledgement. Obtained from
/// [`TklusServer::submit_ingest`]; redeem it with [`IngestTicket::wait`].
pub struct IngestTicket {
    /// The admission ticket id (matches drain-report accounting).
    pub id: u64,
    rx: mpsc::Receiver<Result<u64, IngestFailure>>,
}

impl IngestTicket {
    /// Blocks until the write is durably acknowledged (its WAL sequence
    /// number), fails typed, is shed post-admission, or is abandoned.
    pub fn wait(self) -> Result<u64, IngestFailure> {
        self.rx.recv().unwrap_or(Err(IngestFailure::Abandoned))
    }
}

/// What a graceful [`TklusServer::drain`] observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Queries that finished (successfully or typed-failed) before the
    /// drain deadline.
    pub completed: u64,
    /// Ticket ids abandoned while still queued; each waiter received
    /// [`ServeError::Abandoned`].
    pub abandoned_queued: Vec<u64>,
    /// Workers still mid-query at the drain deadline. Their waiters
    /// receive [`ServeError::Abandoned`] when the channel drops.
    pub in_flight_at_deadline: usize,
}

/// The overload-resilient serving layer around a [`TklusEngine`].
pub struct TklusServer {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TklusServer {
    /// Starts `cfg.workers` worker threads over the engine, with no ingest
    /// sink (writes answered `NotConfigured`).
    pub fn start(engine: Arc<TklusEngine>, cfg: ServeConfig) -> Result<Self, String> {
        Self::start_with_sink(engine, cfg, None)
    }

    /// Starts the server with a durable write destination for
    /// [`TklusServer::submit_ingest`].
    pub fn start_with_sink(
        engine: Arc<TklusEngine>,
        cfg: ServeConfig,
        sink: Option<Arc<dyn IngestSink>>,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            engine,
            sink,
            state: Mutex::new(State {
                queue: AdmissionQueue::new(cfg.queue_capacity, cfg.workers, cfg.est_service_ms),
                panel: BreakerPanel::new(cfg.breaker),
                busy: 0,
                draining: false,
                stopped: false,
                shed_circuit: 0,
                shed_shutdown: 0,
                completed: 0,
                failed: 0,
                degraded: 0,
                ingested: 0,
                ingest_failed: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            started: Instant::now(),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Submits a query. Returns a [`Ticket`] when admitted, or the typed
    /// shed reason — computed without touching the engine — when not.
    ///
    /// `deadline` is measured from *now* (arrival); queueing time counts
    /// against it. `None` applies the config default.
    pub fn submit(
        &self,
        query: TklusQuery,
        ranking: Ranking,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        let now_ms = self.shared.now_ms();
        // Saturate both steps: a caller-supplied Duration may overflow
        // u64 milliseconds, and the sum may overflow the clock.
        let relative_ms = deadline.map_or(self.shared.cfg.default_deadline_ms, |d| {
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
        });
        let deadline_ms = now_ms.saturating_add(relative_ms);
        let mut state = self.shared.state.lock().expect("serve lock poisoned");
        if state.draining || state.stopped {
            return Err(Rejected::ShuttingDown);
        }
        let grant = match state.panel.check(now_ms) {
            Ok(grant) => grant,
            Err(breaker) => {
                state.shed_circuit += 1;
                return Err(Rejected::CircuitOpen { breaker });
            }
        };
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job { grant: Some(grant), work: Work::Query { query, ranking, resp: tx } };
        let id = self.admit(&mut state, now_ms, priority, deadline_ms, job)?;
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Submits a durable write. Writes ride the high-priority lane of the
    /// *same* bounded admission queue as queries — a firehose burst and a
    /// query storm contend for the same slots, so overload sheds writes
    /// with the same typed taxonomy instead of buffering them unboundedly.
    /// Writes skip the query breaker gate (the WAL is its own failure
    /// domain; sink failures come back typed on the ticket).
    pub fn submit_ingest(
        &self,
        post: Post,
        deadline: Option<Duration>,
    ) -> Result<IngestTicket, Rejected> {
        let now_ms = self.shared.now_ms();
        let relative_ms = deadline.map_or(self.shared.cfg.default_deadline_ms, |d| {
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
        });
        let deadline_ms = now_ms.saturating_add(relative_ms);
        let mut state = self.shared.state.lock().expect("serve lock poisoned");
        if state.draining || state.stopped {
            return Err(Rejected::ShuttingDown);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job { grant: None, work: Work::Ingest { post, resp: tx } };
        let id = self.admit(&mut state, now_ms, Priority::High, deadline_ms, job)?;
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(IngestTicket { id, rx })
    }

    /// Shared admission step: try the queue, answer any evicted victim
    /// typed (with its Retry-After estimate), refund probes on shed.
    fn admit(
        &self,
        state: &mut State,
        now_ms: u64,
        priority: Priority,
        deadline_ms: u64,
        job: Job,
    ) -> Result<u64, Rejected> {
        let busy = state.busy;
        match state.queue.try_admit(now_ms, priority, deadline_ms, job, busy) {
            AdmitResult::Admitted { id, evicted } => {
                if let Some(mut victim) = evicted {
                    // The victim never reaches the engine: refund any
                    // half-open probes it was admitted on.
                    state.panel.release_opt(victim.payload.grant.take());
                    // Retry-After for the victim: what a retry at its own
                    // priority would wait, estimated against the queue as it
                    // stands after the eviction.
                    let est = state.queue.estimated_wait_ms(victim.priority, busy);
                    answer(victim, Rejected::Evicted { by: priority, estimated_wait_ms: est });
                }
                Ok(id)
            }
            AdmitResult::Shed { reason, payload } => {
                // Shed at enqueue (after the breaker gate): the probes the
                // panel just spent on it must come back too.
                state.panel.release_opt(payload.grant);
                Err(reason)
            }
        }
    }

    /// Convenience: submit and wait.
    pub fn query(
        &self,
        query: TklusQuery,
        ranking: Ranking,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServeError> {
        self.submit(query, ranking, priority, deadline)?.wait()
    }

    /// The current health/readiness report. When a sink is attached and
    /// reports its own health (the WAL sink's compaction state), a
    /// `sink:compaction` probe is appended — persistent maintenance
    /// failure renders the whole report unhealthy.
    pub fn health(&self) -> HealthReport {
        let now_ms = self.shared.now_ms();
        let sink_health = self.shared.sink.as_ref().and_then(|s| s.health());
        let state = self.shared.state.lock().expect("serve lock poisoned");
        let mut report =
            build_report(&Self::observe(now_ms, &state, &self.shared.cfg), &state.panel);
        drop(state);
        if let Some(sink) = sink_health {
            let health = if sink.persistent_failure {
                tklus_metrics::Health::Unhealthy
            } else {
                tklus_metrics::Health::Healthy
            };
            report.probe(tklus_metrics::Probe::new("sink:compaction", health, sink.detail));
        }
        report
    }

    /// One coherent registry snapshot: the engine's query/storage/cache
    /// metrics plus the serving-layer `tklus_serve_*` counters, captured
    /// under the same admission lock the health report uses. A sink that
    /// reports health also contributes
    /// `tklus_wal_compaction_failures_total`.
    pub fn metrics_snapshot(&self) -> tklus_metrics::RegistrySnapshot {
        let now_ms = self.shared.now_ms();
        let sink_health = self.shared.sink.as_ref().and_then(|s| s.health());
        let state = self.shared.state.lock().expect("serve lock poisoned");
        let mut snap = crate::metrics::inject_serve_rows(
            self.shared.engine.metrics_snapshot().unwrap_or_default(),
            &Self::observe(now_ms, &state, &self.shared.cfg),
            &state.panel,
        );
        drop(state);
        if let Some(sink) = sink_health {
            snap.set_counter("tklus_wal_compaction_failures_total", sink.maintenance_failures);
        }
        snap
    }

    /// Captures the gauge snapshot both surfaces above render from.
    fn observe(now_ms: u64, state: &State, cfg: &ServeConfig) -> Snapshot {
        Snapshot {
            now_ms,
            depth: state.queue.depth(),
            capacity: state.queue.capacity(),
            busy: state.busy,
            workers: cfg.workers,
            draining: state.draining,
            counters: state.queue.counters(),
            shed_circuit: state.shed_circuit,
            shed_shutdown: state.shed_shutdown,
            completed: state.completed,
            failed: state.failed,
            degraded: state.degraded,
            ingested: state.ingested,
            ingest_failed: state.ingest_failed,
        }
    }

    /// Monotone admission counters (for tests and the CLI summary).
    pub fn counters(&self) -> AdmissionCounters {
        self.shared.state.lock().expect("serve lock poisoned").queue.counters()
    }

    /// Closes admission *without* consuming the server: every subsequent
    /// `submit`/`submit_ingest` answers [`Rejected::ShuttingDown`], while
    /// workers keep running and answer everything already admitted. The
    /// HTTP front-end calls this at SIGTERM so keep-alive connections see
    /// typed 503s immediately, finishes its connection threads, and only
    /// then calls [`TklusServer::drain`] for the final accounting.
    pub fn begin_drain(&self) {
        let mut state = self.shared.state.lock().expect("serve lock poisoned");
        state.draining = true;
        drop(state);
        self.shared.work_cv.notify_all();
    }

    /// Bounded-wait drain phase that does *not* consume the server:
    /// closes admission, waits up to `timeout` for queued and in-flight
    /// work to finish, then abandons whatever still queues — answering
    /// every abandoned waiter — and returns the abandoned ticket ids
    /// (sorted). In-flight work keeps running and is answered by its
    /// worker.
    ///
    /// The HTTP front-end calls this *before* joining its connection
    /// threads: those threads block on tickets, so every ticket must be
    /// answered (completed or abandoned) within the drain budget or
    /// shutdown would stall behind a slow queue. [`TklusServer::drain`]
    /// afterwards joins the workers and produces the final report.
    pub fn drain_queued(&self, timeout: Duration) -> Vec<u64> {
        let deadline = Instant::now() + timeout.min(DRAIN_TIMEOUT_CAP);
        let mut abandoned = Vec::new();
        let mut state = self.shared.state.lock().expect("serve lock poisoned");
        state.draining = true;
        self.shared.work_cv.notify_all();
        while (state.queue.depth() > 0 || state.busy > 0) && Instant::now() < deadline {
            let wait = deadline.saturating_duration_since(Instant::now());
            let (next, timed_out) =
                self.shared.idle_cv.wait_timeout(state, wait).expect("serve lock poisoned");
            state = next;
            if timed_out.timed_out() {
                break;
            }
        }
        for mut entry in state.queue.drain_all() {
            state.panel.release_opt(entry.payload.grant.take());
            abandoned.push(entry.id);
            abandon(entry);
        }
        abandoned.sort_unstable();
        abandoned
    }

    /// Gracefully drains: closes admission immediately, lets queued and
    /// in-flight work finish for up to `timeout`, then abandons the rest
    /// *by name* — every admitted ticket is accounted for either in
    /// `completed`, as an answered eviction/expiry, or in the report's
    /// abandoned lists. Consumes the server; workers are joined.
    pub fn drain(mut self, timeout: Duration) -> DrainReport {
        let deadline = Instant::now() + timeout.min(DRAIN_TIMEOUT_CAP);
        let mut report = DrainReport::default();
        {
            let mut state = self.shared.state.lock().expect("serve lock poisoned");
            state.draining = true;
            // Wake all workers so none sleeps through the drain.
            self.shared.work_cv.notify_all();
            while (state.queue.depth() > 0 || state.busy > 0) && Instant::now() < deadline {
                let wait = deadline.saturating_duration_since(Instant::now());
                let (next, timed_out) =
                    self.shared.idle_cv.wait_timeout(state, wait).expect("serve lock poisoned");
                state = next;
                if timed_out.timed_out() {
                    break;
                }
            }
            // Whatever still queues at the deadline is abandoned, typed.
            for mut entry in state.queue.drain_all() {
                state.panel.release_opt(entry.payload.grant.take());
                report.abandoned_queued.push(entry.id);
                abandon(entry);
            }
            report.in_flight_at_deadline = state.busy;
            report.completed = state.completed;
            state.stopped = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        report.abandoned_queued.sort_unstable();
        report
    }
}

impl Drop for TklusServer {
    fn drop(&mut self) {
        // An un-drained server still shuts down cleanly: stop, wake, join.
        {
            let mut state = self.shared.state.lock().expect("serve lock poisoned");
            state.draining = true;
            state.stopped = true;
            for mut entry in state.queue.drain_all() {
                state.panel.release_opt(entry.payload.grant.take());
                abandon(entry);
            }
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Sends a post-admission shed to a queued job's waiter, on whichever
/// channel (query or ingest) the job carries. The waiter may have given
/// up (receiver dropped) — that is its right, not an error.
fn answer(entry: QueuedEntry<Job>, reason: Rejected) {
    match entry.payload.work {
        Work::Query { resp, .. } => {
            let _ = resp.send(Err(ServeError::Rejected(reason)));
        }
        Work::Ingest { resp, .. } => {
            let _ = resp.send(Err(IngestFailure::Rejected(reason)));
        }
    }
}

/// Answers a drain/Drop abandonment typed on whichever channel the job
/// carries.
fn abandon(entry: QueuedEntry<Job>) {
    match entry.payload.work {
        Work::Query { resp, .. } => {
            let _ = resp.send(Err(ServeError::Abandoned));
        }
        Work::Ingest { resp, .. } => {
            let _ = resp.send(Err(IngestFailure::Abandoned));
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("serve lock poisoned");
    loop {
        // Sleep until there is work or the server stops.
        while !state.stopped && state.queue.depth() == 0 {
            state = shared.work_cv.wait(state).expect("serve lock poisoned");
        }
        if state.stopped {
            return;
        }
        let now_ms = shared.started.elapsed().as_millis() as u64;
        let Some(popped) = state.queue.pop_next(now_ms) else {
            continue; // raced with another worker
        };
        match popped {
            Popped::Expired(mut entry) => {
                // Dead on arrival at dispatch: answer typed, skip the
                // engine, and refund any breaker probes it held.
                state.panel.release_opt(entry.payload.grant.take());
                let waited_ms = now_ms.saturating_sub(entry.arrival_ms);
                answer(entry, Rejected::ExpiredInQueue { waited_ms });
                // An expired pop can be the last thing draining waits on.
                if state.queue.depth() == 0 && state.busy == 0 {
                    shared.idle_cv.notify_all();
                }
            }
            Popped::Ready(entry) => {
                state.busy += 1;
                let deadline_ms = entry.deadline_ms;
                // The query grant is settled by `panel.record` below, not
                // refunded; ingest never holds one.
                let Job { grant: _, work } = entry.payload;
                match work {
                    Work::Query { mut query, ranking, resp } => {
                        // Tighten budgets while still holding the lock (cheap).
                        if let Some(policy) = shared.cfg.degrade {
                            if state.queue.depth() >= policy.queue_threshold {
                                query
                                    .budget
                                    .get_or_insert_with(QueryBudget::default)
                                    .tighten_max_cells(policy.max_cells);
                            }
                        }
                        // Fit the execution into the time left before the
                        // arrival deadline — queueing already consumed part
                        // of it.
                        let remaining = deadline_ms.saturating_sub(now_ms).max(1);
                        query
                            .budget
                            .get_or_insert_with(QueryBudget::default)
                            .tighten_timeout_ms(remaining);

                        drop(state); // run the query WITHOUT the admission lock
                        let result = shared.engine.try_query(&query, ranking);
                        let end_ms = shared.started.elapsed().as_millis() as u64;

                        state = shared.state.lock().expect("serve lock poisoned");
                        state.panel.record(end_ms, result.as_ref().map(|_| ()));
                        match &result {
                            Ok(outcome) => {
                                state.completed += 1;
                                if !outcome.completeness.is_complete() {
                                    state.degraded += 1;
                                }
                            }
                            Err(_) => {
                                state.completed += 1;
                                state.failed += 1;
                            }
                        }
                        state.busy -= 1;
                        if state.queue.depth() == 0 && state.busy == 0 {
                            shared.idle_cv.notify_all();
                        }
                        let _ = resp.send(result.map_err(ServeError::Engine));
                    }
                    Work::Ingest { post, resp } => {
                        drop(state); // run the sink WITHOUT the admission lock
                        let result = match &shared.sink {
                            Some(sink) => sink.ingest(post).map_err(IngestFailure::Sink),
                            None => Err(IngestFailure::Sink(SinkError {
                                kind: "NotConfigured",
                                message: "no ingest sink configured".to_string(),
                                conflict: false,
                            })),
                        };
                        state = shared.state.lock().expect("serve lock poisoned");
                        // Sink outcomes are NOT recorded to the query
                        // breakers: a WAL disk failure must not open the
                        // storage breaker and shed reads.
                        state.ingested += 1;
                        if result.is_err() {
                            state.ingest_failed += 1;
                        }
                        state.busy -= 1;
                        if state.queue.depth() == 0 && state.busy == 0 {
                            shared.idle_cv.notify_all();
                        }
                        let _ = resp.send(result);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Threaded-path smoke tests live in tests/load_harness.rs where a
    // corpus-backed engine is available; policy invariants are covered in
    // the queue/breaker/sim unit tests.
}
