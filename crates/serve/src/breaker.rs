//! Circuit breakers around the engine's failure domains (DESIGN.md §11).
//!
//! One [`CircuitBreaker`] guards each of PR 3's engine error classes
//! (`EngineError::Storage`, `EngineError::Index`). The state machine is
//! the classic three-state one:
//!
//! ```text
//!            failures ≥ threshold in window
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                      │ backoff elapses
//!     │ half_open_probes successes           ▼
//!     └───────────────────────────────── HalfOpen
//!                 probe failure: reopen, backoff ×2 (≤ max)
//! ```
//!
//! While open, the serving layer sheds matching work at admission with
//! [`crate::Rejected::CircuitOpen`] — a corrupt partition or flaky pager
//! fails fast instead of retry-storming the storage stack. Backoff
//! between probe rounds grows exponentially but is bounded by
//! `max_backoff_ms`, so recovery probing never stops entirely.
//!
//! Half-open probes are consumed at *admission* (so an open breaker
//! sheds instantly, without queueing doomed work), which means a probe
//! can die between admission and execution — evicted by a higher
//! priority, expired in the queue, or abandoned by a drain. Each
//! admission therefore carries a [`ProbeGrant`] receipt; a grant whose
//! request never reaches the engine must be handed back via
//! [`BreakerPanel::release`] so the probe budget frees up again.
//! Without that refund the breaker would wedge: all probes spent, no
//! outcome ever recorded, every future request shed — a permanent
//! outage in exactly the overload+fault regime this layer exists for.
//!
//! Like the admission queue, the breaker is a pure state machine over
//! caller-supplied millisecond timestamps: the threaded server feeds it
//! wall-clock time, the simulator virtual time, and every transition is
//! recorded with its timestamp so tests can assert the exact trajectory.

use tklus_core::EngineError;

/// Breaker tuning. Defaults suit the chaos-scale workloads in this repo;
/// real deployments would widen the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Rolling window length, in recorded outcomes.
    pub window: usize,
    /// Failures within the window that trip the breaker.
    pub failure_threshold: usize,
    /// Backoff before the first half-open probe round.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (bounded exponential).
    pub max_backoff_ms: u64,
    /// Consecutive probe successes required to close again.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 32,
            failure_threshold: 8,
            base_backoff_ms: 100,
            max_backoff_ms: 3_200,
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("breaker window must be at least 1".into());
        }
        if self.failure_threshold == 0 || self.failure_threshold > self.window {
            return Err("failure threshold must be in 1..=window".into());
        }
        if self.base_backoff_ms == 0 || self.max_backoff_ms < self.base_backoff_ms {
            return Err("backoff must satisfy 0 < base <= max".into());
        }
        if self.half_open_probes == 0 {
            return Err("half-open probes must be at least 1".into());
        }
        Ok(())
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes feed the rolling window.
    Closed,
    /// Failing fast; matching admissions are shed.
    Open,
    /// Letting a bounded number of probes through to test recovery.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// A three-state circuit breaker with a rolling failure window, half-open
/// probing, and bounded exponential backoff.
#[derive(Debug)]
pub struct CircuitBreaker {
    name: String,
    cfg: BreakerConfig,
    state: BreakerState,
    /// Rolling outcome window, `true` = failure. Only fed while closed.
    window: std::collections::VecDeque<bool>,
    failures_in_window: usize,
    opened_at_ms: u64,
    backoff_ms: u64,
    probes_granted: usize,
    probe_successes: usize,
    transitions: Vec<(u64, BreakerState)>,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker named for the failure domain it guards. The name
    /// is owned so callers can mint breakers for dynamic domains (e.g.
    /// one per query-engine shard) as well as the static panel pair.
    pub fn new(name: impl Into<String>, cfg: BreakerConfig) -> Self {
        Self {
            name: name.into(),
            cfg,
            state: BreakerState::Closed,
            window: std::collections::VecDeque::with_capacity(cfg.window),
            failures_in_window: 0,
            opened_at_ms: 0,
            backoff_ms: cfg.base_backoff_ms,
            probes_granted: 0,
            probe_successes: 0,
            transitions: Vec::new(),
            trips: 0,
        }
    }

    /// The guarded failure domain's name (e.g. `"storage"` / `"index"`,
    /// or a per-shard domain like `"shard-003"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state (without advancing the clock — an open breaker past
    /// its backoff still reads `Open` until [`Self::allow`] probes it).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped open (from closed or a failed probe).
    pub fn trip_count(&self) -> u64 {
        self.trips
    }

    /// Every `(timestamp, new_state)` transition, in order.
    pub fn transitions(&self) -> &[(u64, BreakerState)] {
        &self.transitions
    }

    /// When the current backoff ends. Saturating: a backoff pushed toward
    /// `u64::MAX` pins the retry time at the far future instead of
    /// wrapping into the past and misreading the breaker as retryable.
    fn backoff_ends_ms(&self) -> u64 {
        self.opened_at_ms.saturating_add(self.backoff_ms)
    }

    /// Milliseconds until the next probe round may start (0 unless open).
    pub fn retry_in_ms(&self, now_ms: u64) -> u64 {
        match self.state {
            BreakerState::Open => self.backoff_ends_ms().saturating_sub(now_ms),
            _ => 0,
        }
    }

    /// Whether [`Self::allow`] would grant a request at `now_ms`, without
    /// consuming a probe or transitioning. Lets a caller consult several
    /// breakers and only commit when all of them agree.
    pub fn would_allow(&self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => now_ms >= self.backoff_ends_ms(),
            BreakerState::HalfOpen => self.probes_granted < self.cfg.half_open_probes,
        }
    }

    /// Whether a request may proceed at `now_ms`. An open breaker whose
    /// backoff has elapsed flips to half-open and grants the request as a
    /// probe; a half-open breaker grants up to `half_open_probes` probes
    /// per round.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        self.try_grant(now_ms).is_some()
    }

    /// Like [`Self::allow`], but reports *how* the request was granted:
    /// `Some(true)` consumed a half-open probe (the caller owes the
    /// breaker an outcome, or a [`Self::return_probe`] refund if the
    /// request dies unexecuted), `Some(false)` is closed-state
    /// passthrough, `None` is a fail-fast denial.
    pub fn try_grant(&mut self, now_ms: u64) -> Option<bool> {
        match self.state {
            BreakerState::Closed => Some(false),
            BreakerState::Open => {
                if now_ms >= self.backoff_ends_ms() {
                    self.transition(BreakerState::HalfOpen, now_ms);
                    self.probes_granted = 1;
                    self.probe_successes = 0;
                    Some(true)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_granted < self.cfg.half_open_probes {
                    self.probes_granted += 1;
                    Some(true)
                } else {
                    None
                }
            }
        }
    }

    /// Refunds a half-open probe whose request died without executing
    /// (evicted, expired in the queue, or abandoned by a drain), so the
    /// probe budget reopens for live traffic instead of wedging the
    /// breaker half-open forever with all probes spent and no outcome
    /// ever coming. A no-op unless the breaker is still half-open with
    /// an outstanding (granted-but-unresolved) probe — a refund that
    /// arrives after the round already closed or re-opened is stale and
    /// ignored.
    pub fn return_probe(&mut self) {
        if self.state == BreakerState::HalfOpen && self.probes_granted > self.probe_successes {
            self.probes_granted -= 1;
        }
    }

    /// Records a success for this failure domain.
    pub fn record_success(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => self.push_outcome(false),
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.half_open_probes {
                    // Recovered: close, reset the window and the backoff.
                    self.window.clear();
                    self.failures_in_window = 0;
                    self.backoff_ms = self.cfg.base_backoff_ms;
                    self.transition(BreakerState::Closed, now_ms);
                }
            }
            // A straggler completing after the trip: the window restarts
            // from scratch when the breaker closes again.
            BreakerState::Open => {}
        }
    }

    /// Records a failure for this failure domain.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(true);
                if self.failures_in_window >= self.cfg.failure_threshold {
                    self.backoff_ms = self.cfg.base_backoff_ms;
                    self.trip(now_ms);
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: reopen with doubled (bounded) backoff.
                self.backoff_ms = self.backoff_ms.saturating_mul(2).min(self.cfg.max_backoff_ms);
                self.trip(now_ms);
            }
            BreakerState::Open => {}
        }
    }

    fn push_outcome(&mut self, failure: bool) {
        if self.window.len() == self.cfg.window && self.window.pop_front() == Some(true) {
            self.failures_in_window -= 1;
        }
        self.window.push_back(failure);
        if failure {
            self.failures_in_window += 1;
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.opened_at_ms = now_ms;
        self.trips += 1;
        self.transition(BreakerState::Open, now_ms);
    }

    fn transition(&mut self, to: BreakerState, now_ms: u64) {
        self.state = to;
        self.transitions.push((now_ms, to));
    }
}

/// Receipt for one admission through the panel: which breakers spent a
/// half-open probe on it. Rides with the queued request; if the request
/// dies before executing, hand the receipt back via
/// [`BreakerPanel::release`]. A request admitted through closed breakers
/// holds no probes and its receipt is inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeGrant {
    /// The storage breaker granted this request as a probe.
    pub storage: bool,
    /// The index breaker granted this request as a probe.
    pub index: bool,
}

impl ProbeGrant {
    /// Whether any breaker is waiting on this request's outcome.
    pub fn is_probe(&self) -> bool {
        self.storage || self.index
    }
}

/// The serving layer's pair of breakers, one per engine failure domain
/// (PR 3's [`EngineError::Storage`] / [`EngineError::Index`] classes).
///
/// Outcome routing: a successful query is evidence both domains work (it
/// touched the metadata store and the index), so it feeds both windows; a
/// typed failure feeds only the breaker of the failing domain — a corrupt
/// metadata partition says nothing about the inverted index's health.
#[derive(Debug)]
pub struct BreakerPanel {
    /// Guards `EngineError::Storage`.
    pub storage: CircuitBreaker,
    /// Guards `EngineError::Index`.
    pub index: CircuitBreaker,
}

impl BreakerPanel {
    /// A panel of two closed breakers with the same tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            storage: CircuitBreaker::new("storage", cfg),
            index: CircuitBreaker::new("index", cfg),
        }
    }

    /// Admission-time gate: `Ok` grants the request through every breaker
    /// (consuming half-open probes) and returns the [`ProbeGrant`]
    /// receipt to queue alongside it; `Err` names the first breaker that
    /// is failing fast. Probes are only consumed when *all* breakers
    /// agree, so a denied request never burns another domain's probe.
    pub fn check(&mut self, now_ms: u64) -> Result<ProbeGrant, &'static str> {
        if !self.storage.would_allow(now_ms) {
            return Err("storage");
        }
        if !self.index.would_allow(now_ms) {
            return Err("index");
        }
        let storage = self.storage.try_grant(now_ms);
        let index = self.index.try_grant(now_ms);
        debug_assert!(storage.is_some() && index.is_some(), "would_allow and try_grant agree");
        Ok(ProbeGrant { storage: storage.unwrap_or(false), index: index.unwrap_or(false) })
    }

    /// Refunds the probes an admitted request held when it died without
    /// executing (evicted, expired in the queue, abandoned by a drain) —
    /// see [`CircuitBreaker::return_probe`]. Call exactly once per dead
    /// admission; grants from executed requests are settled by
    /// [`Self::record`] instead.
    pub fn release(&mut self, grant: ProbeGrant) {
        if grant.storage {
            self.storage.return_probe();
        }
        if grant.index {
            self.index.return_probe();
        }
    }

    /// [`Self::release`] for work that may not hold a grant at all (the
    /// ingest lane skips the breaker gate entirely).
    pub fn release_opt(&mut self, grant: Option<ProbeGrant>) {
        if let Some(grant) = grant {
            self.release(grant);
        }
    }

    /// Feeds one completed query's outcome to the panel.
    pub fn record(&mut self, now_ms: u64, outcome: Result<(), &EngineError>) {
        match outcome {
            Ok(()) => {
                self.storage.record_success(now_ms);
                self.index.record_success(now_ms);
            }
            Err(EngineError::Storage(_)) => self.storage.record_failure(now_ms),
            Err(EngineError::Index(_)) => self.index.record_failure(now_ms),
        }
    }

    /// Total trips across both breakers.
    pub fn trip_count(&self) -> u64 {
        self.storage.trip_count() + self.index.trip_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            "storage",
            BreakerConfig {
                window: 8,
                failure_threshold: 4,
                base_backoff_ms: 100,
                max_backoff_ms: 400,
                half_open_probes: 2,
            },
        )
    }

    #[test]
    fn trips_after_threshold_failures_in_window() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(i);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trip_count(), 1);
        assert!(!b.allow(4), "open breaker fails fast");
        assert_eq!(b.retry_in_ms(4), 99);
    }

    #[test]
    fn rolling_window_forgets_old_failures() {
        let mut b = breaker();
        // 3 failures, then a long run of successes pushes them out of the
        // 8-outcome window; 1 more failure must not trip.
        for i in 0..3 {
            b.record_failure(i);
        }
        for i in 3..11 {
            b.record_success(i);
        }
        b.record_failure(11);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probes_close_on_success() {
        let mut b = breaker();
        for i in 0..4 {
            b.record_failure(i);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(50), "backoff not elapsed");
        assert!(b.allow(104), "backoff elapsed: first probe granted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(105), "second probe granted");
        assert!(!b.allow(106), "probe budget spent");
        b.record_success(110);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one success is not enough");
        b.record_success(111);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(112));
        // The trajectory is recorded.
        let states: Vec<_> = b.transitions().iter().map(|&(_, s)| s).collect();
        assert_eq!(states, vec![BreakerState::Open, BreakerState::HalfOpen, BreakerState::Closed]);
    }

    #[test]
    fn failed_probe_reopens_with_bounded_exponential_backoff() {
        let mut b = breaker();
        for i in 0..4 {
            b.record_failure(i);
        }
        // Tripped at t=3 with base backoff 100: probes open at t=103.
        assert!(!b.allow(102));
        assert!(b.allow(103));
        // Round 1 fails -> reopen at 104, backoff 200.
        b.record_failure(104);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(303));
        assert!(b.allow(304));
        // Round 2 fails -> reopen at 305, backoff 400.
        b.record_failure(305);
        assert!(!b.allow(704));
        assert!(b.allow(705));
        // Round 3 fails -> backoff stays 400 (the bound).
        b.record_failure(706);
        assert_eq!(b.retry_in_ms(706), 400);
        assert_eq!(b.trip_count(), 4);
        // Recovery resets the backoff to base.
        assert!(b.allow(1106));
        b.record_success(1107);
        assert!(b.allow(1107));
        b.record_success(1108);
        assert_eq!(b.state(), BreakerState::Closed);
        for i in 0..4 {
            b.record_failure(2000 + i);
        }
        assert_eq!(b.retry_in_ms(2003), 100, "backoff reset to base after recovery");
    }

    #[test]
    fn returned_probe_reopens_the_budget_instead_of_wedging_half_open() {
        let mut b = breaker();
        for i in 0..4 {
            b.record_failure(i);
        }
        // Both probes of the half-open round are granted, then die
        // unexecuted (shed post-admission). Without the refund the
        // breaker would deny traffic forever.
        assert!(b.allow(104));
        assert!(b.allow(105));
        assert!(!b.would_allow(106), "probe budget spent");
        b.return_probe();
        b.return_probe();
        assert!(b.would_allow(107), "refunded probes re-arm the round");
        assert!(b.allow(107));
        b.record_success(108);
        assert!(b.allow(109));
        b.record_success(110);
        assert_eq!(b.state(), BreakerState::Closed, "recovery still possible");
    }

    #[test]
    fn probe_refund_never_revokes_recorded_successes() {
        let mut b = breaker();
        for i in 0..4 {
            b.record_failure(i);
        }
        assert!(b.allow(104));
        b.record_success(105);
        // Only one probe outstanding was granted and it already resolved:
        // further refunds are stale and must not free phantom probes
        // beyond the recorded successes.
        b.return_probe();
        b.return_probe();
        assert!(b.allow(106), "second probe of the round");
        assert!(!b.allow(107), "budget is still bounded by half_open_probes");
    }

    #[test]
    fn stale_refund_after_close_or_reopen_is_ignored() {
        let mut b = breaker();
        for i in 0..4 {
            b.record_failure(i);
        }
        assert!(b.allow(104));
        b.record_failure(105); // reopen: old round's grants are dead
        b.return_probe();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(106), "refund must not pierce the open backoff");
    }

    #[test]
    fn panel_grants_track_probe_consumption_and_release() {
        let cfg = BreakerConfig {
            window: 8,
            failure_threshold: 2,
            base_backoff_ms: 100,
            max_backoff_ms: 400,
            half_open_probes: 1,
        };
        let mut panel = BreakerPanel::new(cfg);
        let grant = panel.check(0).expect("closed panel admits");
        assert!(!grant.is_probe(), "closed-state passthrough holds no probes");
        let storage_err = || {
            EngineError::Storage(tklus_storage::StorageError::Io {
                op: "read",
                page: None,
                source: std::io::Error::other("injected"),
            })
        };
        panel.record(1, Err(&storage_err()));
        panel.record(2, Err(&storage_err()));
        assert_eq!(panel.storage.state(), BreakerState::Open);
        assert!(panel.check(3).is_err(), "open storage breaker sheds");
        let grant = panel.check(103).expect("backoff elapsed: probe granted");
        assert!(grant.storage && !grant.index, "only the half-open breaker spent a probe");
        assert!(panel.check(104).is_err(), "probe budget spent");
        // The probe dies unexecuted; releasing it un-wedges the panel.
        panel.release(grant);
        let again = panel.check(105).expect("released probe re-granted");
        assert!(again.storage);
        panel.record(106, Ok(()));
        assert_eq!(panel.storage.state(), BreakerState::Closed, "recovered");
    }

    #[test]
    fn config_validation_catches_nonsense() {
        assert!(BreakerConfig::default().validate().is_ok());
        assert!(BreakerConfig { window: 0, ..BreakerConfig::default() }.validate().is_err());
        assert!(BreakerConfig { failure_threshold: 0, ..BreakerConfig::default() }
            .validate()
            .is_err());
        assert!(BreakerConfig { failure_threshold: 33, ..BreakerConfig::default() }
            .validate()
            .is_err());
        assert!(BreakerConfig { base_backoff_ms: 0, ..BreakerConfig::default() }
            .validate()
            .is_err());
        assert!(BreakerConfig { max_backoff_ms: 1, ..BreakerConfig::default() }
            .validate()
            .is_err());
        assert!(BreakerConfig { half_open_probes: 0, ..BreakerConfig::default() }
            .validate()
            .is_err());
    }
}
