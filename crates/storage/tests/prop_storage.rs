//! Property-based tests: the B⁺-tree agrees with a BTreeMap model, and the
//! checksummed page format round-trips / detects corruption.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::collections::BTreeMap;
use tklus_storage::{
    seal_page, verify_page, BPlusTree, BufferPool, CheckedPager, MemPager, PageId, PageStore,
    StorageError, PAGE_HEADER_SIZE, PAGE_SIZE,
};

type Key = (u64, u64);

#[derive(Debug, Clone)]
enum Op {
    Insert(Key, u64),
    Delete(Key),
    Get(Key),
    Scan(Key, Key),
}

fn arb_key() -> impl Strategy<Value = Key> {
    // Small key space to force collisions and updates.
    (0u64..64, 0u64..8)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Delete),
        arb_key().prop_map(Op::Get),
        (arb_key(), arb_key()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        // The tree runs over the full production stack: buffer pool over
        // checksummed pages.
        let mut tree: BPlusTree<_, 8> =
            BPlusTree::new(BufferPool::new(CheckedPager::new(MemPager::new()), 8)).unwrap();
        let mut model: BTreeMap<Key, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let old = tree.insert(k, v.to_le_bytes()).unwrap();
                    prop_assert_eq!(old.map(u64::from_le_bytes), model.insert(k, v));
                }
                Op::Delete(k) => {
                    let old = tree.delete(k).unwrap();
                    prop_assert_eq!(old.map(u64::from_le_bytes), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k).unwrap().map(u64::from_le_bytes), model.get(&k).copied());
                }
                Op::Scan(lo, hi) => {
                    let got: Vec<(Key, u64)> =
                        tree.scan(lo, hi).unwrap().into_iter().map(|(k, v)| (k, u64::from_le_bytes(v))).collect();
                    let want: Vec<(Key, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
    }

    #[test]
    fn bulk_load_equals_model(mut keys in proptest::collection::btree_set((0u64..10_000, 0u64..4), 0..800)) {
        let entries: Vec<(Key, [u8; 8])> = keys
            .iter()
            .map(|&k| (k, (k.0 * 10 + k.1).to_le_bytes()))
            .collect();
        let tree: BPlusTree<_, 8> = BPlusTree::bulk_load(MemPager::new(), &entries).unwrap();
        prop_assert_eq!(tree.len(), entries.len() as u64);
        // Full scan returns everything in order.
        let all = tree.scan((0, 0), (u64::MAX, u64::MAX)).unwrap();
        prop_assert_eq!(all.len(), entries.len());
        for ((k, v), (ek, ev)) in all.iter().zip(&entries) {
            prop_assert_eq!(k, ek);
            prop_assert_eq!(v, ev);
        }
        // Spot lookups.
        if let Some(first) = keys.pop_first() {
            prop_assert!(tree.get(first).unwrap().is_some());
        }
        prop_assert_eq!(tree.get((u64::MAX, u64::MAX)).unwrap(), None);
    }

    #[test]
    fn scan_major_is_group_lookup(pairs in proptest::collection::btree_set((0u64..20, 0u64..50), 0..300)) {
        let entries: Vec<(Key, [u8; 0])> = pairs.iter().map(|&k| (k, [])).collect();
        let tree: BPlusTree<_, 0> = BPlusTree::bulk_load(MemPager::new(), &entries).unwrap();
        for major in 0u64..20 {
            let got: Vec<Key> = tree.scan_major(major).unwrap().into_iter().map(|(k, _)| k).collect();
            let want: Vec<Key> = pairs.iter().copied().filter(|k| k.0 == major).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Checksum round-trip: any payload seals and verifies; flipping any
    /// single bit anywhere in the sealed page is detected as a typed error.
    #[test]
    fn checksum_roundtrip_and_single_bit_detection(
        payload in proptest::collection::vec(any::<u8>(), 64),
        offsets in proptest::collection::vec(0usize..PAGE_SIZE, 8),
        bit in 0u8..8,
    ) {
        let mut page = tklus_storage::page::zeroed_page();
        // Scatter the payload across the payload area deterministically.
        for (i, b) in payload.iter().enumerate() {
            let pos = PAGE_HEADER_SIZE + (i * 61) % (PAGE_SIZE - PAGE_HEADER_SIZE);
            page[pos] = *b;
        }
        seal_page(&mut page);
        prop_assert!(verify_page(&page, PageId(0)).is_ok());
        for &off in &offsets {
            let mut bad = page.clone();
            bad[off] ^= 1 << bit;
            let verdict = verify_page(&bad, PageId(3));
            prop_assert!(
                matches!(
                    verdict,
                    Err(StorageError::PageCorrupt { .. }) | Err(StorageError::BadPageHeader { .. })
                ),
                "flip at byte {} bit {} escaped detection", off, bit
            );
        }
    }

    /// The checked pager round-trips arbitrary payloads bit-for-bit.
    #[test]
    fn checked_pager_roundtrip(payload in proptest::collection::vec(any::<u8>(), 1..256)) {
        let store = CheckedPager::new(MemPager::new());
        let id = store.allocate().unwrap();
        let mut page = tklus_storage::page::zeroed_page();
        page[PAGE_HEADER_SIZE..PAGE_HEADER_SIZE + payload.len()].copy_from_slice(&payload);
        store.write(id, &page).unwrap();
        let got = store.read(id).unwrap();
        prop_assert_eq!(&got[PAGE_HEADER_SIZE..PAGE_HEADER_SIZE + payload.len()], &payload[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Large-scale churn against the model: enough keys to span many
    /// leaves, so deletes exercise borrow/merge rebalancing.
    #[test]
    fn churn_matches_model_across_leaves(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree: BPlusTree<_, 8> =
            BPlusTree::new(BufferPool::new(CheckedPager::new(MemPager::new()), 64)).unwrap();
        let mut model: BTreeMap<Key, u64> = BTreeMap::new();
        // Load 3000 keys, then randomly delete/insert/get 3000 times.
        for _ in 0..3000 {
            let k = (rng.gen_range(0u64..5000), 0u64);
            let v: u64 = rng.gen();
            tree.insert(k, v.to_le_bytes()).unwrap();
            model.insert(k, v);
        }
        for _ in 0..3000 {
            let k = (rng.gen_range(0u64..5000), 0u64);
            match rng.gen_range(0..3) {
                0 => {
                    prop_assert_eq!(tree.delete(k).unwrap().map(u64::from_le_bytes), model.remove(&k));
                }
                1 => {
                    let v: u64 = rng.gen();
                    prop_assert_eq!(tree.insert(k, v.to_le_bytes()).unwrap().map(u64::from_le_bytes), model.insert(k, v));
                }
                _ => {
                    prop_assert_eq!(tree.get(k).unwrap().map(u64::from_le_bytes), model.get(&k).copied());
                }
            }
        }
        // Final full scan agrees.
        let got: Vec<(Key, u64)> =
            tree.scan((0, 0), (u64::MAX, u64::MAX)).unwrap().into_iter().map(|(k, v)| (k, u64::from_le_bytes(v))).collect();
        let want: Vec<(Key, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(tree.len(), model.len() as u64);
    }
}
