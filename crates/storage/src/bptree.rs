//! A paged B⁺-tree with composite `(u64, u64)` keys and fixed-size values.
//!
//! Section IV-A: "attribute sid is the primary key for which we build a
//! B⁺-tree. Another B⁺-tree is built on attribute rsid. These indexes are
//! used to accelerate the query processing phase." The composite key covers
//! both uses:
//!
//! * primary index — key `(sid, 0)`, value = the rest of the metadata row;
//! * secondary index — key `(rsid, sid)`, empty value; the non-unique
//!   lookup "select all where rsid equals Id" (Algorithm 1, line 7) becomes
//!   the range scan `(rsid, 0) ..= (rsid, u64::MAX)`.
//!
//! Nodes live in fixed-size pages behind a [`PageStore`] (usually a
//! [`crate::BufferPool`] over a [`crate::CheckedPager`]), so every logical
//! operation's physical I/O cost is observable — the quantity the paper's
//! Maximum-score pruning (Section V-B) is designed to save. Node content
//! starts at [`PAGE_HEADER_SIZE`], leaving the verified page header (magic,
//! format version, CRC32) to the checksum layer.
//!
//! Every operation returns a [`StorageError`] instead of panicking when the
//! store fails or a page decodes to a structurally impossible node
//! (`CorruptNode`); programmer errors (unsorted bulk-load input) still
//! assert.
//!
//! Supported operations: point get, upsert with node splitting, inclusive
//! range scan, delete with sibling borrow/merge rebalancing (including
//! root collapse), and sorted bulk loading.

use crate::error::{StorageError, StorageResult};
use crate::page::{zeroed_page, Page, PageId, PAGE_HEADER_SIZE, PAGE_SIZE};
use crate::pager::PageStore;

/// Composite key: `(major, minor)` ordered lexicographically.
pub type Key = (u64, u64);

const NODE_LEAF: u8 = 1;
const NODE_INTERNAL: u8 = 2;
/// Node content begins after the verified page header.
const NODE_BASE: usize = PAGE_HEADER_SIZE;
/// Node-local header: tag, entry count, leaf `next` pointer.
const HEADER: usize = 16;
const KEY_SIZE: usize = 16;
const CHILD_SIZE: usize = 8;
const NO_NEXT: u64 = u64::MAX;

/// A B⁺-tree storing values of exactly `V` bytes.
///
/// ```
/// use tklus_storage::{BPlusTree, MemPager, StorageError};
///
/// # fn main() -> Result<(), StorageError> {
/// let mut tree: BPlusTree<_, 8> = BPlusTree::new(MemPager::new())?;
/// tree.insert((42, 0), 7u64.to_le_bytes())?;
/// assert_eq!(tree.get((42, 0))?, Some(7u64.to_le_bytes()));
/// // The secondary-index shape: range-scan all entries of one major key.
/// tree.insert((42, 1), 8u64.to_le_bytes())?;
/// assert_eq!(tree.scan_major(42)?.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct BPlusTree<S: PageStore, const V: usize> {
    store: S,
    root: PageId,
    height: usize,
    len: u64,
}

/// Parsed in-memory form of a node page.
enum Node<const V: usize> {
    Leaf { keys: Vec<Key>, vals: Vec<[u8; V]>, next: Option<PageId> },
    Internal { keys: Vec<Key>, children: Vec<PageId> },
}

impl<const V: usize> Node<V> {
    fn leaf_capacity() -> usize {
        (PAGE_SIZE - NODE_BASE - HEADER) / (KEY_SIZE + V)
    }

    fn internal_capacity() -> usize {
        // One leading child pointer, then (key, child) pairs.
        (PAGE_SIZE - NODE_BASE - HEADER - CHILD_SIZE) / (KEY_SIZE + CHILD_SIZE)
    }

    fn parse(page: &Page, id: PageId) -> StorageResult<Self> {
        let corrupt = |detail: String| StorageError::CorruptNode { page_id: id, detail };
        let count = u16::from_le_bytes([page[NODE_BASE + 2], page[NODE_BASE + 3]]) as usize;
        match page[NODE_BASE] {
            NODE_LEAF => {
                if count > Self::leaf_capacity() {
                    return Err(corrupt(format!(
                        "leaf count {count} exceeds capacity {}",
                        Self::leaf_capacity()
                    )));
                }
                let next_raw = read_u64(page, NODE_BASE + 8);
                let next = (next_raw != NO_NEXT).then_some(PageId(next_raw));
                let mut keys = Vec::with_capacity(count);
                let mut vals = Vec::with_capacity(count);
                let mut off = NODE_BASE + HEADER;
                for _ in 0..count {
                    keys.push(read_key(page, off));
                    off += KEY_SIZE;
                    let mut v = [0u8; V];
                    v.copy_from_slice(&page[off..off + V]);
                    vals.push(v);
                    off += V;
                }
                Ok(Node::Leaf { keys, vals, next })
            }
            NODE_INTERNAL => {
                if count > Self::internal_capacity() {
                    return Err(corrupt(format!(
                        "internal count {count} exceeds capacity {}",
                        Self::internal_capacity()
                    )));
                }
                let mut off = NODE_BASE + HEADER;
                let mut children = Vec::with_capacity(count + 1);
                children.push(PageId(read_u64(page, off)));
                off += CHILD_SIZE;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(read_key(page, off));
                    off += KEY_SIZE;
                    children.push(PageId(read_u64(page, off)));
                    off += CHILD_SIZE;
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(corrupt(format!("unknown node tag {t}"))),
        }
    }

    fn serialize(&self) -> Page {
        let mut page = zeroed_page();
        match self {
            Node::Leaf { keys, vals, next } => {
                assert!(keys.len() <= Self::leaf_capacity(), "leaf overflow");
                page[NODE_BASE] = NODE_LEAF;
                page[NODE_BASE + 2..NODE_BASE + 4]
                    .copy_from_slice(&(keys.len() as u16).to_le_bytes());
                page[NODE_BASE + 8..NODE_BASE + 16]
                    .copy_from_slice(&next.map_or(NO_NEXT, |p| p.0).to_le_bytes());
                let mut off = NODE_BASE + HEADER;
                for (k, v) in keys.iter().zip(vals) {
                    write_key(&mut page, off, *k);
                    off += KEY_SIZE;
                    page[off..off + V].copy_from_slice(v);
                    off += V;
                }
            }
            Node::Internal { keys, children } => {
                assert!(keys.len() <= Self::internal_capacity(), "internal overflow");
                assert_eq!(children.len(), keys.len() + 1, "internal arity");
                page[NODE_BASE] = NODE_INTERNAL;
                page[NODE_BASE + 2..NODE_BASE + 4]
                    .copy_from_slice(&(keys.len() as u16).to_le_bytes());
                let mut off = NODE_BASE + HEADER;
                page[off..off + 8].copy_from_slice(&children[0].0.to_le_bytes());
                off += CHILD_SIZE;
                for (k, c) in keys.iter().zip(&children[1..]) {
                    write_key(&mut page, off, *k);
                    off += KEY_SIZE;
                    page[off..off + 8].copy_from_slice(&c.0.to_le_bytes());
                    off += CHILD_SIZE;
                }
            }
        }
        page
    }
}

fn read_u64(page: &Page, off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&page[off..off + 8]);
    u64::from_le_bytes(b)
}

fn read_key(page: &Page, off: usize) -> Key {
    (read_u64(page, off), read_u64(page, off + 8))
}

fn write_key(page: &mut Page, off: usize, k: Key) {
    page[off..off + 8].copy_from_slice(&k.0.to_le_bytes());
    page[off + 8..off + 16].copy_from_slice(&k.1.to_le_bytes());
}

/// Number of keys `<= k` (upper-bound index for descent).
fn upper_bound(keys: &[Key], k: Key) -> usize {
    keys.partition_point(|&x| x <= k)
}

impl<S: PageStore, const V: usize> BPlusTree<S, V> {
    /// Creates an empty tree owning `store`.
    pub fn new(store: S) -> StorageResult<Self> {
        let root = store.allocate()?;
        let empty: Node<V> = Node::Leaf { keys: Vec::new(), vals: Vec::new(), next: None };
        store.write(root, &empty.serialize())?;
        Ok(Self { store, root, height: 0, len: 0 })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The underlying store (for stats inspection).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Consumes the tree, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    fn load(&self, id: PageId) -> StorageResult<Node<V>> {
        Node::parse(&self.store.read(id)?, id)
    }

    fn save(&mut self, id: PageId, node: &Node<V>) -> StorageResult<()> {
        self.store.write(id, &node.serialize())
    }

    /// Point lookup.
    pub fn get(&self, key: Key) -> StorageResult<Option<[u8; V]>> {
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    id = children[upper_bound(&keys, key)];
                }
                Node::Leaf { keys, vals, .. } => {
                    return Ok(keys.binary_search(&key).ok().map(|i| vals[i]));
                }
            }
        }
    }

    /// Inserts or updates; returns the previous value if the key existed.
    pub fn insert(&mut self, key: Key, value: [u8; V]) -> StorageResult<Option<[u8; V]>> {
        // Descend, recording the path of internal nodes and chosen indices.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height);
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = upper_bound(&keys, key);
                    path.push((id, idx));
                    id = children[idx];
                }
                Node::Leaf { mut keys, mut vals, next } => match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = vals[i];
                        vals[i] = value;
                        self.save(id, &Node::Leaf { keys, vals, next })?;
                        return Ok(Some(old));
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                        self.len += 1;
                        if keys.len() <= Node::<V>::leaf_capacity() {
                            self.save(id, &Node::Leaf { keys, vals, next })?;
                        } else {
                            self.split_leaf(id, keys, vals, next, path)?;
                        }
                        return Ok(None);
                    }
                },
            }
        }
    }

    fn split_leaf(
        &mut self,
        id: PageId,
        keys: Vec<Key>,
        vals: Vec<[u8; V]>,
        next: Option<PageId>,
        path: Vec<(PageId, usize)>,
    ) -> StorageResult<()> {
        let mid = keys.len() / 2;
        let right_keys: Vec<Key> = keys[mid..].to_vec();
        let right_vals: Vec<[u8; V]> = vals[mid..].to_vec();
        let sep = right_keys[0];
        let right_id = self.store.allocate()?;
        self.save(right_id, &Node::Leaf { keys: right_keys, vals: right_vals, next })?;
        self.save(
            id,
            &Node::Leaf {
                keys: keys[..mid].to_vec(),
                vals: vals[..mid].to_vec(),
                next: Some(right_id),
            },
        )?;
        self.insert_separator(sep, right_id, path)
    }

    /// Propagates a separator/child pair up the recorded path, splitting
    /// internal nodes (and growing a new root) as needed.
    fn insert_separator(
        &mut self,
        mut sep: Key,
        mut new_child: PageId,
        mut path: Vec<(PageId, usize)>,
    ) -> StorageResult<()> {
        while let Some((id, idx)) = path.pop() {
            let Node::Internal { mut keys, mut children } = self.load(id)? else {
                unreachable!("path contains only internal nodes")
            };
            keys.insert(idx, sep);
            children.insert(idx + 1, new_child);
            if keys.len() <= Node::<V>::internal_capacity() {
                self.save(id, &Node::Internal { keys, children })?;
                return Ok(());
            }
            // Split: middle key moves up.
            let mid = keys.len() / 2;
            let up = keys[mid];
            let right_keys = keys[mid + 1..].to_vec();
            let right_children = children[mid + 1..].to_vec();
            keys.truncate(mid);
            children.truncate(mid + 1);
            let right_id = self.store.allocate()?;
            self.save(right_id, &Node::Internal { keys: right_keys, children: right_children })?;
            self.save(id, &Node::Internal { keys, children })?;
            sep = up;
            new_child = right_id;
        }
        // Root split.
        let old_root = self.root;
        let new_root = self.store.allocate()?;
        self.save(
            new_root,
            &Node::Internal { keys: vec![sep], children: vec![old_root, new_child] },
        )?;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// Removes a key; returns its value if present. Underfull nodes are
    /// rebalanced by borrowing from a sibling or merging with it, with the
    /// usual upward propagation (the root collapses when an internal root
    /// loses its last separator).
    pub fn delete(&mut self, key: Key) -> StorageResult<Option<[u8; V]>> {
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height);
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = upper_bound(&keys, key);
                    path.push((id, idx));
                    id = children[idx];
                }
                Node::Leaf { mut keys, mut vals, next } => {
                    let Ok(i) = keys.binary_search(&key) else { return Ok(None) };
                    let old = vals.remove(i);
                    keys.remove(i);
                    self.len -= 1;
                    let underfull = keys.len() < Self::leaf_min();
                    self.save(id, &Node::Leaf { keys, vals, next })?;
                    if underfull && !path.is_empty() {
                        self.rebalance(id, path)?;
                    }
                    return Ok(Some(old));
                }
            }
        }
    }

    /// Minimum entries in a non-root leaf.
    fn leaf_min() -> usize {
        Node::<V>::leaf_capacity() / 2
    }

    /// Minimum keys in a non-root internal node.
    fn internal_min() -> usize {
        Node::<V>::internal_capacity() / 2
    }

    /// Fixes an underfull node at `child_id`, walking `path` upward.
    fn rebalance(
        &mut self,
        mut child_id: PageId,
        mut path: Vec<(PageId, usize)>,
    ) -> StorageResult<()> {
        while let Some((parent_id, idx)) = path.pop() {
            let Node::Internal { keys: mut pkeys, children: mut pchildren } =
                self.load(parent_id)?
            else {
                unreachable!("path holds internal nodes")
            };
            debug_assert_eq!(pchildren[idx], child_id);
            let fixed = self.fix_child(&mut pkeys, &mut pchildren, idx)?;
            debug_assert!(fixed, "rebalance must resolve the underflow");
            // Root collapse: an internal root left with zero separators
            // hands the tree to its single child.
            if path.is_empty() && pkeys.is_empty() {
                self.root = pchildren[0];
                self.height -= 1;
                return Ok(());
            }
            let parent_underfull = pkeys.len() < Self::internal_min();
            self.save(parent_id, &Node::Internal { keys: pkeys, children: pchildren })?;
            if !parent_underfull || path.is_empty() {
                return Ok(());
            }
            child_id = parent_id;
        }
        Ok(())
    }

    /// Repairs the underfull child at `idx` of a parent whose keys/children
    /// are passed in (and mutated). Returns true when the underflow was
    /// resolved (always, given a sibling exists).
    fn fix_child(
        &mut self,
        pkeys: &mut Vec<Key>,
        pchildren: &mut Vec<PageId>,
        idx: usize,
    ) -> StorageResult<bool> {
        let child_id = pchildren[idx];
        let child = self.load(child_id)?;
        // Prefer borrowing (no structural change), then merging.
        match child {
            Node::Leaf { mut keys, mut vals, next } => {
                if idx > 0 {
                    let left_id = pchildren[idx - 1];
                    let Node::Leaf { keys: mut lk, vals: mut lv, next: ln } = self.load(left_id)?
                    else {
                        unreachable!("siblings share node kind")
                    };
                    if lk.len() > Self::leaf_min() {
                        keys.insert(0, lk.pop().expect("non-empty"));
                        vals.insert(0, lv.pop().expect("non-empty"));
                        pkeys[idx - 1] = keys[0];
                        self.save(left_id, &Node::Leaf { keys: lk, vals: lv, next: ln })?;
                        self.save(child_id, &Node::Leaf { keys, vals, next })?;
                        return Ok(true);
                    }
                    // Merge child into the left sibling.
                    lk.append(&mut keys);
                    lv.append(&mut vals);
                    self.save(left_id, &Node::Leaf { keys: lk, vals: lv, next })?;
                    pkeys.remove(idx - 1);
                    pchildren.remove(idx);
                    return Ok(true);
                }
                // No left sibling: use the right one.
                let right_id = pchildren[idx + 1];
                let Node::Leaf { keys: mut rk, vals: mut rv, next: rn } = self.load(right_id)?
                else {
                    unreachable!("siblings share node kind")
                };
                if rk.len() > Self::leaf_min() {
                    keys.push(rk.remove(0));
                    vals.push(rv.remove(0));
                    pkeys[idx] = rk[0];
                    self.save(right_id, &Node::Leaf { keys: rk, vals: rv, next: rn })?;
                    self.save(child_id, &Node::Leaf { keys, vals, next })?;
                    return Ok(true);
                }
                // Merge the right sibling into the child.
                keys.append(&mut rk);
                vals.append(&mut rv);
                self.save(child_id, &Node::Leaf { keys, vals, next: rn })?;
                pkeys.remove(idx);
                pchildren.remove(idx + 1);
                Ok(true)
            }
            Node::Internal { mut keys, mut children } => {
                if idx > 0 {
                    let left_id = pchildren[idx - 1];
                    let Node::Internal { keys: mut lk, children: mut lc } = self.load(left_id)?
                    else {
                        unreachable!("siblings share node kind")
                    };
                    if lk.len() > Self::internal_min() {
                        // Rotate through the parent separator.
                        keys.insert(0, pkeys[idx - 1]);
                        pkeys[idx - 1] = lk.pop().expect("non-empty");
                        children.insert(0, lc.pop().expect("non-empty"));
                        self.save(left_id, &Node::Internal { keys: lk, children: lc })?;
                        self.save(child_id, &Node::Internal { keys, children })?;
                        return Ok(true);
                    }
                    // Merge: left + separator + child.
                    lk.push(pkeys[idx - 1]);
                    lk.append(&mut keys);
                    lc.append(&mut children);
                    self.save(left_id, &Node::Internal { keys: lk, children: lc })?;
                    pkeys.remove(idx - 1);
                    pchildren.remove(idx);
                    return Ok(true);
                }
                let right_id = pchildren[idx + 1];
                let Node::Internal { keys: mut rk, children: mut rc } = self.load(right_id)? else {
                    unreachable!("siblings share node kind")
                };
                if rk.len() > Self::internal_min() {
                    keys.push(pkeys[idx]);
                    pkeys[idx] = rk.remove(0);
                    children.push(rc.remove(0));
                    self.save(right_id, &Node::Internal { keys: rk, children: rc })?;
                    self.save(child_id, &Node::Internal { keys, children })?;
                    return Ok(true);
                }
                // Merge: child + separator + right.
                keys.push(pkeys[idx]);
                keys.append(&mut rk);
                children.append(&mut rc);
                self.save(child_id, &Node::Internal { keys, children })?;
                pkeys.remove(idx);
                pchildren.remove(idx + 1);
                Ok(true)
            }
        }
    }

    /// Inclusive range scan `lo ..= hi`, in key order.
    pub fn scan(&self, lo: Key, hi: Key) -> StorageResult<Vec<(Key, [u8; V])>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        // Descend to the leaf containing lo: the first separator strictly
        // greater than lo bounds the child on the right.
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&x| x <= lo);
                    id = children[idx];
                }
                // Walk the leaf chain.
                Node::Leaf { keys, vals, next } => {
                    for (k, v) in keys.iter().zip(&vals) {
                        if *k > hi {
                            return Ok(out);
                        }
                        if *k >= lo {
                            out.push((*k, *v));
                        }
                    }
                    match next {
                        Some(n) => id = n,
                        None => return Ok(out),
                    }
                }
            }
        }
    }

    /// Range scan over all keys with the given major component — the
    /// "select all where rsid equals Id" lookup of Algorithm 1.
    pub fn scan_major(&self, major: u64) -> StorageResult<Vec<(Key, [u8; V])>> {
        self.scan((major, 0), (major, u64::MAX))
    }

    /// Bulk loads a tree from key-sorted entries (keys must be strictly
    /// increasing). Much cheaper than repeated inserts: leaves are packed
    /// left to right at full fill, then each internal level is built in one
    /// pass. Panics if `entries` is unsorted or has duplicates.
    pub fn bulk_load(store: S, entries: &[(Key, [u8; V])]) -> StorageResult<Self> {
        if entries.is_empty() {
            return Self::new(store);
        }
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly sorted keys"
        );
        let leaf_cap = Node::<V>::leaf_capacity();
        // Build leaves.
        let mut level: Vec<(Key, PageId)> = Vec::new(); // (first key, page)
        let chunks: Vec<&[(Key, [u8; V])]> = entries.chunks(leaf_cap).collect();
        let mut ids: Vec<PageId> = Vec::with_capacity(chunks.len());
        for _ in &chunks {
            ids.push(store.allocate()?);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let node: Node<V> = Node::Leaf {
                keys: chunk.iter().map(|e| e.0).collect(),
                vals: chunk.iter().map(|e| e.1).collect(),
                next: ids.get(i + 1).copied(),
            };
            store.write(ids[i], &node.serialize())?;
            level.push((chunk[0].0, ids[i]));
        }
        // Build internal levels until a single root remains.
        let mut height = 0;
        let internal_fanout = Node::<V>::internal_capacity() + 1;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(internal_fanout) {
                let id = store.allocate()?;
                let keys: Vec<Key> = group[1..].iter().map(|e| e.0).collect();
                let children: Vec<PageId> = group.iter().map(|e| e.1).collect();
                let node: Node<V> = Node::Internal { keys, children };
                store.write(id, &node.serialize())?;
                next_level.push((group[0].0, id));
            }
            level = next_level;
            height += 1;
        }
        Ok(Self { store, root: level[0].1, height, len: entries.len() as u64 })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::pager::MemPager;

    type Tree = BPlusTree<MemPager, 8>;

    fn v(x: u64) -> [u8; 8] {
        x.to_le_bytes()
    }

    #[test]
    fn empty_tree() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get((1, 0)).unwrap(), None);
        assert!(t.scan((0, 0), (100, 0)).unwrap().is_empty());
        assert_eq!(t.delete((1, 0)).unwrap(), None);
    }

    #[test]
    fn insert_get_small() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        assert_eq!(t.insert((5, 0), v(50)).unwrap(), None);
        assert_eq!(t.insert((3, 0), v(30)).unwrap(), None);
        assert_eq!(t.insert((7, 0), v(70)).unwrap(), None);
        assert_eq!(t.get((5, 0)).unwrap(), Some(v(50)));
        assert_eq!(t.get((3, 0)).unwrap(), Some(v(30)));
        assert_eq!(t.get((4, 0)).unwrap(), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn upsert_returns_old() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        assert_eq!(t.insert((1, 1), v(10)).unwrap(), None);
        assert_eq!(t.insert((1, 1), v(20)).unwrap(), Some(v(10)));
        assert_eq!(t.get((1, 1)).unwrap(), Some(v(20)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_searchable() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        let n = 5000u64;
        // Insert in a scrambled order to exercise splits everywhere.
        for i in 0..n {
            let k = (i * 2654435761) % n;
            t.insert((k, 0), v(k * 10)).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height() >= 1, "tree should have split");
        for k in 0..n {
            assert_eq!(t.get((k, 0)).unwrap(), Some(v(k * 10)), "key {k}");
        }
        assert_eq!(t.get((n, 0)).unwrap(), None);
    }

    #[test]
    fn scan_returns_sorted_inclusive_range() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        for k in (0..1000u64).rev() {
            t.insert((k, 0), v(k)).unwrap();
        }
        let got = t.scan((100, 0), (110, 0)).unwrap();
        let keys: Vec<u64> = got.iter().map(|e| e.0 .0).collect();
        assert_eq!(keys, (100..=110).collect::<Vec<_>>());
        // Empty range.
        assert!(t.scan((50, 1), (50, 2)).unwrap().is_empty());
        // Inverted range.
        assert!(t.scan((10, 0), (5, 0)).unwrap().is_empty());
    }

    #[test]
    fn scan_major_finds_all_minors() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        // Secondary-index shape: (rsid, sid) pairs.
        for sid in 0..50u64 {
            t.insert((7, sid), v(sid)).unwrap();
        }
        t.insert((6, 999), v(0)).unwrap();
        t.insert((8, 0), v(0)).unwrap();
        let got = t.scan_major(7).unwrap();
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|e| e.0 .0 == 7));
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(t.scan_major(9).unwrap().is_empty());
    }

    #[test]
    fn scan_spanning_many_leaves() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        let n = 3000u64;
        for k in 0..n {
            t.insert((k, 0), v(k)).unwrap();
        }
        let all = t.scan((0, 0), (n, 0)).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn delete_removes_and_reinserts() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        for k in 0..500u64 {
            t.insert((k, 0), v(k)).unwrap();
        }
        assert_eq!(t.delete((250, 0)).unwrap(), Some(v(250)));
        assert_eq!(t.get((250, 0)).unwrap(), None);
        assert_eq!(t.len(), 499);
        assert_eq!(t.delete((250, 0)).unwrap(), None);
        t.insert((250, 0), v(999)).unwrap();
        assert_eq!(t.get((250, 0)).unwrap(), Some(v(999)));
        // Neighbours unaffected.
        assert_eq!(t.get((249, 0)).unwrap(), Some(v(249)));
        assert_eq!(t.get((251, 0)).unwrap(), Some(v(251)));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let n = 4000u64;
        let entries: Vec<((u64, u64), [u8; 8])> = (0..n).map(|k| ((k, 0), v(k * 3))).collect();
        let bulk = Tree::bulk_load(MemPager::new(), &entries).unwrap();
        assert_eq!(bulk.len(), n);
        for k in (0..n).step_by(37) {
            assert_eq!(bulk.get((k, 0)).unwrap(), Some(v(k * 3)));
        }
        let scan = bulk.scan((0, 0), (n, u64::MAX)).unwrap();
        assert_eq!(scan.len(), n as usize);
        // Bulk load writes far fewer pages than incremental insertion.
        let bulk_writes = bulk.store().stats().page_writes();
        let mut incr = Tree::new(MemPager::new()).unwrap();
        for (k, val) in &entries {
            incr.insert(*k, *val).unwrap();
        }
        let incr_writes = incr.store().stats().page_writes();
        assert!(bulk_writes * 10 < incr_writes, "bulk {bulk_writes} vs incremental {incr_writes}");
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let t = Tree::bulk_load(MemPager::new(), &[]).unwrap();
        assert!(t.is_empty());
        let t1 = Tree::bulk_load(MemPager::new(), &[((1, 2), v(9))]).unwrap();
        assert_eq!(t1.get((1, 2)).unwrap(), Some(v(9)));
        assert_eq!(t1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn bulk_load_rejects_unsorted() {
        let _ = Tree::bulk_load(MemPager::new(), &[((2, 0), v(1)), ((1, 0), v(2))]);
    }

    #[test]
    fn corrupt_node_tag_is_a_typed_error() {
        let t = Tree::bulk_load(
            MemPager::new(),
            &(0..10u64).map(|k| ((k, 0), v(k))).collect::<Vec<_>>(),
        )
        .unwrap();
        // Scribble an impossible tag over the root node.
        let mut raw = t.store().read(PageId(0)).unwrap();
        raw[NODE_BASE] = 9;
        t.store().write(PageId(0), &raw).unwrap();
        assert!(matches!(t.get((0, 0)), Err(StorageError::CorruptNode { .. })));
    }

    #[test]
    fn impossible_count_is_a_typed_error() {
        let t = Tree::bulk_load(
            MemPager::new(),
            &(0..10u64).map(|k| ((k, 0), v(k))).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut raw = t.store().read(PageId(0)).unwrap();
        raw[NODE_BASE + 2..NODE_BASE + 4].copy_from_slice(&u16::MAX.to_le_bytes());
        t.store().write(PageId(0), &raw).unwrap();
        assert!(matches!(t.get((0, 0)), Err(StorageError::CorruptNode { .. })));
    }

    #[test]
    fn composite_key_ordering() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        t.insert((1, 5), v(15)).unwrap();
        t.insert((1, 2), v(12)).unwrap();
        t.insert((2, 0), v(20)).unwrap();
        let got = t.scan((1, 0), (1, u64::MAX)).unwrap();
        let keys: Vec<Key> = got.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![(1, 2), (1, 5)]);
    }

    #[test]
    fn io_counts_grow_with_depth() {
        let mut t = Tree::new(MemPager::new()).unwrap();
        for k in 0..20000u64 {
            t.insert((k, 0), v(k)).unwrap();
        }
        let before = t.store().stats().page_reads();
        t.get((12345, 0)).unwrap();
        let after = t.store().stats().page_reads();
        let per_get = after - before;
        assert_eq!(per_get as usize, t.height() + 1, "one read per level");
    }
}

#[cfg(test)]
mod delete_rebalance_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::pager::MemPager;

    type Tree = BPlusTree<MemPager, 8>;

    fn v(x: u64) -> [u8; 8] {
        x.to_le_bytes()
    }

    fn full_tree(n: u64) -> Tree {
        let entries: Vec<((u64, u64), [u8; 8])> = (0..n).map(|k| ((k, 0), v(k))).collect();
        Tree::bulk_load(MemPager::new(), &entries).unwrap()
    }

    #[test]
    fn delete_everything_collapses_to_empty_root_leaf() {
        // Leaf fanout is ~170, so 40k entries give a height-2 tree and the
        // deletes exercise multi-level merges and the root collapse.
        let n = 40_000u64;
        let mut t = full_tree(n);
        assert!(t.height() >= 2, "tall tree to exercise multi-level merges");
        // Delete in an order that hits merges on both flanks.
        for k in (0..n).step_by(2) {
            assert_eq!(t.delete((k, 0)).unwrap(), Some(v(k)), "delete {k}");
        }
        let mut odds: Vec<u64> = (1..n).step_by(2).collect();
        odds.reverse();
        for k in odds {
            assert_eq!(t.delete((k, 0)).unwrap(), Some(v(k)), "delete {k}");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0, "root collapsed back to a leaf");
        assert_eq!(t.get((0, 0)).unwrap(), None);
        assert!(t.scan((0, 0), (n, 0)).unwrap().is_empty());
    }

    #[test]
    fn interleaved_deletes_keep_scans_correct() {
        let n = 10_000u64;
        let mut t = full_tree(n);
        // Remove every third key.
        for k in (0..n).step_by(3) {
            t.delete((k, 0)).unwrap();
        }
        let remaining = t.scan((0, 0), (n, 0)).unwrap();
        let expect: Vec<u64> = (0..n).filter(|k| k % 3 != 0).collect();
        assert_eq!(remaining.len(), expect.len());
        for ((got, _), want) in remaining.iter().zip(&expect) {
            assert_eq!(got.0, *want);
        }
        // Survivors still point-readable; victims gone.
        assert_eq!(t.get((1, 0)).unwrap(), Some(v(1)));
        assert_eq!(t.get((3, 0)).unwrap(), None);
    }

    #[test]
    fn delete_then_reinsert_cycles() {
        let mut t = full_tree(5_000);
        for round in 0..3 {
            for k in 1_000..2_000u64 {
                assert!(t.delete((k, 0)).unwrap().is_some(), "round {round} delete {k}");
            }
            for k in 1_000..2_000u64 {
                assert_eq!(t.insert((k, 0), v(k * 7)).unwrap(), None, "round {round} reinsert {k}");
            }
        }
        assert_eq!(t.len(), 5_000);
        assert_eq!(t.get((1_500, 0)).unwrap(), Some(v(1_500 * 7)));
        assert_eq!(t.get((2_500, 0)).unwrap(), Some(v(2_500)));
        let all = t.scan((0, 0), (u64::MAX, 0)).unwrap();
        assert_eq!(all.len(), 5_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn height_shrinks_as_tree_empties() {
        let mut t = full_tree(30_000);
        let start_height = t.height();
        assert!(start_height >= 2);
        for k in 0..29_900u64 {
            t.delete((k, 0)).unwrap();
        }
        assert!(t.height() < start_height, "{} -> {}", start_height, t.height());
        // The last hundred keys are all still there.
        for k in 29_900..30_000u64 {
            assert_eq!(t.get((k, 0)).unwrap(), Some(v(k)));
        }
    }
}
