//! Storage substrate for the TkLUS reproduction.
//!
//! Section IV-A of the paper stores tweet metadata — the relation
//! `(sid, uid, lat, lon, ruid, rsid)` — "in a centralized metadata database"
//! with "a B⁺-tree" on `sid` and "another B⁺-tree … on attribute rsid",
//! while the inverted index lives in HDFS. This crate provides both storage
//! layers from scratch:
//!
//! * [`page`] / [`pager`] — fixed-size pages over an in-memory or
//!   file-backed store, with I/O accounting ([`IoStats`]).
//! * [`bptree`] — a paged B⁺-tree with composite `(u64, u64)` keys,
//!   fixed-size values, point lookups, range scans, inserts with node
//!   splitting, and sorted bulk loading. The composite key serves both the
//!   unique primary index (`(sid, 0)`) and the non-unique secondary index
//!   (`(rsid, sid)`).
//! * [`buffer`] — an LRU buffer pool between B⁺-trees and the page store,
//!   so logical accesses and physical I/Os can be measured separately (the
//!   paper's Section VI-B runs with "database caches … off"; the pool can
//!   be sized to zero-effective caching for that configuration).
//! * [`lru`] — the generic lock-striped LRU map the buffer pool's
//!   discipline generalizes to: the query-cache hierarchy in `tklus-core`
//!   (circle covers, decoded postings lists, thread popularities) stacks
//!   instances of it above this crate's physical layers.
//! * [`dfs`] — a simulated block-structured distributed file system
//!   standing in for HDFS: named files striped over simulated data nodes,
//!   with per-node read/write/seek counters that the index-size and
//!   query-cost experiments report.
//!
//! The fault-tolerance layer (DESIGN.md §10) lives here too:
//!
//! * [`error`] — the [`StorageError`] taxonomy every fallible operation
//!   reports instead of panicking; [`StorageError::is_transient`] marks
//!   faults worth retrying.
//! * [`checked`] — [`CheckedPager`] seals each written page with a
//!   magic/version/CRC32 header and verifies it on every read, turning
//!   torn writes and bit flips into typed `PageCorrupt`/`BadPageHeader`
//!   errors.
//! * [`retry`] — [`RetryPager`] absorbs transient faults with bounded
//!   exponential backoff.
//! * [`fault`] — [`FaultPager`] injects a deterministic, seeded schedule
//!   of transient errors, torn writes, and bit flips for chaos testing.

pub mod bptree;
pub mod buffer;
pub mod checked;
pub mod dfs;
pub mod error;
pub mod fault;
pub mod iostats;
pub mod lru;
pub mod page;
pub mod pager;
pub mod retry;

pub use bptree::{BPlusTree, Key};
pub use buffer::BufferPool;
pub use checked::CheckedPager;
pub use dfs::{Dfs, DfsConfig, DfsError, DfsFile};
pub use error::{StorageError, StorageResult};
pub use fault::{splitmix64, CrashVerdict, FaultConfig, FaultHandle, FaultPager};
pub use iostats::{IoSnapshot, IoStats};
pub use lru::{CacheLayerStats, ShardedLruCache};
pub use page::{
    crc32, seal_page, verify_page, PageId, PAGE_FORMAT_VERSION, PAGE_HEADER_SIZE, PAGE_SIZE,
};
pub use pager::{FilePager, MemPager, PageStore};
pub use retry::{RetryPager, RetryPolicy};
