//! Bounded retry-with-backoff for transient storage faults.
//!
//! [`RetryPager`] re-issues operations that fail with a *transient* error
//! ([`crate::StorageError::is_transient`]: interrupted / timed-out /
//! would-block I/O) up to a bounded number of attempts, sleeping an
//! exponentially growing backoff between attempts. Non-transient errors —
//! corruption, unallocated pages, hard I/O failures — propagate
//! immediately: retrying cannot fix them and would only add latency.

use crate::error::StorageResult;
use crate::iostats::IoStats;
use crate::page::{Page, PageId};
use crate::pager::PageStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Retry discipline for a [`RetryPager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Sleep before retry `n` is `base_backoff * 2^(n-1)`. Zero disables
    /// sleeping (useful in tests).
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_backoff: Duration::from_millis(1) }
    }
}

/// Page store adapter that absorbs transient faults from the layer below.
#[derive(Debug)]
pub struct RetryPager<S: PageStore> {
    inner: S,
    policy: RetryPolicy,
    retries: AtomicU64,
}

impl<S: PageStore> RetryPager<S> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "RetryPolicy.max_attempts must be at least 1");
        Self { inner, policy, retries: AtomicU64::new(0) }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Total retries performed (attempts beyond the first, summed over all
    /// operations).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn run<T>(&self, mut op: impl FnMut() -> StorageResult<T>) -> StorageResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.policy.max_attempts => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.policy.base_backoff.saturating_mul(1u32 << attempt.min(16));
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<S: PageStore> PageStore for RetryPager<S> {
    fn allocate(&self) -> StorageResult<PageId> {
        self.run(|| self.inner.allocate())
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        self.run(|| self.inner.read(id))
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.run(|| self.inner.write(id, page))
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::error::StorageError;
    use crate::page::zeroed_page;
    use crate::pager::MemPager;
    use std::sync::atomic::AtomicU32;

    /// Store whose reads fail transiently the first `fail_first` times.
    struct Flaky {
        inner: MemPager,
        fail_first: u32,
        seen: AtomicU32,
        transient: bool,
    }

    impl PageStore for Flaky {
        fn allocate(&self) -> StorageResult<PageId> {
            self.inner.allocate()
        }

        fn read(&self, id: PageId) -> StorageResult<Page> {
            if self.seen.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                let kind = if self.transient {
                    std::io::ErrorKind::Interrupted
                } else {
                    std::io::ErrorKind::PermissionDenied
                };
                return Err(StorageError::Io {
                    op: "read",
                    page: Some(id),
                    source: std::io::Error::new(kind, "flaky"),
                });
            }
            self.inner.read(id)
        }

        fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
            self.inner.write(id, page)
        }

        fn page_count(&self) -> u64 {
            self.inner.page_count()
        }

        fn stats(&self) -> &IoStats {
            self.inner.stats()
        }
    }

    fn zero_backoff(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts, base_backoff: Duration::ZERO }
    }

    #[test]
    fn transient_faults_within_budget_are_masked() {
        let inner = Flaky {
            inner: MemPager::new(),
            fail_first: 2,
            seen: AtomicU32::new(0),
            transient: true,
        };
        let store = RetryPager::new(inner, zero_backoff(3));
        let id = store.allocate().unwrap();
        let mut p = zeroed_page();
        p[20] = 9;
        store.write(id, &p).unwrap();
        assert_eq!(store.read(id).unwrap()[20], 9);
        assert_eq!(store.retries(), 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let inner = Flaky {
            inner: MemPager::new(),
            fail_first: 5,
            seen: AtomicU32::new(0),
            transient: true,
        };
        let store = RetryPager::new(inner, zero_backoff(3));
        let id = store.allocate().unwrap();
        assert!(matches!(store.read(id), Err(StorageError::Io { .. })));
        assert_eq!(store.retries(), 2, "two retries then give up");
    }

    #[test]
    fn hard_errors_are_not_retried() {
        let inner = Flaky {
            inner: MemPager::new(),
            fail_first: 1,
            seen: AtomicU32::new(0),
            transient: false,
        };
        let store = RetryPager::new(inner, zero_backoff(5));
        let id = store.allocate().unwrap();
        assert!(store.read(id).is_err());
        assert_eq!(store.retries(), 0);
    }
}
