//! Fixed-size pages.

use std::fmt;

/// Page size in bytes. 4 KiB, the classic database page size.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An owned page buffer.
pub type Page = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page.
pub fn zeroed_page() -> Page {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("PAGE_SIZE slice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(5).to_string(), "p5");
    }
}
