//! Fixed-size pages and the verified page header.
//!
//! Every page carries a 16-byte header maintained by
//! [`crate::CheckedPager`]:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TKPG"
//! 4       2     format version (little-endian u16, currently 1)
//! 6       2     reserved, must be zero
//! 8       4     CRC32 (IEEE, little-endian) over bytes 12..4096
//! 12      4084  payload (includes 4 unused bytes before the node area)
//! ```
//!
//! The CRC covers everything after the checksum field itself, and the
//! magic/version/reserved bytes are validated exactly on read, so *every*
//! bit of the page is protected by some check — a single flipped bit
//! anywhere is detected. Layers that store structured data in pages (the
//! B⁺-tree) place their content at [`PAGE_HEADER_SIZE`] and beyond.

use crate::error::StorageError;
use std::fmt;

/// Page size in bytes. 4 KiB, the classic database page size.
pub const PAGE_SIZE: usize = 4096;

/// Bytes at the front of each page reserved for the verified header.
pub const PAGE_HEADER_SIZE: usize = 16;

/// Magic bytes identifying a sealed tklus page.
pub const PAGE_MAGIC: [u8; 4] = *b"TKPG";

/// Current on-disk page format version.
pub const PAGE_FORMAT_VERSION: u16 = 1;

/// Byte offset where the CRC-covered region begins (just after the
/// checksum field).
const CRC_COVER_START: usize = 12;

/// Identifier of a page within a page store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An owned page buffer.
pub type Page = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page.
pub fn zeroed_page() -> Page {
    vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("PAGE_SIZE slice")
}

/// CRC32 (IEEE 802.3, reflected) over `bytes`. Table-driven, built once.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Writes the verified header into `page`: magic, current format version,
/// zeroed reserved bytes, and the CRC32 of the payload region.
pub fn seal_page(page: &mut Page) {
    page[0..4].copy_from_slice(&PAGE_MAGIC);
    page[4..6].copy_from_slice(&PAGE_FORMAT_VERSION.to_le_bytes());
    page[6..8].copy_from_slice(&[0, 0]);
    let crc = crc32(&page[CRC_COVER_START..]);
    page[8..12].copy_from_slice(&crc.to_le_bytes());
}

/// Validates the header written by [`seal_page`]: magic, format version,
/// reserved bytes, and the payload checksum.
pub fn verify_page(page: &Page, id: PageId) -> Result<(), StorageError> {
    if page[0..4] != PAGE_MAGIC {
        return Err(StorageError::BadPageHeader {
            page_id: id,
            detail: format!("bad magic {:02x?} (want {:02x?} / \"TKPG\")", &page[0..4], PAGE_MAGIC),
        });
    }
    let version = u16::from_le_bytes([page[4], page[5]]);
    if version != PAGE_FORMAT_VERSION {
        return Err(StorageError::BadPageHeader {
            page_id: id,
            detail: format!("format version {version} (supported: {PAGE_FORMAT_VERSION})"),
        });
    }
    if page[6..8] != [0, 0] {
        return Err(StorageError::BadPageHeader {
            page_id: id,
            detail: format!("reserved bytes {:02x?} are not zero", &page[6..8]),
        });
    }
    let expected = u32::from_le_bytes([page[8], page[9], page[10], page[11]]);
    let actual = crc32(&page[CRC_COVER_START..]);
    if expected != actual {
        return Err(StorageError::PageCorrupt { page_id: id, expected, actual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(5).to_string(), "p5");
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn seal_verify_roundtrip() {
        let mut p = zeroed_page();
        p[100] = 0xAB;
        p[PAGE_SIZE - 1] = 0xCD;
        seal_page(&mut p);
        verify_page(&p, PageId(0)).unwrap();
    }

    #[test]
    fn any_payload_bit_flip_is_detected() {
        let mut p = zeroed_page();
        p[200] = 0x55;
        seal_page(&mut p);
        // Flip one bit in a sample of positions across the whole page.
        for pos in [12, 13, 100, PAGE_HEADER_SIZE, 2048, PAGE_SIZE - 1] {
            let mut bad = p.clone();
            bad[pos] ^= 0x01;
            assert!(verify_page(&bad, PageId(1)).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn header_field_corruption_is_typed() {
        let mut p = zeroed_page();
        seal_page(&mut p);

        let mut bad_magic = p.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            verify_page(&bad_magic, PageId(2)),
            Err(StorageError::BadPageHeader { .. })
        ));

        let mut bad_version = p.clone();
        bad_version[4] = 99;
        assert!(matches!(
            verify_page(&bad_version, PageId(2)),
            Err(StorageError::BadPageHeader { .. })
        ));

        let mut bad_reserved = p.clone();
        bad_reserved[6] = 1;
        assert!(matches!(
            verify_page(&bad_reserved, PageId(2)),
            Err(StorageError::BadPageHeader { .. })
        ));

        let mut bad_crc = p.clone();
        bad_crc[9] ^= 0xFF;
        assert!(matches!(
            verify_page(&bad_crc, PageId(2)),
            Err(StorageError::PageCorrupt { page_id: PageId(2), .. })
        ));
    }

    #[test]
    fn unsealed_page_fails_verification() {
        let p = zeroed_page();
        assert!(matches!(verify_page(&p, PageId(0)), Err(StorageError::BadPageHeader { .. })));
    }
}
