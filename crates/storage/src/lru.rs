//! A generic lock-striped LRU cache with monotone hit/miss counters.
//!
//! [`crate::buffer::BufferPool`] applies this discipline to pages; the
//! query-cache hierarchy in `tklus-core` applies it to decoded values —
//! geohash circle covers, decoded postings lists, thread popularities.
//! The striping is identical to the buffer pool's: up to 16 shards, each
//! its own `Mutex<HashMap>`, entries routed by key hash. The LRU clock and
//! the hit/miss counters are striped with the shards — every lookup
//! already holds its shard lock, so bumping plain per-shard fields there
//! is free, whereas a global atomic clock is write-shared by every cache
//! hit on every shard and bounces its cache line across cores. Eviction
//! is per shard, so per-shard stamps order exactly the comparisons
//! eviction makes; cross-shard stamp order was never observable. Stats
//! reads merge the shards.
//!
//! Unlike the buffer pool, a miss here does **not** hold the shard lock
//! while the caller computes the missing value: cached values are derived
//! from layers that take their own locks (DFS, B⁺-trees), and computing
//! under a shard lock would serialize unrelated keys that happen to share
//! a shard. Two threads may therefore race to compute the same key — both
//! compute, both insert, and because every cached value is a pure function
//! of immutable build-time state, both arrive at the identical value.
//!
//! Capacity 0 disables the cache: `get` always misses without counting,
//! `insert` is a no-op, and [`ShardedLruCache::is_enabled`] reports
//! `false` so callers can skip probing entirely.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

/// Most shards the cache is split into; effective per-shard capacity is
/// `capacity / shards` (so tiny caches still evict correctly).
const MAX_SHARDS: usize = 16;

/// A point-in-time view of one cache layer's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLayerStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the caller's compute path.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Configured entry budget (0 = layer disabled).
    pub capacity: usize,
}

impl CacheLayerStats {
    /// Hit fraction of all lookups (0 when the layer saw none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sized-bounded, lock-striped LRU map from `K` to `V`.
///
/// Values are cloned out on hit, so `V` is typically an `Arc` or a small
/// `Copy` type. All operations take `&self`; the cache is `Sync` whenever
/// `K` and `V` are `Send`.
pub struct ShardedLruCache<K, V> {
    /// Per-shard entry budget (`capacity / shards.len()`).
    shard_capacity: usize,
    capacity: usize,
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
}

/// One stripe: its entries plus its own LRU clock and counters, all
/// guarded by the stripe's mutex so the hot path touches no shared
/// atomics.
struct Shard<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        let num_shards = capacity.clamp(1, MAX_SHARDS);
        let shard_capacity = capacity / num_shards;
        let shards = (0..num_shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::with_capacity(shard_capacity.min(1024)),
                    tick: 0,
                    hits: 0,
                    misses: 0,
                })
            })
            .collect();
        Self { shard_capacity, capacity, shards, hasher: RandomState::new() }
    }

    /// Whether the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured entry budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries (across all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far, merged over shards. Monotone
    /// non-decreasing.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits).sum()
    }

    /// Lookups that missed so far, merged over shards. Monotone
    /// non-decreasing.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses).sum()
    }

    /// Counters plus occupancy in one snapshot, merged over shards.
    pub fn stats(&self) -> CacheLayerStats {
        let mut stats = CacheLayerStats { hits: 0, misses: 0, entries: 0, capacity: self.capacity };
        for shard in &self.shards {
            let shard = shard.lock();
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.entries += shard.map.len();
        }
        stats
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up, refreshing its LRU stamp and counting a hit or a
    /// miss. A disabled cache always returns `None` without counting.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = tick;
                let value = value.clone();
                shard.hits += 1;
                Some(value)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-stamped
    /// entry of its shard when the shard is at budget. No-op when disabled.
    pub fn insert(&self, key: K, value: V)
    where
        K: Clone,
    {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let stamp = shard.tick;
        if let Some(slot) = shard.map.get_mut(&key) {
            *slot = (value, stamp);
            return;
        }
        if shard.map.len() >= self.shard_capacity {
            if let Some(victim) =
                shard.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(key, (value, stamp));
    }

    /// Removes `key`, returning its value if it was cached. Neither a hit
    /// nor a miss is counted: removal is an invalidation, not a lookup.
    /// This is the coherence hook for mutable engines — a live ingest path
    /// evicts entries whose inputs it just changed (e.g. the thread
    /// popularity of every ancestor of a newly ingested reply) so the next
    /// lookup recomputes from current state.
    pub fn remove(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        self.shard(key).lock().map.remove(key).map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn hit_miss_counting_and_values() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(8);
        assert!(cache.is_enabled());
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (1, 1, 1, 8));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn remove_invalidates_without_counting() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(8);
        cache.insert(1, 10);
        assert_eq!(cache.remove(&1), Some(10));
        assert_eq!(cache.remove(&1), None);
        // The failed lookup after removal counts as a miss; the removals
        // themselves counted nothing.
        assert_eq!(cache.get(&1), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Disabled cache: remove is a no-op.
        let off: ShardedLruCache<u64, u64> = ShardedLruCache::new(0);
        assert_eq!(off.remove(&1), None);
    }

    #[test]
    fn capacity_zero_disables() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        // Disabled caches never count: probes are free to skip.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_respects_lru_within_budget() {
        // Capacity 1 → a single shard with one slot, so eviction order is
        // exact: each insert displaces the previous entry.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(1);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(2, 20); // evicts 1
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn budget_holds_under_insert_pressure() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(4);
        for k in 0..100 {
            cache.insert(k, k);
        }
        assert!(cache.len() <= 4, "len={}", cache.len());
        // Keys inserted last are the plausible survivors; at least one
        // recent key must still be resident.
        assert!((96..100).any(|k| cache.get(&k).is_some()));
    }

    #[test]
    fn refresh_does_not_grow() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(4);
        for _ in 0..10 {
            cache.insert(7, 70);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&7), Some(70));
    }

    #[test]
    fn concurrent_use_stays_within_budget_and_consistent() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(64);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 31 + i) % 200;
                        match cache.get(&k) {
                            Some(v) => assert_eq!(v, k * 3),
                            None => cache.insert(k, k * 3),
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64, "len={}", cache.len());
        assert_eq!(cache.hits() + cache.misses(), 8 * 500);
    }
}
