//! Deterministic fault injection for chaos testing.
//!
//! [`FaultPager`] wraps any [`PageStore`] and injects a seeded schedule of
//! faults into reads and writes:
//!
//! * **transient errors** — the operation fails with a retryable
//!   [`StorageError::Io`] (kind `Interrupted`);
//! * **torn writes** — only a prefix of the page reaches the inner store,
//!   the rest keeps its previous content; the write *reports success*
//!   (that is what makes torn writes dangerous — the checksum layer above
//!   must catch them at read time);
//! * **bit flips** — a single bit of the page is inverted, on the read
//!   path (returned data differs from stored data) or on the write path
//!   (stored data differs from what was written).
//!
//! The schedule is a pure function of `(seed, operation counter)` via
//! SplitMix64, so a chaos run is exactly reproducible from its seed: same
//! build, same queries, same faults, same outcome. Injection is gated by an
//! [`FaultHandle::arm`] switch shared with the test harness, letting tests
//! build a clean engine first and unleash faults only on the phase under
//! test.

use crate::error::{StorageError, StorageResult};
use crate::iostats::IoStats;
use crate::page::{zeroed_page, Page, PageId, PAGE_SIZE};
use crate::pager::PageStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fault probabilities in parts-per-million, plus the schedule seed.
/// Integer ppm (not floats) keeps the schedule trivially portable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability a read fails with a transient I/O error.
    pub transient_read_ppm: u32,
    /// Probability a write fails with a transient I/O error.
    pub transient_write_ppm: u32,
    /// Probability a write is torn (prefix persisted, success reported).
    pub torn_write_ppm: u32,
    /// Probability a read returns the page with one bit flipped.
    pub bit_flip_read_ppm: u32,
    /// Probability a write persists the page with one bit flipped.
    pub bit_flip_write_ppm: u32,
}

/// What the crash channel says about one write-path operation.
///
/// Produced by [`FaultHandle::crash_verdict`]; consumed by every store
/// that models process death — [`FaultPager`] for the page write path,
/// and the WAL's simulated filesystem for appends/fsyncs/renames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVerdict {
    /// Not the crash point: perform the operation normally.
    Proceed,
    /// This operation IS the crash point: the process dies mid-operation.
    /// The store should persist at most a torn prefix of the operation's
    /// effect (sized by a [`splitmix64`] draw) and then fail; the carried
    /// value is the operation ordinal, for deterministic prefix draws.
    Kill(u64),
    /// The process already died: every operation fails, nothing persists.
    Dead,
}

/// Shared control/observation handle for a [`FaultPager`]: the arming
/// switch and counters of faults actually injected (so chaos tests can
/// assert they exercised something, not vacuously passed).
#[derive(Debug, Default)]
pub struct FaultHandle {
    armed: AtomicBool,
    transient: AtomicU64,
    torn: AtomicU64,
    flipped: AtomicU64,
    /// Crash channel: kill the write path at the Nth operation (1-based;
    /// 0 = channel disarmed). Independent of the `armed` switch so chaos
    /// tests can schedule a crash without enabling the probabilistic
    /// channels.
    crash_at: AtomicU64,
    /// Write-path operations observed while the crash channel was armed.
    crash_ops: AtomicU64,
    /// Latched once the crash fires: the "process" is dead, every
    /// subsequent operation fails.
    crashed: AtomicBool,
}

impl FaultHandle {
    /// Creates a disarmed handle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Enables or disables fault injection.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::SeqCst);
    }

    /// Whether faults are currently being injected.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Transient errors injected so far.
    pub fn transient_injected(&self) -> u64 {
        self.transient.load(Ordering::Relaxed)
    }

    /// Torn writes injected so far.
    pub fn torn_injected(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// Bit flips injected so far (read + write path).
    pub fn flips_injected(&self) -> u64 {
        self.flipped.load(Ordering::Relaxed)
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.transient_injected() + self.torn_injected() + self.flips_injected()
    }

    /// Arms the crash channel: the `n`th write-path operation from now
    /// (1-based) dies mid-write. `n = 0` disarms. Resets the operation
    /// counter and the crashed latch, so a handle can schedule successive
    /// crash points across reopen cycles.
    pub fn arm_crash_at(&self, n: u64) {
        self.crash_at.store(n, Ordering::SeqCst);
        self.crash_ops.store(0, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Whether the scheduled crash has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Write-path operations counted against the crash schedule so far.
    /// A chaos harness sweeps crash points by first running a scenario to
    /// completion with the channel disarmed-but-counting disabled, then
    /// re-running with `arm_crash_at(i)` for every `i` up to this count.
    pub fn crash_ops_seen(&self) -> u64 {
        self.crash_ops.load(Ordering::SeqCst)
    }

    /// Classifies one write-path operation against the crash schedule.
    /// Counts the operation, fires the crash when the schedule says so,
    /// and latches [`Self::is_crashed`] from then on.
    pub fn crash_verdict(&self) -> CrashVerdict {
        if self.crashed.load(Ordering::SeqCst) {
            return CrashVerdict::Dead;
        }
        let at = self.crash_at.load(Ordering::SeqCst);
        if at == 0 {
            return CrashVerdict::Proceed;
        }
        let op = self.crash_ops.fetch_add(1, Ordering::SeqCst) + 1;
        if op == at {
            self.crashed.store(true, Ordering::SeqCst);
            CrashVerdict::Kill(op)
        } else if op > at {
            // Lost the race with the crashing thread: also dead.
            CrashVerdict::Dead
        } else {
            CrashVerdict::Proceed
        }
    }
}

/// SplitMix64: tiny, high-quality, stateless mixing of a 64-bit input.
/// Public because every deterministic fault schedule in the workspace —
/// this pager's channels, the WAL's simulated crash filesystem — derives
/// its draws from the same mixer, keeping cross-layer chaos runs
/// reproducible from one seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fault-injecting page store adapter. See the module docs.
#[derive(Debug)]
pub struct FaultPager<S: PageStore> {
    inner: S,
    cfg: FaultConfig,
    handle: Arc<FaultHandle>,
    op: AtomicU64,
}

impl<S: PageStore> FaultPager<S> {
    /// Wraps `inner` with a fresh (disarmed) handle.
    pub fn new(inner: S, cfg: FaultConfig) -> Self {
        Self::with_handle(inner, cfg, FaultHandle::new())
    }

    /// Wraps `inner`, sharing an externally held handle — the shape chaos
    /// tests use to arm/observe a pager buried inside an engine.
    pub fn with_handle(inner: S, cfg: FaultConfig, handle: Arc<FaultHandle>) -> Self {
        Self { inner, cfg, handle, op: AtomicU64::new(0) }
    }

    /// The control/observation handle.
    pub fn handle(&self) -> Arc<FaultHandle> {
        Arc::clone(&self.handle)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Draws the deterministic random word for `(op, channel)`.
    fn draw(&self, op: u64, channel: u64) -> u64 {
        splitmix64(self.cfg.seed ^ splitmix64(op.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ channel))
    }

    /// True when the channel fires for this operation.
    fn fires(&self, op: u64, channel: u64, ppm: u32) -> bool {
        ppm > 0 && (self.draw(op, channel) % 1_000_000) < ppm as u64
    }

    fn transient(op: &'static str, id: PageId) -> StorageError {
        StorageError::Io {
            op,
            page: Some(id),
            source: std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient fault",
            ),
        }
    }

    /// The error every operation returns once the crash channel fired.
    /// Deliberately *not* transient: a dead process does not come back
    /// because the caller retried.
    fn crashed(op: &'static str, id: PageId) -> StorageError {
        StorageError::Io {
            op,
            page: Some(id),
            source: std::io::Error::new(std::io::ErrorKind::BrokenPipe, "injected crash"),
        }
    }

    fn flip_one_bit(&self, page: &mut Page, op: u64) {
        let bit = (self.draw(op, 7) % (PAGE_SIZE as u64 * 8)) as usize;
        page[bit / 8] ^= 1 << (bit % 8);
        self.handle.flipped.fetch_add(1, Ordering::Relaxed);
    }
}

impl<S: PageStore> PageStore for FaultPager<S> {
    /// Allocation is never faulted: the interesting failure surface is the
    /// data path, and faulting growth would only abort setup early.
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        // Reads do not advance the crash schedule (the channel kills the
        // *write* path at the Nth write), but a dead process reads nothing.
        if self.handle.is_crashed() {
            return Err(Self::crashed("read", id));
        }
        if !self.handle.is_armed() {
            return self.inner.read(id);
        }
        let op = self.op.fetch_add(1, Ordering::Relaxed);
        if self.fires(op, 1, self.cfg.transient_read_ppm) {
            self.handle.transient.fetch_add(1, Ordering::Relaxed);
            return Err(Self::transient("read", id));
        }
        let mut page = self.inner.read(id)?;
        if self.fires(op, 2, self.cfg.bit_flip_read_ppm) {
            self.flip_one_bit(&mut page, op);
        }
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        match self.handle.crash_verdict() {
            CrashVerdict::Proceed => {}
            CrashVerdict::Dead => return Err(Self::crashed("write", id)),
            CrashVerdict::Kill(op) => {
                // The process dies mid-write: a SplitMix64-sized prefix of
                // the page lands (possibly zero bytes), the tail keeps its
                // old content, and — unlike the torn-write channel — the
                // caller is told the write FAILED, because there is no
                // caller anymore. Recovery code must cope with both the
                // prefix having landed and it having been lost.
                let split = (self.draw(op, 8) % (PAGE_SIZE as u64 + 1)) as usize;
                if split > 0 {
                    let old = self.inner.read(id).unwrap_or_else(|_| zeroed_page());
                    let mut torn = old;
                    torn[..split].copy_from_slice(&page[..split]);
                    let _ = self.inner.write(id, &torn);
                }
                return Err(Self::crashed("write", id));
            }
        }
        if !self.handle.is_armed() {
            return self.inner.write(id, page);
        }
        let op = self.op.fetch_add(1, Ordering::Relaxed);
        if self.fires(op, 3, self.cfg.transient_write_ppm) {
            self.handle.transient.fetch_add(1, Ordering::Relaxed);
            return Err(Self::transient("write", id));
        }
        if self.fires(op, 4, self.cfg.torn_write_ppm) {
            // Persist only a prefix; the tail keeps the old content. The
            // caller is told the write succeeded.
            let old = self.inner.read(id).unwrap_or_else(|_| zeroed_page());
            let split = 1 + (self.draw(op, 5) % (PAGE_SIZE as u64 - 1)) as usize;
            let mut torn = old;
            torn[..split].copy_from_slice(&page[..split]);
            self.inner.write(id, &torn)?;
            self.handle.torn.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if self.fires(op, 6, self.cfg.bit_flip_write_ppm) {
            let mut flipped = page.clone();
            self.flip_one_bit(&mut flipped, op);
            return self.inner.write(id, &flipped);
        }
        self.inner.write(id, page)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::checked::CheckedPager;
    use crate::pager::MemPager;

    fn always(ppm_field: impl Fn(&mut FaultConfig)) -> FaultConfig {
        let mut cfg = FaultConfig { seed: 42, ..FaultConfig::default() };
        ppm_field(&mut cfg);
        cfg
    }

    #[test]
    fn disarmed_pager_is_transparent() {
        let cfg = always(|c| c.transient_read_ppm = 1_000_000);
        let store = FaultPager::new(MemPager::new(), cfg);
        let id = store.allocate().unwrap();
        // Not armed: reads succeed despite a 100% fault rate.
        for _ in 0..10 {
            store.read(id).unwrap();
        }
        assert_eq!(store.handle().total_injected(), 0);
    }

    #[test]
    fn armed_transient_reads_fail_typed() {
        let cfg = always(|c| c.transient_read_ppm = 1_000_000);
        let store = FaultPager::new(MemPager::new(), cfg);
        let id = store.allocate().unwrap();
        store.handle().arm(true);
        let err = store.read(id).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(store.handle().transient_injected(), 1);
    }

    #[test]
    fn torn_writes_report_success_but_corrupt_checked_reads() {
        let cfg = always(|c| c.torn_write_ppm = 1_000_000);
        let store = CheckedPager::new(FaultPager::new(MemPager::new(), cfg));
        let handle = store.inner().handle();
        let id = store.allocate().unwrap();
        handle.arm(true);
        let mut page = zeroed_page();
        for b in page.iter_mut() {
            *b = 0xA5;
        }
        store.write(id, &page).unwrap(); // lies: only a prefix landed
        assert!(handle.torn_injected() >= 1);
        handle.arm(false);
        // The checksum layer catches it on read.
        assert!(matches!(store.read(id), Err(StorageError::PageCorrupt { .. })));
    }

    #[test]
    fn bit_flips_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<u32> {
            let cfg = FaultConfig { seed, bit_flip_read_ppm: 500_000, ..FaultConfig::default() };
            let store = FaultPager::new(MemPager::new(), cfg);
            let id = store.allocate().unwrap();
            let mut page = zeroed_page();
            page[100] = 1;
            store.write(id, &page).unwrap();
            store.handle().arm(true);
            (0..20).map(|_| crate::page::crc32(&store.read(id).unwrap()[..])).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn crash_channel_kills_write_path_at_nth_write() {
        let store = FaultPager::new(MemPager::new(), FaultConfig { seed: 9, ..Default::default() });
        let handle = store.handle();
        let id = store.allocate().unwrap();
        let mut page = zeroed_page();
        for b in page.iter_mut() {
            *b = 0xEE;
        }
        // Crash at the 3rd write: two writes land, the third dies.
        handle.arm_crash_at(3);
        store.write(id, &page).unwrap();
        store.write(id, &page).unwrap();
        let err = store.write(id, &page).unwrap_err();
        assert!(!err.is_transient(), "a crash is not retryable: {err}");
        assert!(handle.is_crashed());
        // Dead process: reads and writes both fail from now on.
        assert!(store.read(id).is_err());
        assert!(store.write(id, &page).is_err());
        // Only pre-death operations count against the schedule; the
        // post-crash attempts short-circuit at the latch.
        assert_eq!(handle.crash_ops_seen(), 3);
        // Re-arming across a "reopen" resurrects the store.
        handle.arm_crash_at(0);
        store.read(id).unwrap();
    }

    #[test]
    fn crash_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let store =
                FaultPager::new(MemPager::new(), FaultConfig { seed, ..Default::default() });
            let id = store.allocate().unwrap();
            let mut page = zeroed_page();
            for b in page.iter_mut() {
                *b = 0xA7;
            }
            store.handle().arm_crash_at(1);
            let _ = store.write(id, &page);
            store.handle().arm_crash_at(0);
            crate::page::crc32(&store.read(id).unwrap()[..])
        };
        assert_eq!(run(5), run(5), "same seed, same torn prefix");
    }

    #[test]
    fn flip_counters_count_injections() {
        let cfg = always(|c| c.bit_flip_write_ppm = 1_000_000);
        let store = FaultPager::new(MemPager::new(), cfg);
        let id = store.allocate().unwrap();
        store.handle().arm(true);
        store.write(id, &zeroed_page()).unwrap();
        assert_eq!(store.handle().flips_injected(), 1);
        // Exactly one bit differs from zero.
        store.handle().arm(false);
        let ones: u32 = store.read(id).unwrap().iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }
}
