//! Page stores: the physical layer under B⁺-trees.
//!
//! Two implementations share the [`PageStore`] trait: [`MemPager`] keeps
//! pages in memory (deterministic, fast — the default for experiments,
//! where *counted* I/Os rather than real disk latency drive the results,
//! matching how the paper reasons about costs), and [`FilePager`] is backed
//! by a real file for durability-shaped testing. Both count physical reads
//! and writes through a shared [`IoStats`].
//!
//! All operations take `&self`: stores use interior mutability so that a
//! read-only query path can run concurrently from many threads over one
//! shared store (the engine's `&self` query API bottoms out here).
//!
//! Every operation that can fail returns a [`StorageError`] instead of
//! panicking: an unallocated page id, a short read, or a failed syscall is
//! reported to the caller, which decides whether to retry
//! ([`crate::RetryPager`]), surface the fault, or degrade.

use crate::error::{StorageError, StorageResult};
use crate::iostats::IoStats;
use crate::page::{zeroed_page, Page, PageId, PAGE_SIZE};
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A store of fixed-size pages addressed by [`PageId`].
///
/// Methods take `&self`; implementations must be safe to call from many
/// threads at once (hence the `Send + Sync` bound).
pub trait PageStore: Send + Sync {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> StorageResult<PageId>;
    /// Reads a page. Fails with [`StorageError::UnallocatedPage`] if the id
    /// was never allocated.
    fn read(&self, id: PageId) -> StorageResult<Page>;
    /// Writes a page.
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()>;
    /// Number of allocated pages.
    fn page_count(&self) -> u64;
    /// The store's I/O counters.
    fn stats(&self) -> &IoStats;
}

/// Boxed stores forward to their contents, so stacks can be assembled
/// dynamically (e.g. a fault-injection pager slotted under the metadata
/// database in chaos tests).
impl PageStore for Box<dyn PageStore> {
    fn allocate(&self) -> StorageResult<PageId> {
        (**self).allocate()
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        (**self).read(id)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        (**self).write(id, page)
    }

    fn page_count(&self) -> u64 {
        (**self).page_count()
    }

    fn stats(&self) -> &IoStats {
        (**self).stats()
    }
}

/// In-memory page store.
#[derive(Debug)]
pub struct MemPager {
    /// Readers take the shared lock; `allocate` (growth) takes the
    /// exclusive lock. Individual page writes also take the exclusive
    /// lock — page payloads are inline in the Vec.
    pages: RwLock<Vec<Page>>,
    stats: IoStats,
}

impl MemPager {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::with_stats(IoStats::new())
    }

    /// Creates a store sharing the given counters.
    pub fn with_stats(stats: IoStats) -> Self {
        Self { pages: RwLock::new(Vec::new()), stats }
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemPager {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u64);
        pages.push(zeroed_page());
        Ok(id)
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        let pages = self.pages.read();
        let page = pages
            .get(id.0 as usize)
            .ok_or(StorageError::UnallocatedPage { page_id: id, page_count: pages.len() as u64 })?;
        self.stats.record_read();
        Ok(page.clone())
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.write();
        let count = pages.len() as u64;
        let slot = pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnallocatedPage { page_id: id, page_count: count })?;
        self.stats.record_write();
        *slot = page.clone();
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.read().len() as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// File-backed page store. Pages live at offset `id * PAGE_SIZE`.
#[derive(Debug)]
pub struct FilePager {
    file: Mutex<File>,
    page_count: AtomicU64,
    stats: IoStats,
}

fn io_err(op: &'static str, page: Option<PageId>, source: std::io::Error) -> StorageError {
    StorageError::Io { op, page, source }
}

impl FilePager {
    /// Opens (creating if necessary) a page file at `path`. An existing
    /// file's length must be a multiple of [`PAGE_SIZE`].
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("page file length {len} is not a multiple of {PAGE_SIZE}"),
            ));
        }
        Ok(Self {
            file: Mutex::new(file),
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            stats: IoStats::new(),
        })
    }

    fn check_allocated(&self, op: &'static str, id: PageId) -> StorageResult<()> {
        let count = self.page_count.load(Ordering::Relaxed);
        if id.0 >= count {
            debug_assert!(op == "read" || op == "write");
            return Err(StorageError::UnallocatedPage { page_id: id, page_count: count });
        }
        Ok(())
    }
}

impl PageStore for FilePager {
    fn allocate(&self) -> StorageResult<PageId> {
        // Hold the file lock across the counter bump so concurrent
        // allocations get distinct ids AND distinct file extents.
        let mut f = self.file.lock();
        let id = PageId(self.page_count.load(Ordering::Relaxed));
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))
            .map_err(|e| io_err("allocate", Some(id), e))?;
        f.write_all(&zeroed_page()[..]).map_err(|e| io_err("allocate", Some(id), e))?;
        // Only count the page once the extent exists, so a failed extension
        // does not leave an unreadable phantom page behind.
        self.page_count.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        self.check_allocated("read", id)?;
        self.stats.record_read();
        let mut page = zeroed_page();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))
            .map_err(|e| io_err("read", Some(id), e))?;
        f.read_exact(&mut page[..]).map_err(|e| io_err("read", Some(id), e))?;
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.check_allocated("write", id)?;
        self.stats.record_write();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))
            .map_err(|e| io_err("write", Some(id), e))?;
        f.write_all(&page[..]).map_err(|e| io_err("write", Some(id), e))?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Relaxed)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn roundtrip(store: &dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        let mut page = zeroed_page();
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write(a, &page).unwrap();
        let got = store.read(a).unwrap();
        assert_eq!(got[0], 0xAB);
        assert_eq!(got[PAGE_SIZE - 1], 0xCD);
        // b still zeroed.
        assert!(store.read(b).unwrap().iter().all(|&x| x == 0));
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn mem_pager_roundtrip() {
        let p = MemPager::new();
        roundtrip(&p);
        assert_eq!(p.stats().page_reads(), 2);
        assert_eq!(p.stats().page_writes(), 1);
    }

    #[test]
    fn file_pager_roundtrip_and_reopen() {
        let path = std::env::temp_dir().join(format!("tklus-pager-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let p = FilePager::open(&path).unwrap();
            roundtrip(&p);
        }
        {
            // Reopen: data persists.
            let p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_count(), 2);
            assert_eq!(p.read(PageId(0)).unwrap()[0], 0xAB);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unallocated_access_is_a_typed_error() {
        let path = std::env::temp_dir().join(format!("tklus-pager-bad-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let p = FilePager::open(&path).unwrap();
        assert!(matches!(
            p.read(PageId(0)),
            Err(StorageError::UnallocatedPage { page_id: PageId(0), page_count: 0 })
        ));
        assert!(matches!(
            p.write(PageId(5), &zeroed_page()),
            Err(StorageError::UnallocatedPage { page_id: PageId(5), .. })
        ));
        let _ = std::fs::remove_file(&path);

        let m = MemPager::new();
        assert!(matches!(m.read(PageId(0)), Err(StorageError::UnallocatedPage { .. })));
        assert!(matches!(
            m.write(PageId(0), &zeroed_page()),
            Err(StorageError::UnallocatedPage { .. })
        ));
    }

    #[test]
    fn boxed_store_forwards() {
        let boxed: Box<dyn PageStore> = Box::new(MemPager::new());
        let a = boxed.allocate().unwrap();
        let mut page = zeroed_page();
        page[1] = 0x11;
        boxed.write(a, &page).unwrap();
        assert_eq!(boxed.read(a).unwrap()[1], 0x11);
        assert_eq!(boxed.page_count(), 1);
    }

    #[test]
    fn mem_pager_concurrent_reads_and_allocates() {
        let p = MemPager::new();
        let a = p.allocate().unwrap();
        let mut page = zeroed_page();
        page[7] = 0x77;
        p.write(a, &page).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        assert_eq!(p.read(a).unwrap()[7], 0x77);
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..50 {
                    p.allocate().unwrap();
                }
            });
        });
        assert_eq!(p.page_count(), 51);
    }
}
