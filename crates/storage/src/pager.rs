//! Page stores: the physical layer under B⁺-trees.
//!
//! Two implementations share the [`PageStore`] trait: [`MemPager`] keeps
//! pages in memory (deterministic, fast — the default for experiments,
//! where *counted* I/Os rather than real disk latency drive the results,
//! matching how the paper reasons about costs), and [`FilePager`] is backed
//! by a real file for durability-shaped testing. Both count physical reads
//! and writes through a shared [`IoStats`].

use crate::iostats::IoStats;
use crate::page::{zeroed_page, Page, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A store of fixed-size pages addressed by [`PageId`].
pub trait PageStore: Send {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> PageId;
    /// Reads a page. Panics if the id was never allocated.
    fn read(&mut self, id: PageId) -> Page;
    /// Writes a page.
    fn write(&mut self, id: PageId, page: &Page);
    /// Number of allocated pages.
    fn page_count(&self) -> u64;
    /// The store's I/O counters.
    fn stats(&self) -> &IoStats;
}

/// In-memory page store.
#[derive(Debug)]
pub struct MemPager {
    pages: Vec<Page>,
    stats: IoStats,
}

impl MemPager {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::with_stats(IoStats::new())
    }

    /// Creates a store sharing the given counters.
    pub fn with_stats(stats: IoStats) -> Self {
        Self { pages: Vec::new(), stats }
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemPager {
    fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(zeroed_page());
        id
    }

    fn read(&mut self, id: PageId) -> Page {
        self.stats.record_read();
        self.pages[id.0 as usize].clone()
    }

    fn write(&mut self, id: PageId, page: &Page) {
        self.stats.record_write();
        self.pages[id.0 as usize] = page.clone();
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// File-backed page store. Pages live at offset `id * PAGE_SIZE`.
#[derive(Debug)]
pub struct FilePager {
    file: Mutex<File>,
    page_count: u64,
    stats: IoStats,
}

impl FilePager {
    /// Opens (creating if necessary) a page file at `path`. An existing
    /// file's length must be a multiple of [`PAGE_SIZE`].
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("page file length {len} is not a multiple of {PAGE_SIZE}"),
            ));
        }
        Ok(Self { file: Mutex::new(file), page_count: len / PAGE_SIZE as u64, stats: IoStats::new() })
    }
}

impl PageStore for FilePager {
    fn allocate(&mut self) -> PageId {
        let id = PageId(self.page_count);
        self.page_count += 1;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64)).expect("seek");
        f.write_all(&zeroed_page()[..]).expect("extend page file");
        id
    }

    fn read(&mut self, id: PageId) -> Page {
        assert!(id.0 < self.page_count, "read of unallocated page {id}");
        self.stats.record_read();
        let mut page = zeroed_page();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64)).expect("seek");
        f.read_exact(&mut page[..]).expect("read page");
        page
    }

    fn write(&mut self, id: PageId, page: &Page) {
        assert!(id.0 < self.page_count, "write of unallocated page {id}");
        self.stats.record_write();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64)).expect("seek");
        f.write_all(&page[..]).expect("write page");
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &mut dyn PageStore) {
        let a = store.allocate();
        let b = store.allocate();
        assert_ne!(a, b);
        let mut page = zeroed_page();
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write(a, &page);
        let got = store.read(a);
        assert_eq!(got[0], 0xAB);
        assert_eq!(got[PAGE_SIZE - 1], 0xCD);
        // b still zeroed.
        assert!(store.read(b).iter().all(|&x| x == 0));
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn mem_pager_roundtrip() {
        let mut p = MemPager::new();
        roundtrip(&mut p);
        assert_eq!(p.stats().page_reads(), 2);
        assert_eq!(p.stats().page_writes(), 1);
    }

    #[test]
    fn file_pager_roundtrip_and_reopen() {
        let path = std::env::temp_dir().join(format!("tklus-pager-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut p = FilePager::open(&path).unwrap();
            roundtrip(&mut p);
        }
        {
            // Reopen: data persists.
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_count(), 2);
            assert_eq!(p.read(PageId(0))[0], 0xAB);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn file_pager_rejects_unallocated_read() {
        let path = std::env::temp_dir().join(format!("tklus-pager-bad-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut p = FilePager::open(&path).unwrap();
        let _ = p.read(PageId(0));
    }
}
