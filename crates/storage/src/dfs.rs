//! A simulated block-structured distributed file system (the HDFS stand-in).
//!
//! The paper stores the inverted index "in Hadoop distributed file system
//! (HDFS)" and argues that geohash-sorted keys mean "close points associated
//! with the same keyword are probably stored in contiguous disk pages" and
//! that "data indexed by geohash will have all points for a given
//! rectangular area in one computer" (Section IV-B1). This simulator models
//! exactly those properties:
//!
//! * write-once named files, each *placed* on one simulated data node
//!   (by key hash or explicitly), so a spatial partition lives together;
//! * block-granular accounting (default 64 KiB blocks): every read is
//!   charged `ceil(len / block_size)` block reads to the owning node, and a
//!   read that does not continue where the previous read on the same file
//!   ended is additionally charged a seek;
//! * per-node and total counters that the index-size (Fig. 6) and
//!   construction (Fig. 5) harnesses report.
//!
//! File contents live in memory; this is an accounting simulator, not a
//! durability layer — the experiments reason in I/O counts, like the paper.

use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// DFS configuration.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Number of simulated data nodes (the paper's cluster has 3).
    pub nodes: usize,
    /// Block size in bytes.
    pub block_size: usize,
    /// Copies of each file, HDFS-style. The primary copy goes on the
    /// placement node, replicas on the following nodes (mod cluster size).
    /// Capped at the node count. Reads fall over to a replica when the
    /// preferred node is down.
    pub replication: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self { nodes: 3, block_size: 64 * 1024, replication: 1 }
    }
}

/// Errors from DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No file with that name.
    NotFound(String),
    /// A file with that name already exists (files are write-once).
    AlreadyExists(String),
    /// Explicit placement named a node outside `0..nodes`.
    BadNode(usize),
    /// Every node holding a copy of the file is down.
    AllReplicasDown(String),
    /// Read past end of file.
    OutOfBounds { file: String, offset: u64, len: usize, file_len: u64 },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(n) => write!(f, "dfs file not found: {n}"),
            DfsError::AlreadyExists(n) => write!(f, "dfs file already exists: {n}"),
            DfsError::BadNode(n) => write!(f, "dfs node {n} out of range"),
            DfsError::AllReplicasDown(name) => {
                write!(f, "all replicas of {name} are on failed nodes")
            }
            DfsError::OutOfBounds { file, offset, len, file_len } => {
                write!(f, "read [{offset}, {offset}+{len}) past end of {file} (len {file_len})")
            }
        }
    }
}

impl std::error::Error for DfsError {}

/// Per-node I/O counters (a snapshot; counters only grow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Blocks read from this node.
    pub blocks_read: u64,
    /// Blocks written to this node.
    pub blocks_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Non-sequential read starts (disk seeks in the cost model).
    pub seeks: u64,
}

struct FileMeta {
    /// Nodes holding a copy; primary first.
    nodes: Vec<usize>,
    /// Immutable after creation — files are write-once, so concurrent
    /// readers can slice it without any lock.
    data: Vec<u8>,
    /// Where the last read on this file ended, for seek accounting.
    /// Per-file lock: readers of different files never contend on it.
    last_read_end: Mutex<Option<u64>>,
}

/// Live per-node state: counters plus availability, all lock-free so that
/// concurrent reads only touch atomics.
#[derive(Debug, Default)]
struct NodeState {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seeks: AtomicU64,
    up: AtomicBool,
}

impl NodeState {
    fn snapshot(&self) -> NodeCounters {
        NodeCounters {
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
        }
    }
}

struct Inner {
    config: DfsConfig,
    /// The namespace lock guards only the name -> file map; file contents
    /// are behind `Arc` so reads drop the lock before touching data.
    files: RwLock<HashMap<String, Arc<FileMeta>>>,
    nodes: Vec<NodeState>,
}

/// Handle to a simulated DFS cluster. Cheap to clone; all clones share
/// state, so MapReduce workers can write partitions concurrently.
///
/// ```
/// use tklus_storage::{Dfs, DfsConfig};
///
/// let dfs = Dfs::new(DfsConfig { nodes: 3, block_size: 16, replication: 2 });
/// dfs.create_on("part-0", vec![7; 32], 0).unwrap();
/// // The primary node fails; the replica still serves the read.
/// dfs.fail_node(0);
/// assert_eq!(dfs.read_at("part-0", 0, 4).unwrap(), vec![7; 4]);
/// ```
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<Inner>,
}

impl Dfs {
    /// Creates a cluster.
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.nodes > 0, "at least one data node required");
        assert!(config.block_size > 0, "block size must be positive");
        let nodes = (0..config.nodes)
            .map(|_| NodeState { up: AtomicBool::new(true), ..NodeState::default() })
            .collect();
        Self { inner: Arc::new(Inner { config, files: RwLock::new(HashMap::new()), nodes }) }
    }

    /// The configured number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.config.nodes
    }

    /// Creates a write-once file placed by name hash.
    pub fn create(&self, name: &str, data: Vec<u8>) -> Result<(), DfsError> {
        let node = {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            (h.finish() % self.node_count() as u64) as usize
        };
        self.create_on(name, data, node)
    }

    /// Creates a write-once file on an explicit node — how the index writer
    /// keeps one spatial partition on one machine.
    pub fn create_on(&self, name: &str, data: Vec<u8>, node: usize) -> Result<(), DfsError> {
        let config = &self.inner.config;
        if node >= config.nodes {
            return Err(DfsError::BadNode(node));
        }
        let mut files = self.inner.files.write();
        if files.contains_key(name) {
            return Err(DfsError::AlreadyExists(name.to_string()));
        }
        let blocks = data.len().div_ceil(config.block_size).max(1) as u64;
        let copies = config.replication.clamp(1, config.nodes);
        let nodes: Vec<usize> = (0..copies).map(|i| (node + i) % config.nodes).collect();
        for &n in &nodes {
            let counters = &self.inner.nodes[n];
            counters.blocks_written.fetch_add(blocks, Ordering::Relaxed);
            counters.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        }
        files.insert(
            name.to_string(),
            Arc::new(FileMeta { nodes, data, last_read_end: Mutex::new(None) }),
        );
        Ok(())
    }

    /// File length in bytes.
    pub fn len(&self, name: &str) -> Result<u64, DfsError> {
        self.meta(name).map(|f| f.data.len() as u64)
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.files.read().contains_key(name)
    }

    /// The node holding a file's primary copy.
    pub fn node_of(&self, name: &str) -> Result<usize, DfsError> {
        self.meta(name).map(|f| f.nodes[0])
    }

    /// All nodes holding a copy of the file, primary first.
    pub fn replicas_of(&self, name: &str) -> Result<Vec<usize>, DfsError> {
        self.meta(name).map(|f| f.nodes.clone())
    }

    /// Looks up a file, cloning its `Arc` so the namespace lock is held
    /// only for the map probe.
    fn meta(&self, name: &str) -> Result<Arc<FileMeta>, DfsError> {
        self.inner
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DfsError::NotFound(name.to_string()))
    }

    /// Marks a node as failed: reads fall over to replicas; files whose
    /// every copy is on failed nodes become unreadable until a restore.
    pub fn fail_node(&self, node: usize) {
        assert!(node < self.inner.config.nodes, "node {node} out of range");
        self.inner.nodes[node].up.store(false, Ordering::Relaxed);
    }

    /// Brings a failed node back (its data was never lost in this
    /// simulation — only unavailable).
    pub fn restore_node(&self, node: usize) {
        assert!(node < self.inner.config.nodes, "node {node} out of range");
        self.inner.nodes[node].up.store(true, Ordering::Relaxed);
    }

    /// Whether a node is up.
    pub fn node_is_up(&self, node: usize) -> bool {
        self.inner.nodes[node].up.load(Ordering::Relaxed)
    }

    /// Reads `len` bytes at `offset`, charging block reads (and a seek when
    /// the read does not continue the previous one on this file).
    pub fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, DfsError> {
        let block_size = self.inner.config.block_size as u64;
        let file = self.meta(name)?;
        // Namespace lock already released: concurrent reads of different
        // files (the parallel postings fetch) proceed without contention.
        let file_len = file.data.len() as u64;
        if offset + len as u64 > file_len {
            return Err(DfsError::OutOfBounds { file: name.to_string(), offset, len, file_len });
        }
        let Some(node) = file.nodes.iter().copied().find(|&n| self.node_is_up(n)) else {
            return Err(DfsError::AllReplicasDown(name.to_string()));
        };
        let seek = {
            let mut last = file.last_read_end.lock();
            let seek = *last != Some(offset);
            *last = Some(offset + len as u64);
            seek
        };
        let out = file.data[offset as usize..offset as usize + len].to_vec();
        // Charge whole blocks touched by [offset, offset+len).
        let first_block = offset / block_size;
        let last_block =
            if len == 0 { first_block } else { (offset + len as u64 - 1) / block_size };
        let counters = &self.inner.nodes[node];
        counters.blocks_read.fetch_add(last_block - first_block + 1, Ordering::Relaxed);
        counters.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        if seek {
            counters.seeks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Reads an entire file.
    pub fn read_all(&self, name: &str) -> Result<Vec<u8>, DfsError> {
        let len = self.len(name)?;
        self.read_at(name, 0, len as usize)
    }

    /// Opens a sequential reader.
    pub fn open(&self, name: &str) -> Result<DfsFile, DfsError> {
        if !self.exists(name) {
            return Err(DfsError::NotFound(name.to_string()));
        }
        Ok(DfsFile { dfs: self.clone(), name: name.to_string(), pos: 0 })
    }

    /// Sorted list of file names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.files.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total stored bytes across all files (the Fig. 6 "index size").
    pub fn total_bytes(&self) -> u64 {
        self.inner.files.read().values().map(|f| f.data.len() as u64).sum()
    }

    /// Snapshot of a node's counters.
    pub fn node_counters(&self, node: usize) -> NodeCounters {
        self.inner.nodes[node].snapshot()
    }

    /// Sum of counters over all nodes.
    pub fn total_counters(&self) -> NodeCounters {
        self.inner.nodes.iter().map(|n| n.snapshot()).fold(NodeCounters::default(), |mut acc, n| {
            acc.blocks_read += n.blocks_read;
            acc.blocks_written += n.blocks_written;
            acc.bytes_read += n.bytes_read;
            acc.bytes_written += n.bytes_written;
            acc.seeks += n.seeks;
            acc
        })
    }
}

/// Sequential reader over a DFS file.
pub struct DfsFile {
    dfs: Dfs,
    name: String,
    pos: u64,
}

impl DfsFile {
    /// Reads the next `len` bytes, advancing the cursor.
    pub fn read(&mut self, len: usize) -> Result<Vec<u8>, DfsError> {
        let out = self.dfs.read_at(&self.name, self.pos, len)?;
        self.pos += len as u64;
        Ok(out)
    }

    /// Repositions the cursor (next read will be charged a seek unless it
    /// happens to continue the file's previous read).
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos;
    }

    /// Current cursor position.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig { nodes: 3, block_size: 16, replication: 1 })
    }

    #[test]
    fn create_read_roundtrip() {
        let d = dfs();
        d.create("a", b"hello world".to_vec()).unwrap();
        assert_eq!(d.read_all("a").unwrap(), b"hello world");
        assert_eq!(d.len("a").unwrap(), 11);
        assert!(d.exists("a"));
        assert!(!d.exists("b"));
    }

    #[test]
    fn files_are_write_once() {
        let d = dfs();
        d.create("a", vec![1]).unwrap();
        assert_eq!(d.create("a", vec![2]), Err(DfsError::AlreadyExists("a".into())));
    }

    #[test]
    fn missing_file_errors() {
        let d = dfs();
        assert_eq!(d.read_all("nope"), Err(DfsError::NotFound("nope".into())));
        assert!(d.open("nope").is_err());
        assert!(d.len("nope").is_err());
    }

    #[test]
    fn out_of_bounds_read_errors() {
        let d = dfs();
        d.create("a", vec![0; 10]).unwrap();
        assert!(matches!(d.read_at("a", 5, 10), Err(DfsError::OutOfBounds { .. })));
        // Exact end is fine.
        assert_eq!(d.read_at("a", 5, 5).unwrap().len(), 5);
    }

    #[test]
    fn explicit_placement_and_bad_node() {
        let d = dfs();
        d.create_on("part-0", vec![0; 40], 2).unwrap();
        assert_eq!(d.node_of("part-0").unwrap(), 2);
        assert_eq!(d.create_on("x", vec![], 5), Err(DfsError::BadNode(5)));
    }

    #[test]
    fn block_accounting_on_write() {
        let d = dfs(); // block_size 16
        d.create_on("a", vec![0; 33], 0).unwrap(); // 3 blocks
        d.create_on("b", vec![0; 16], 1).unwrap(); // 1 block
        d.create_on("c", vec![], 1).unwrap(); // empty file still costs 1
        assert_eq!(d.node_counters(0).blocks_written, 3);
        assert_eq!(d.node_counters(1).blocks_written, 2);
        assert_eq!(d.total_counters().blocks_written, 5);
        assert_eq!(d.total_bytes(), 49);
    }

    #[test]
    fn block_accounting_on_read() {
        let d = dfs();
        d.create_on("a", vec![7; 64], 0).unwrap();
        // Read of bytes 10..50 touches blocks 0..=3 (byte 49 is in block 3).
        d.read_at("a", 10, 40).unwrap();
        let c = d.node_counters(0);
        assert_eq!(c.blocks_read, 4);
        assert_eq!(c.bytes_read, 40);
        assert_eq!(c.seeks, 1);
    }

    #[test]
    fn sequential_reads_do_not_seek() {
        let d = dfs();
        d.create_on("a", vec![1; 64], 0).unwrap();
        let mut f = d.open("a").unwrap();
        f.read(16).unwrap();
        f.read(16).unwrap();
        f.read(16).unwrap();
        assert_eq!(d.node_counters(0).seeks, 1, "only the first read seeks");
        // A jump back costs a seek.
        f.seek(0);
        f.read(8).unwrap();
        assert_eq!(d.node_counters(0).seeks, 2);
    }

    #[test]
    fn list_is_sorted() {
        let d = dfs();
        d.create("z", vec![]).unwrap();
        d.create("a", vec![]).unwrap();
        d.create("m", vec![]).unwrap();
        assert_eq!(d.list(), vec!["a", "m", "z"]);
    }

    #[test]
    fn clones_share_state() {
        let d = dfs();
        let d2 = d.clone();
        d2.create("shared", vec![1, 2, 3]).unwrap();
        assert!(d.exists("shared"));
        assert_eq!(d.total_bytes(), 3);
    }

    #[test]
    fn hash_placement_is_deterministic_and_in_range() {
        let d = dfs();
        d.create("file-x", vec![0; 4]).unwrap();
        let n = d.node_of("file-x").unwrap();
        assert!(n < 3);
        let d2 = dfs();
        d2.create("file-x", vec![0; 4]).unwrap();
        assert_eq!(d2.node_of("file-x").unwrap(), n);
    }
}

#[cfg(test)]
mod replication_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn dfs_r2() -> Dfs {
        Dfs::new(DfsConfig { nodes: 3, block_size: 16, replication: 2 })
    }

    #[test]
    fn replicas_placed_on_following_nodes() {
        let d = dfs_r2();
        d.create_on("part-0", vec![0; 20], 1).unwrap();
        assert_eq!(d.replicas_of("part-0").unwrap(), vec![1, 2]);
        assert_eq!(d.node_of("part-0").unwrap(), 1);
        // Wraps around the cluster.
        d.create_on("part-1", vec![0; 20], 2).unwrap();
        assert_eq!(d.replicas_of("part-1").unwrap(), vec![2, 0]);
    }

    #[test]
    fn writes_charged_to_every_replica() {
        let d = dfs_r2();
        d.create_on("a", vec![0; 33], 0).unwrap(); // 3 blocks
        assert_eq!(d.node_counters(0).blocks_written, 3);
        assert_eq!(d.node_counters(1).blocks_written, 3);
        assert_eq!(d.node_counters(2).blocks_written, 0);
    }

    #[test]
    fn reads_fall_over_to_replica_on_failure() {
        let d = dfs_r2();
        d.create_on("a", vec![7; 32], 0).unwrap();
        // Healthy: primary serves the read.
        d.read_at("a", 0, 16).unwrap();
        assert_eq!(d.node_counters(0).blocks_read, 1);
        assert_eq!(d.node_counters(1).blocks_read, 0);
        // Fail the primary: replica serves.
        d.fail_node(0);
        assert!(!d.node_is_up(0));
        let bytes = d.read_at("a", 0, 16).unwrap();
        assert_eq!(bytes, vec![7; 16]);
        assert_eq!(d.node_counters(0).blocks_read, 1, "failed node untouched");
        assert_eq!(d.node_counters(1).blocks_read, 1);
    }

    #[test]
    fn all_replicas_down_errors_until_restore() {
        let d = dfs_r2();
        d.create_on("a", vec![1; 8], 0).unwrap();
        d.fail_node(0);
        d.fail_node(1);
        assert_eq!(d.read_at("a", 0, 8), Err(DfsError::AllReplicasDown("a".into())));
        // Node 2 holds no copy, so it cannot help.
        assert!(d.node_is_up(2));
        d.restore_node(1);
        assert_eq!(d.read_at("a", 0, 8).unwrap(), vec![1; 8]);
    }

    #[test]
    fn replication_capped_at_cluster_size() {
        let d = Dfs::new(DfsConfig { nodes: 2, block_size: 16, replication: 5 });
        d.create_on("a", vec![0; 4], 0).unwrap();
        assert_eq!(d.replicas_of("a").unwrap(), vec![0, 1]);
    }

    #[test]
    fn unreplicated_file_dies_with_its_node() {
        let d = Dfs::new(DfsConfig { nodes: 3, block_size: 16, replication: 1 });
        d.create_on("a", vec![0; 4], 0).unwrap();
        d.fail_node(0);
        assert_eq!(d.read_at("a", 0, 4), Err(DfsError::AllReplicasDown("a".into())));
    }
}
