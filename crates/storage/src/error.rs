//! Typed storage errors.
//!
//! Every fallible operation in this crate reports a [`StorageError`]
//! instead of panicking, so the engine above can distinguish transient
//! faults (worth retrying), detected corruption (fail the query, keep the
//! process), and programmer errors (still panics/asserts). The taxonomy is
//! documented in DESIGN.md §10.

use crate::page::PageId;
use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// An error raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// Which operation failed (`"read"`, `"write"`, `"allocate"`, ...).
        op: &'static str,
        /// The page involved, when the operation targets one.
        page: Option<PageId>,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// A page failed its CRC32 check: the stored bytes do not match the
    /// checksum they were sealed with.
    PageCorrupt {
        /// The corrupt page.
        page_id: PageId,
        /// Checksum recorded in the page header.
        expected: u32,
        /// Checksum recomputed over the payload actually read.
        actual: u32,
    },
    /// A page header is malformed (bad magic, unsupported format version,
    /// or non-zero reserved bytes).
    BadPageHeader {
        /// The offending page.
        page_id: PageId,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A read or write addressed a page that was never allocated.
    UnallocatedPage {
        /// The requested page.
        page_id: PageId,
        /// How many pages the store actually holds.
        page_count: u64,
    },
    /// A B⁺-tree node page decoded to something structurally impossible
    /// (unknown tag, impossible entry count).
    CorruptNode {
        /// The page holding the node.
        page_id: PageId,
        /// What was wrong with it.
        detail: String,
    },
}

impl StorageError {
    /// True for faults that a bounded retry may clear (interrupted /
    /// timed-out / would-block I/O). Corruption and structural errors are
    /// never transient: re-reading the same bytes cannot fix them.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => matches!(
                source.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, page: Some(p), source } => {
                write!(f, "i/o error during {op} of page {p}: {source}")
            }
            StorageError::Io { op, page: None, source } => {
                write!(f, "i/o error during {op}: {source}")
            }
            StorageError::PageCorrupt { page_id, expected, actual } => write!(
                f,
                "page {page_id} is corrupt: checksum {actual:#010x} does not match recorded {expected:#010x}"
            ),
            StorageError::BadPageHeader { page_id, detail } => {
                write!(f, "page {page_id} has a bad header: {detail}")
            }
            StorageError::UnallocatedPage { page_id, page_count } => {
                write!(f, "access to unallocated page {page_id} (store holds {page_count} pages)")
            }
            StorageError::CorruptNode { page_id, detail } => {
                write!(f, "corrupt B+tree node on page {page_id}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn transient_classification() {
        let transient = StorageError::Io {
            op: "read",
            page: Some(PageId(3)),
            source: std::io::Error::new(std::io::ErrorKind::Interrupted, "injected"),
        };
        assert!(transient.is_transient());
        let hard = StorageError::Io {
            op: "write",
            page: None,
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope"),
        };
        assert!(!hard.is_transient());
        let corrupt = StorageError::PageCorrupt { page_id: PageId(1), expected: 1, actual: 2 };
        assert!(!corrupt.is_transient());
    }

    #[test]
    fn display_mentions_page_and_op() {
        let e = StorageError::Io {
            op: "read",
            page: Some(PageId(7)),
            source: std::io::Error::new(std::io::ErrorKind::TimedOut, "slow disk"),
        };
        let msg = e.to_string();
        assert!(msg.contains("read"), "{msg}");
        assert!(msg.contains("p7"), "{msg}");

        let c = StorageError::PageCorrupt { page_id: PageId(9), expected: 0xAB, actual: 0xCD };
        let msg = c.to_string();
        assert!(msg.contains("p9"), "{msg}");
        assert!(msg.contains("0x000000ab"), "{msg}");
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error;
        let e = StorageError::Io {
            op: "read",
            page: None,
            source: std::io::Error::new(std::io::ErrorKind::Interrupted, "x"),
        };
        assert!(e.source().is_some());
        let c = StorageError::CorruptNode { page_id: PageId(0), detail: "tag 9".into() };
        assert!(c.source().is_none());
    }
}
