//! Buffer pool: a lock-striped LRU page cache between B⁺-trees and
//! physical storage.
//!
//! The pool implements [`PageStore`] itself, so a tree stacks on top of it
//! transparently. Hits are served from memory (counted as `cache_hits`, no
//! physical read); misses fall through to the inner store (which counts the
//! physical read) and are counted as `cache_misses`. Writes are
//! write-through: the inner store always sees them, keeping it crash-simple.
//!
//! All operations take `&self`. The cache is striped into up to 16 shards,
//! each its own `Mutex<HashMap>`, with pages routed by `page_id % shards`:
//! concurrent readers on different shards never contend, which is what lets
//! the query engine fan work out across threads over one shared pool.
//! Eviction is LRU *per shard* (a stamp from one global atomic clock) — an
//! approximation of global LRU that keeps the hot-path lock local.
//!
//! Section VI-B1 runs the paper's experiments with "database caches … set
//! off in order to get fair evaluation results"; a pool with `capacity = 0`
//! reproduces that configuration while leaving the code path identical.

use crate::error::StorageResult;
use crate::iostats::IoStats;
use crate::page::{Page, PageId};
use crate::pager::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Most shards the cache is split into; the effective per-shard capacity
/// is `capacity / shards` (so tiny pools still evict correctly).
const MAX_SHARDS: usize = 16;

/// LRU write-through buffer pool over an inner [`PageStore`].
pub struct BufferPool<S: PageStore> {
    inner: S,
    /// Per-shard page budget (`capacity / shards.len()`).
    shard_capacity: usize,
    shards: Vec<Mutex<HashMap<PageId, (Page, u64)>>>,
    tick: AtomicU64,
    stats: IoStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `inner` with an LRU cache of `capacity` pages. Capacity 0
    /// disables caching (every access is physical). Capacities above the
    /// shard count are rounded down to a multiple of the shard count.
    pub fn new(inner: S, capacity: usize) -> Self {
        let stats = inner.stats().clone();
        let num_shards = capacity.clamp(1, MAX_SHARDS);
        let shard_capacity = capacity / num_shards;
        let shards =
            (0..num_shards).map(|_| Mutex::new(HashMap::with_capacity(shard_capacity))).collect();
        Self { inner, shard_capacity, shards, tick: AtomicU64::new(0), stats }
    }

    /// Current number of cached pages (across all shards).
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn shard(&self, id: PageId) -> &Mutex<HashMap<PageId, (Page, u64)>> {
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts into an already-locked shard, evicting that shard's
    /// least-recently-stamped page if it is at budget.
    fn cache_put_locked(&self, shard: &mut HashMap<PageId, (Page, u64)>, id: PageId, page: Page) {
        if self.shard_capacity == 0 {
            return;
        }
        let stamp = self.touch();
        if let std::collections::hash_map::Entry::Occupied(mut e) = shard.entry(id) {
            e.insert((page, stamp));
            return;
        }
        if shard.len() >= self.shard_capacity {
            if let Some((&victim, _)) = shard.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                shard.remove(&victim);
            }
        }
        shard.insert(id, (page, stamp));
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        let mut shard = self.shard(id).lock();
        if let Some((page, s)) = shard.get_mut(&id) {
            *s = self.touch();
            self.stats.record_hit();
            return Ok(page.clone());
        }
        self.stats.record_miss();
        // The shard lock is held across the physical read: a concurrent
        // reader of the same page waits instead of duplicating the I/O,
        // and readers of other shards are unaffected. A failed read is not
        // cached — a later retry goes back to the inner store.
        let page = self.inner.read(id)?;
        self.cache_put_locked(&mut shard, id, page.clone());
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        // Write-through: if the inner store rejects the write, the cache is
        // left untouched so it never serves pages the store does not hold.
        self.inner.write(id, page)?;
        let mut shard = self.shard(id).lock();
        self.cache_put_locked(&mut shard, id, page.clone());
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::page::zeroed_page;
    use crate::pager::MemPager;

    fn marked_page(b: u8) -> Page {
        let mut p = zeroed_page();
        p[0] = b;
        p
    }

    #[test]
    fn hits_avoid_physical_reads() {
        let pool = BufferPool::new(MemPager::new(), 4);
        let a = pool.allocate().unwrap();
        pool.write(a, &marked_page(7)).unwrap();
        let r1 = pool.read(a).unwrap();
        let r2 = pool.read(a).unwrap();
        assert_eq!(r1[0], 7);
        assert_eq!(r2[0], 7);
        // Write populated the cache, so both reads hit.
        assert_eq!(pool.stats().cache_hits(), 2);
        assert_eq!(pool.stats().page_reads(), 0);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let pool = BufferPool::new(MemPager::new(), 0);
        let a = pool.allocate().unwrap();
        pool.write(a, &marked_page(1)).unwrap();
        pool.read(a).unwrap();
        pool.read(a).unwrap();
        assert_eq!(pool.stats().cache_hits(), 0);
        assert_eq!(pool.stats().cache_misses(), 2);
        assert_eq!(pool.stats().page_reads(), 2);
        assert_eq!(pool.cached_pages(), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(MemPager::new(), 2);
        let ids: Vec<PageId> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.write(*id, &marked_page(i as u8)).unwrap();
        }
        // Cache holds the 2 most recently written: ids[1], ids[2].
        assert_eq!(pool.cached_pages(), 2);
        pool.stats().reset();
        pool.read(ids[1]).unwrap();
        pool.read(ids[2]).unwrap();
        assert_eq!(pool.stats().cache_hits(), 2);
        // ids[0] was evicted -> miss.
        pool.read(ids[0]).unwrap();
        assert_eq!(pool.stats().cache_misses(), 1);
        assert_eq!(pool.stats().page_reads(), 1);
    }

    #[test]
    fn writes_are_write_through() {
        let pool = BufferPool::new(MemPager::new(), 2);
        let a = pool.allocate().unwrap();
        pool.write(a, &marked_page(9)).unwrap();
        // Inner store sees the write immediately.
        assert_eq!(pool.inner().stats().page_writes(), 1);
    }

    #[test]
    fn failed_reads_are_not_cached() {
        let pool = BufferPool::new(MemPager::new(), 4);
        assert!(pool.read(PageId(9)).is_err());
        assert_eq!(pool.cached_pages(), 0);
    }

    #[test]
    fn tree_over_pool_reduces_reads() {
        use crate::bptree::BPlusTree;
        let cached = {
            let pool = BufferPool::new(MemPager::new(), 256);
            let mut t: BPlusTree<_, 8> = BPlusTree::new(pool).unwrap();
            for k in 0..2000u64 {
                t.insert((k, 0), k.to_le_bytes()).unwrap();
            }
            t.store().stats().reset();
            for k in 0..2000u64 {
                t.get((k, 0)).unwrap();
            }
            t.store().stats().page_reads()
        };
        let uncached = {
            let pool = BufferPool::new(MemPager::new(), 0);
            let mut t: BPlusTree<_, 8> = BPlusTree::new(pool).unwrap();
            for k in 0..2000u64 {
                t.insert((k, 0), k.to_le_bytes()).unwrap();
            }
            t.store().stats().reset();
            for k in 0..2000u64 {
                t.get((k, 0)).unwrap();
            }
            t.store().stats().page_reads()
        };
        assert!(cached * 2 < uncached, "cached={cached} uncached={uncached}");
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let pool = BufferPool::new(MemPager::new(), 8);
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.write(*id, &marked_page(i as u8)).unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ids = &ids;
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..100 {
                        let i = (t * 7 + round * 13) % ids.len();
                        assert_eq!(pool.read(ids[i]).unwrap()[0], i as u8);
                    }
                });
            }
        });
        // Cache never exceeds its budget.
        assert!(pool.cached_pages() <= 8, "cached={}", pool.cached_pages());
    }
}
