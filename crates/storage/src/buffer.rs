//! Buffer pool: an LRU page cache between B⁺-trees and physical storage.
//!
//! The pool implements [`PageStore`] itself, so a tree stacks on top of it
//! transparently. Hits are served from memory (counted as `cache_hits`, no
//! physical read); misses fall through to the inner store (which counts the
//! physical read) and are counted as `cache_misses`. Writes are
//! write-through: the inner store always sees them, keeping it crash-simple.
//!
//! Section VI-B1 runs the paper's experiments with "database caches … set
//! off in order to get fair evaluation results"; a pool with `capacity = 0`
//! reproduces that configuration while leaving the code path identical.

use crate::iostats::IoStats;
use crate::page::{Page, PageId};
use crate::pager::PageStore;
use std::collections::HashMap;

/// LRU write-through buffer pool over an inner [`PageStore`].
pub struct BufferPool<S: PageStore> {
    inner: S,
    capacity: usize,
    cache: HashMap<PageId, (Page, u64)>,
    tick: u64,
    stats: IoStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps `inner` with an LRU cache of `capacity` pages. Capacity 0
    /// disables caching (every access is physical).
    pub fn new(inner: S, capacity: usize) -> Self {
        let stats = inner.stats().clone();
        Self { inner, capacity, cache: HashMap::with_capacity(capacity), tick: 0, stats }
    }

    /// Current number of cached pages.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_if_full(&mut self) {
        if self.cache.len() < self.capacity {
            return;
        }
        if let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, (_, stamp))| *stamp) {
            self.cache.remove(&victim);
        }
    }

    fn cache_put(&mut self, id: PageId, page: Page) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.touch();
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.cache.entry(id) {
            e.insert((page, stamp));
            return;
        }
        self.evict_if_full();
        self.cache.insert(id, (page, stamp));
    }
}

impl<S: PageStore> PageStore for BufferPool<S> {
    fn allocate(&mut self) -> PageId {
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId) -> Page {
        let stamp = self.touch();
        if let Some((page, s)) = self.cache.get_mut(&id) {
            *s = stamp;
            self.stats.record_hit();
            return page.clone();
        }
        self.stats.record_miss();
        let page = self.inner.read(id);
        self.cache_put(id, page.clone());
        page
    }

    fn write(&mut self, id: PageId, page: &Page) {
        self.inner.write(id, page);
        if self.cache.contains_key(&id) || self.capacity > 0 {
            self.cache_put(id, page.clone());
        }
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;
    use crate::pager::MemPager;

    fn marked_page(b: u8) -> Page {
        let mut p = zeroed_page();
        p[0] = b;
        p
    }

    #[test]
    fn hits_avoid_physical_reads() {
        let mut pool = BufferPool::new(MemPager::new(), 4);
        let a = pool.allocate();
        pool.write(a, &marked_page(7));
        let r1 = pool.read(a);
        let r2 = pool.read(a);
        assert_eq!(r1[0], 7);
        assert_eq!(r2[0], 7);
        // Write populated the cache, so both reads hit.
        assert_eq!(pool.stats().cache_hits(), 2);
        assert_eq!(pool.stats().page_reads(), 0);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut pool = BufferPool::new(MemPager::new(), 0);
        let a = pool.allocate();
        pool.write(a, &marked_page(1));
        pool.read(a);
        pool.read(a);
        assert_eq!(pool.stats().cache_hits(), 0);
        assert_eq!(pool.stats().cache_misses(), 2);
        assert_eq!(pool.stats().page_reads(), 2);
        assert_eq!(pool.cached_pages(), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(MemPager::new(), 2);
        let ids: Vec<PageId> = (0..3).map(|_| pool.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.write(*id, &marked_page(i as u8));
        }
        // Cache holds the 2 most recently written: ids[1], ids[2].
        assert_eq!(pool.cached_pages(), 2);
        pool.stats().reset();
        pool.read(ids[1]);
        pool.read(ids[2]);
        assert_eq!(pool.stats().cache_hits(), 2);
        // ids[0] was evicted -> miss.
        pool.read(ids[0]);
        assert_eq!(pool.stats().cache_misses(), 1);
        assert_eq!(pool.stats().page_reads(), 1);
    }

    #[test]
    fn writes_are_write_through() {
        let mut pool = BufferPool::new(MemPager::new(), 2);
        let a = pool.allocate();
        pool.write(a, &marked_page(9));
        // Inner store sees the write immediately.
        assert_eq!(pool.inner().stats().page_writes(), 1);
    }

    #[test]
    fn tree_over_pool_reduces_reads() {
        use crate::bptree::BPlusTree;
        let cached = {
            let pool = BufferPool::new(MemPager::new(), 256);
            let mut t: BPlusTree<_, 8> = BPlusTree::new(pool);
            for k in 0..2000u64 {
                t.insert((k, 0), k.to_le_bytes());
            }
            t.store().stats().reset();
            for k in 0..2000u64 {
                t.get((k, 0));
            }
            t.store().stats().page_reads()
        };
        let uncached = {
            let pool = BufferPool::new(MemPager::new(), 0);
            let mut t: BPlusTree<_, 8> = BPlusTree::new(pool);
            for k in 0..2000u64 {
                t.insert((k, 0), k.to_le_bytes());
            }
            t.store().stats().reset();
            for k in 0..2000u64 {
                t.get((k, 0));
            }
            t.store().stats().page_reads()
        };
        assert!(cached * 2 < uncached, "cached={cached} uncached={uncached}");
    }
}
