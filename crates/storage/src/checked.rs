//! Checksummed page store: seals every written page with the verified
//! header ([`crate::page::seal_page`]) and validates magic, format
//! version, reserved bytes, and CRC32 on every read.
//!
//! The layer sits *above* whatever physical (or fault-injecting) store
//! holds the bytes, so any corruption introduced below it — a torn write, a
//! flipped bit on the wire or at rest — surfaces as a typed
//! [`StorageError::PageCorrupt`] / [`StorageError::BadPageHeader`] instead
//! of silently feeding garbage to the B⁺-tree. Callers keep the page
//! payload area (bytes [`PAGE_HEADER_SIZE`]`..`) to themselves; the header
//! bytes are owned by this layer.

use crate::error::StorageResult;
use crate::iostats::IoStats;
use crate::page::{seal_page, verify_page, zeroed_page, Page, PageId};
use crate::pager::PageStore;

/// Page store adapter that checksums writes and verifies reads.
#[derive(Debug)]
pub struct CheckedPager<S: PageStore> {
    inner: S,
}

impl<S: PageStore> CheckedPager<S> {
    /// Wraps `inner`; all pages written through `self` are sealed, all
    /// pages read through `self` are verified.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageStore> PageStore for CheckedPager<S> {
    fn allocate(&self) -> StorageResult<PageId> {
        let id = self.inner.allocate()?;
        // Physical stores hand out raw zero pages; seal immediately so a
        // read-before-first-write still verifies.
        let mut page = zeroed_page();
        seal_page(&mut page);
        self.inner.write(id, &page)?;
        Ok(id)
    }

    fn read(&self, id: PageId) -> StorageResult<Page> {
        let page = self.inner.read(id)?;
        verify_page(&page, id)?;
        Ok(page)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut sealed = page.clone();
        seal_page(&mut sealed);
        self.inner.write(id, &sealed)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::error::StorageError;
    use crate::page::PAGE_HEADER_SIZE;
    use crate::pager::MemPager;

    #[test]
    fn roundtrip_verifies() {
        let store = CheckedPager::new(MemPager::new());
        let id = store.allocate().unwrap();
        // Fresh page readable right away (allocate seals it).
        assert!(store.read(id).unwrap()[PAGE_HEADER_SIZE..].iter().all(|&b| b == 0));
        let mut page = zeroed_page();
        page[PAGE_HEADER_SIZE] = 0x42;
        store.write(id, &page).unwrap();
        assert_eq!(store.read(id).unwrap()[PAGE_HEADER_SIZE], 0x42);
    }

    #[test]
    fn corruption_below_is_detected() {
        let store = CheckedPager::new(MemPager::new());
        let id = store.allocate().unwrap();
        let mut page = zeroed_page();
        page[100] = 7;
        store.write(id, &page).unwrap();
        // Flip a payload bit behind the checked layer's back.
        let mut raw = store.inner().read(id).unwrap();
        raw[2048] ^= 0x10;
        store.inner().write(id, &raw).unwrap();
        assert!(
            matches!(store.read(id), Err(StorageError::PageCorrupt { page_id, .. }) if page_id == id)
        );
    }

    #[test]
    fn header_tampering_is_detected() {
        let store = CheckedPager::new(MemPager::new());
        let id = store.allocate().unwrap();
        let mut raw = store.inner().read(id).unwrap();
        raw[4] = 0xFF; // version byte
        store.inner().write(id, &raw).unwrap();
        assert!(matches!(store.read(id), Err(StorageError::BadPageHeader { .. })));
    }

    #[test]
    fn write_does_not_mutate_caller_page() {
        let store = CheckedPager::new(MemPager::new());
        let id = store.allocate().unwrap();
        let page = zeroed_page();
        store.write(id, &page).unwrap();
        assert!(page.iter().all(|&b| b == 0), "caller's buffer must stay untouched");
    }

    #[test]
    fn works_under_a_bptree() {
        use crate::bptree::BPlusTree;
        let mut t: BPlusTree<_, 8> = BPlusTree::new(CheckedPager::new(MemPager::new())).unwrap();
        for k in 0..2000u64 {
            t.insert((k, 0), k.to_le_bytes()).unwrap();
        }
        for k in (0..2000u64).step_by(17) {
            assert_eq!(t.get((k, 0)).unwrap(), Some(k.to_le_bytes()));
        }
    }
}
