//! Shared I/O counters.
//!
//! The paper's efficiency arguments are stated in I/Os ("every construction
//! will cost several I/Os", Section V-B; "it does not necessarily lead to
//! more I/Os", Section VI-B2). Counters are atomic so a pool of MapReduce
//! workers can share one stats object.
//!
//! Multi-counter reads go through [`IoStats::snapshot`], which loads each
//! counter exactly once into an [`IoSnapshot`]; derived totals are then
//! computed from that coherent copy instead of re-loading live atomics
//! (which can tear against concurrent recorders). [`IoStats::take`] drains
//! the counters with atomic swaps, so a concurrent increment lands either
//! in the returned snapshot or in the live counters — never lost.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-OS-thread tally of physical page reads, incremented by every
    /// [`IoStats::record_read`] on this thread (process-wide across
    /// `IoStats` instances). The engine uses deltas of this tally to
    /// attribute metadata page reads to the query that incurred them,
    /// exactly, even with many queries in flight on other threads.
    static THREAD_PAGE_READS: Cell<u64> = const { Cell::new(0) };
}

/// One coherent reading of every counter in an [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Physical page reads.
    pub page_reads: u64,
    /// Physical page writes.
    pub page_writes: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Buffer-pool misses.
    pub cache_misses: u64,
}

impl IoSnapshot {
    /// Total physical I/Os (reads + writes) — computed from one coherent
    /// copy, so it cannot tear against itself.
    pub fn total_io(&self) -> u64 {
        self.page_reads.saturating_add(self.page_writes)
    }

    /// Per-counter difference `self - earlier` (saturating; counters are
    /// monotone between resets, so a later snapshot dominates).
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }
}

/// Cheaply cloneable handle to a set of atomic I/O counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a physical page read.
    pub fn record_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
        THREAD_PAGE_READS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    /// Records a physical page write.
    pub fn record_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    pub fn record_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool miss.
    pub fn record_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Physical page reads so far.
    pub fn page_reads(&self) -> u64 {
        self.inner.page_reads.load(Ordering::Relaxed)
    }

    /// Physical page writes so far.
    pub fn page_writes(&self) -> u64 {
        self.inner.page_writes.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.inner.cache_misses.load(Ordering::Relaxed)
    }

    /// Coherent copy of all four counters: each atomic is loaded exactly
    /// once, and every derived figure (e.g. [`IoSnapshot::total_io`]) is
    /// computed from the copy. Use this wherever stats are exported.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.inner.page_reads.load(Ordering::Relaxed),
            page_writes: self.inner.page_writes.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Total physical I/Os (reads + writes), from one coherent snapshot.
    pub fn total_io(&self) -> u64 {
        self.snapshot().total_io()
    }

    /// Drains every counter to zero with atomic swaps and returns what was
    /// drained. Unlike a load-then-store reset, a concurrent
    /// `record_*` increment ends up either in the returned snapshot or in
    /// the live counters — it is never lost.
    pub fn take(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.inner.page_reads.swap(0, Ordering::Relaxed),
            page_writes: self.inner.page_writes.swap(0, Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.swap(0, Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.swap(0, Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (swap-based; see [`take`](Self::take)).
    pub fn reset(&self) {
        let _ = self.take();
    }

    /// This thread's cumulative physical-page-read tally (process-wide
    /// across `IoStats` instances; see [`THREAD_PAGE_READS`]). Take a
    /// delta around a region to count the reads that region performed on
    /// the current thread.
    pub fn thread_page_reads() -> u64 {
        THREAD_PAGE_READS.with(Cell::get)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.page_reads(), 2);
        assert_eq!(s.page_writes(), 1);
        assert_eq!(s.cache_hits(), 1);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.total_io(), 3);
        let snap = s.snapshot();
        assert_eq!(
            snap,
            IoSnapshot { page_reads: 2, page_writes: 1, cache_hits: 1, cache_misses: 1 }
        );
        assert_eq!(snap.total_io(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let t = s.clone();
        t.record_read();
        assert_eq!(s.page_reads(), 1);
    }

    #[test]
    fn reset_zeroes_and_take_returns_drained_values() {
        let s = IoStats::new();
        s.record_read();
        s.record_write();
        let drained = s.take();
        assert_eq!(drained.page_reads, 1);
        assert_eq!(drained.page_writes, 1);
        assert_eq!(s.snapshot(), IoSnapshot::default());
        s.record_hit();
        s.reset();
        assert_eq!(s.total_io(), 0);
        assert_eq!(s.cache_hits(), 0);
    }

    #[test]
    fn snapshot_deltas_subtract_per_counter() {
        let s = IoStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_miss();
        let delta = s.snapshot().delta_since(&before);
        assert_eq!(
            delta,
            IoSnapshot { page_reads: 1, page_writes: 0, cache_hits: 0, cache_misses: 1 }
        );
    }

    #[test]
    fn thread_page_reads_tally_is_per_thread() {
        let s = IoStats::new();
        let before = IoStats::thread_page_reads();
        s.record_read();
        s.record_read();
        assert_eq!(IoStats::thread_page_reads() - before, 2);
        // Reads on another thread do not move this thread's tally, even
        // through the same shared IoStats.
        let t = s.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let inner_before = IoStats::thread_page_reads();
                t.record_read();
                assert_eq!(IoStats::thread_page_reads() - inner_before, 1);
            });
        });
        assert_eq!(IoStats::thread_page_reads() - before, 2);
        assert_eq!(s.page_reads(), 3);
    }

    /// Concurrent stress for the tear/reset bug: recorders hammer all four
    /// counters while a drainer repeatedly `take`s. Swap-based draining
    /// must conserve every increment: the sum of everything drained plus
    /// the final snapshot equals exactly what was recorded.
    #[test]
    fn concurrent_take_never_loses_increments() {
        let s = IoStats::new();
        let per_thread = 20_000u64;
        let n_recorders = 4;
        let drained: IoSnapshot = std::thread::scope(|scope| {
            for _ in 0..n_recorders {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        s.record_read();
                        s.record_write();
                        s.record_hit();
                        s.record_miss();
                    }
                });
            }
            let s = s.clone();
            scope
                .spawn(move || {
                    let mut acc = IoSnapshot::default();
                    for _ in 0..200 {
                        let t = s.take();
                        acc.page_reads += t.page_reads;
                        acc.page_writes += t.page_writes;
                        acc.cache_hits += t.cache_hits;
                        acc.cache_misses += t.cache_misses;
                        std::thread::yield_now();
                    }
                    acc
                })
                .join()
                .unwrap()
        });
        let rest = s.snapshot();
        let total = n_recorders as u64 * per_thread;
        assert_eq!(drained.page_reads + rest.page_reads, total);
        assert_eq!(drained.page_writes + rest.page_writes, total);
        assert_eq!(drained.cache_hits + rest.cache_hits, total);
        assert_eq!(drained.cache_misses + rest.cache_misses, total);
    }
}
