//! Shared I/O counters.
//!
//! The paper's efficiency arguments are stated in I/Os ("every construction
//! will cost several I/Os", Section V-B; "it does not necessarily lead to
//! more I/Os", Section VI-B2). Counters are atomic so a pool of MapReduce
//! workers can share one stats object.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cheaply cloneable handle to a set of atomic I/O counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a physical page read.
    pub fn record_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page write.
    pub fn record_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool hit.
    pub fn record_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-pool miss.
    pub fn record_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Physical page reads so far.
    pub fn page_reads(&self) -> u64 {
        self.inner.page_reads.load(Ordering::Relaxed)
    }

    /// Physical page writes so far.
    pub fn page_writes(&self) -> u64 {
        self.inner.page_writes.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.inner.cache_misses.load(Ordering::Relaxed)
    }

    /// Total physical I/Os (reads + writes).
    pub fn total_io(&self) -> u64 {
        self.page_reads() + self.page_writes()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.page_reads.store(0, Ordering::Relaxed);
        self.inner.page_writes.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.page_reads(), 2);
        assert_eq!(s.page_writes(), 1);
        assert_eq!(s.cache_hits(), 1);
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.total_io(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let t = s.clone();
        t.record_read();
        assert_eq!(s.page_reads(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_read();
        s.record_write();
        s.reset();
        assert_eq!(s.total_io(), 0);
        assert_eq!(s.cache_hits(), 0);
    }
}
