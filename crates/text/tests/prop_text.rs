//! Property-based tests for the text substrate.

use proptest::prelude::*;
use tklus_text::{PorterStemmer, TermBag, TermId, TextPipeline, Tokenizer, Vocab};

proptest! {
    #[test]
    fn tokenizer_output_is_lowercase_and_bounded(text in ".{0,200}") {
        let t = Tokenizer::new();
        for tok in t.tokenize(&text) {
            prop_assert!(!tok.is_empty());
            let n = tok.chars().count();
            prop_assert!((t.min_len..=t.max_len).contains(&n), "token {tok:?}");
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing is per-char Unicode lowercase; some characters
            // (e.g. 𝒜) have no lowercase form and pass through — assert
            // that everything that *can* lowercase already is.
            prop_assert!(!tok.chars().any(|c| c.is_ascii_uppercase()));
            prop_assert!(tok.chars().all(|c| c.to_lowercase().collect::<String>() == c.to_string()));
        }
    }

    #[test]
    fn stemmer_never_panics_and_never_grows_ascii_words(word in "[a-zA-Z]{1,30}") {
        let s = PorterStemmer::new().stem(&word);
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        prop_assert!(!s.is_empty());
    }

    #[test]
    fn stemmer_output_stays_ascii_lowercase(word in "[a-z]{3,30}") {
        let s = PorterStemmer::new().stem(&word);
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn pipeline_terms_match_normalized_keywords(word in "[a-z]{4,15}") {
        // Any content word appearing in a tweet must be findable by using
        // the same word as a query keyword.
        prop_assume!(!tklus_text::is_stopword(&word));
        let p = TextPipeline::new();
        let tweet_terms = p.terms(&format!("visiting the {word} downtown"));
        if let Some(q) = p.normalize_keyword(&word) {
            prop_assert!(tweet_terms.contains(&q), "terms={tweet_terms:?} q={q}");
        }
    }

    #[test]
    fn termbag_total_equals_input_len(ids in proptest::collection::vec(0u32..50, 0..100)) {
        let bag = TermBag::from_occurrences(ids.iter().map(|&i| TermId(i)));
        prop_assert_eq!(bag.total(), ids.len() as u64);
        // Per-term frequency matches a direct count.
        for &i in &ids {
            let expect = ids.iter().filter(|&&j| j == i).count() as u32;
            prop_assert_eq!(bag.freq(TermId(i)), expect);
        }
    }

    #[test]
    fn vocab_intern_roundtrip(words in proptest::collection::vec("[a-z]{1,10}", 1..50)) {
        let mut v = Vocab::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern_occurrence(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.term(*id), Some(w.as_str()));
            prop_assert_eq!(v.get(w), Some(*id));
        }
        // Total frequency mass equals number of occurrences interned.
        let mass: u64 = v.iter().map(|(_, _, f)| f).sum();
        prop_assert_eq!(mass, words.len() as u64);
    }
}
