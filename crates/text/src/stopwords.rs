//! Embedded English + microblog stop-word list.
//!
//! Definition 1 assumes "a vocabulary W that excludes popular stop words
//! (e.g., this and that)". The list below combines the classic English
//! function words with microblog chat noise ("rt", "im", "lol", "amp")
//! that would otherwise dominate postings lists without carrying any
//! local-expertise signal.

/// Sorted list of stop words; looked up by binary search.
static STOPWORDS: &[&str] = &[
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "amp",
    "an",
    "and",
    "any",
    "are",
    "arent",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "cant",
    "could",
    "couldnt",
    "did",
    "didnt",
    "do",
    "does",
    "doesnt",
    "doing",
    "dont",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "get",
    "got",
    "had",
    "hadnt",
    "has",
    "hasnt",
    "have",
    "havent",
    "having",
    "he",
    "hed",
    "hell",
    "her",
    "here",
    "heres",
    "hers",
    "herself",
    "hes",
    "him",
    "himself",
    "his",
    "how",
    "hows",
    "id",
    "if",
    "ill",
    "im",
    "in",
    "into",
    "is",
    "isnt",
    "it",
    "its",
    "itself",
    "ive",
    "just",
    "lets",
    "like",
    "lol",
    "me",
    "more",
    "most",
    "mustnt",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "rt",
    "same",
    "shant",
    "she",
    "shed",
    "shell",
    "shes",
    "should",
    "shouldnt",
    "so",
    "some",
    "such",
    "than",
    "that",
    "thats",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "theres",
    "these",
    "they",
    "theyd",
    "theyll",
    "theyre",
    "theyve",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "via",
    "was",
    "wasnt",
    "we",
    "wed",
    "well",
    "were",
    "werent",
    "weve",
    "what",
    "whats",
    "when",
    "whens",
    "where",
    "wheres",
    "which",
    "while",
    "who",
    "whom",
    "whos",
    "why",
    "whys",
    "will",
    "with",
    "wont",
    "would",
    "wouldnt",
    "you",
    "youd",
    "youll",
    "your",
    "youre",
    "yours",
    "yourself",
    "yourselves",
    "youve",
];

/// Returns true if `word` (already lowercased) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// The number of stop words in the embedded list.
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

/// Iterates the stop-word list (for tests and documentation).
pub fn all_stopwords() -> impl Iterator<Item = &'static str> {
    STOPWORDS.iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        // Binary search correctness depends on this.
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_examples_are_stopwords() {
        // "this and that" per Definition 1.
        assert!(is_stopword("this"));
        assert!(is_stopword("that"));
        assert!(is_stopword("and"));
    }

    #[test]
    fn microblog_noise_is_stopword() {
        for w in ["rt", "im", "lol", "amp", "via"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["hotel", "restaurant", "toronto", "babysitter", "coffee", "pizza"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_only() {
        // Callers must lowercase first (the tokenizer does).
        assert!(!is_stopword("The"));
    }

    #[test]
    fn count_matches_list() {
        assert_eq!(stopword_count(), all_stopwords().count());
        assert!(stopword_count() > 150);
    }
}
