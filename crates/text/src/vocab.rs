//! Term dictionary: interning strings to dense term ids.
//!
//! The hybrid index keys are `⟨geohash, term⟩` pairs (Section IV-B). Storing
//! terms as dense `u32` ids keeps keys fixed-size and comparisons cheap; the
//! dictionary also tracks corpus frequency per term, which drives the
//! Table II "top-10 frequent keywords" selection and the hot-keyword
//! specific popularity bounds of Section V-B.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An interning term dictionary with per-term corpus frequencies.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
    freq: Vec<u64>,
}

impl Vocab {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, incrementing its corpus frequency by one occurrence.
    pub fn intern_occurrence(&mut self, term: &str) -> TermId {
        let id = self.intern(term);
        self.freq[id.0 as usize] += 1;
        id
    }

    /// Interns `term` without counting an occurrence.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("vocabulary exceeds u32 ids"));
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        self.freq.push(0);
        id
    }

    /// Adds `n` occurrences to an already-interned term's frequency.
    pub fn add_occurrences(&mut self, id: TermId, n: u64) {
        self.freq[id.0 as usize] += n;
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string form of a term id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.0 as usize).map(String::as_str)
    }

    /// Corpus occurrence count of a term.
    pub fn frequency(&self, id: TermId) -> u64 {
        self.freq.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The `n` most frequent terms, most frequent first (ties broken by term
    /// string for determinism). This is how the reproduction derives its
    /// Table II top-10 keyword list.
    pub fn top_terms(&self, n: usize) -> Vec<(TermId, u64)> {
        let mut all: Vec<(TermId, u64)> =
            (0..self.terms.len() as u32).map(TermId).map(|id| (id, self.frequency(id))).collect();
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.terms[a.0 .0 as usize].cmp(&self.terms[b.0 .0 as usize]))
        });
        all.truncate(n);
        all
    }

    /// Iterates `(id, term, frequency)` over the whole dictionary.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u64)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t.as_str(), self.freq[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut v = Vocab::new();
        let a = v.intern("hotel");
        let b = v.intern("restaurant");
        let a2 = v.intern("hotel");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn roundtrip_term_strings() {
        let mut v = Vocab::new();
        let id = v.intern("pizza");
        assert_eq!(v.term(id), Some("pizza"));
        assert_eq!(v.get("pizza"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn occurrences_counted() {
        let mut v = Vocab::new();
        let id = v.intern_occurrence("cafe");
        v.intern_occurrence("cafe");
        v.intern_occurrence("cafe");
        v.intern_occurrence("club");
        assert_eq!(v.frequency(id), 3);
        assert_eq!(v.frequency(v.get("club").unwrap()), 1);
        // Plain intern does not count.
        v.intern("cafe");
        assert_eq!(v.frequency(id), 3);
    }

    #[test]
    fn top_terms_ordering_and_tiebreak() {
        let mut v = Vocab::new();
        for _ in 0..5 {
            v.intern_occurrence("restaurant");
        }
        for _ in 0..3 {
            v.intern_occurrence("game");
        }
        for _ in 0..3 {
            v.intern_occurrence("cafe");
        }
        v.intern_occurrence("mall");
        let top = v.top_terms(3);
        assert_eq!(v.term(top[0].0), Some("restaurant"));
        // Tie between game and cafe broken alphabetically.
        assert_eq!(v.term(top[1].0), Some("cafe"));
        assert_eq!(v.term(top[2].0), Some("game"));
    }

    #[test]
    fn top_terms_truncates_to_available() {
        let mut v = Vocab::new();
        v.intern_occurrence("one");
        assert_eq!(v.top_terms(10).len(), 1);
        assert!(Vocab::new().top_terms(5).is_empty());
    }

    #[test]
    fn iter_covers_all() {
        let mut v = Vocab::new();
        v.intern_occurrence("x");
        v.intern_occurrence("y");
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, "x");
        assert_eq!(items[1].2, 1);
    }
}
