//! Term-frequency bags.
//!
//! Definition 6 counts "the occurrences of a query keyword in tweet p …
//! according to a bag model of keywords. Precisely, q.W is a set whereas
//! p.W is a bag/multiset." [`TermBag`] is that multiset: a sorted compact
//! map from term id to in-post frequency, which is also exactly the `⟨TID,
//! TF⟩` payload the inverted index stores per posting.

use crate::vocab::TermId;
use serde::{Deserialize, Serialize};

/// A multiset of terms: sorted `(term, frequency)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermBag {
    entries: Vec<(TermId, u32)>,
}

impl TermBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bag from an unsorted stream of term occurrences.
    pub fn from_occurrences<I: IntoIterator<Item = TermId>>(terms: I) -> Self {
        let mut v: Vec<TermId> = terms.into_iter().collect();
        v.sort_unstable();
        let mut entries: Vec<(TermId, u32)> = Vec::new();
        for t in v {
            match entries.last_mut() {
                Some((last, n)) if *last == t => *n += 1,
                _ => entries.push((t, 1)),
            }
        }
        Self { entries }
    }

    /// Frequency of `term` in the bag (0 when absent).
    pub fn freq(&self, term: TermId) -> u32 {
        self.entries.binary_search_by_key(&term, |e| e.0).map(|i| self.entries[i].1).unwrap_or(0)
    }

    /// Whether the bag contains `term`.
    pub fn contains(&self, term: TermId) -> bool {
        self.freq(term) > 0
    }

    /// Number of distinct terms.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total number of occurrences across all terms.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.1 as u64).sum()
    }

    /// True when the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of this bag's frequencies over the query keyword *set* — the
    /// `|q.W ∩ p.W|` of Definition 6 under its bag reading: "spicy
    /// restaurant" against one "spicy" and two "restaurant" yields 3.
    pub fn matched_occurrences(&self, query_terms: &[TermId]) -> u32 {
        query_terms.iter().map(|t| self.freq(*t)).sum()
    }

    /// Whether every query term appears at least once (AND semantics).
    pub fn contains_all(&self, query_terms: &[TermId]) -> bool {
        query_terms.iter().all(|t| self.contains(*t))
    }

    /// Whether any query term appears (OR semantics).
    pub fn contains_any(&self, query_terms: &[TermId]) -> bool {
        query_terms.iter().any(|t| self.contains(*t))
    }

    /// Iterates `(term, frequency)` in term order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.entries.iter().copied()
    }
}

impl FromIterator<TermId> for TermBag {
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        Self::from_occurrences(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn builds_sorted_counts() {
        let bag = TermBag::from_occurrences([t(5), t(1), t(5), t(3), t(5)]);
        assert_eq!(bag.freq(t(5)), 3);
        assert_eq!(bag.freq(t(1)), 1);
        assert_eq!(bag.freq(t(3)), 1);
        assert_eq!(bag.freq(t(2)), 0);
        assert_eq!(bag.distinct(), 3);
        assert_eq!(bag.total(), 5);
    }

    #[test]
    fn paper_definition6_example() {
        // Query {spicy, restaurant}; tweet has 1x spicy, 2x restaurant -> 3.
        let spicy = t(10);
        let restaurant = t(20);
        let bag = TermBag::from_occurrences([spicy, restaurant, restaurant]);
        assert_eq!(bag.matched_occurrences(&[spicy, restaurant]), 3);
    }

    #[test]
    fn and_or_semantics() {
        let bag = TermBag::from_occurrences([t(1), t(2)]);
        assert!(bag.contains_all(&[t(1), t(2)]));
        assert!(!bag.contains_all(&[t(1), t(3)]));
        assert!(bag.contains_any(&[t(3), t(2)]));
        assert!(!bag.contains_any(&[t(3), t(4)]));
        // Vacuous truth on empty query set.
        assert!(bag.contains_all(&[]));
        assert!(!bag.contains_any(&[]));
    }

    #[test]
    fn empty_bag() {
        let bag = TermBag::new();
        assert!(bag.is_empty());
        assert_eq!(bag.total(), 0);
        assert_eq!(bag.matched_occurrences(&[t(1)]), 0);
        assert!(!bag.contains_any(&[t(1)]));
    }

    #[test]
    fn from_iterator_collects() {
        let bag: TermBag = [t(2), t(2), t(1)].into_iter().collect();
        assert_eq!(bag.freq(t(2)), 2);
        let pairs: Vec<_> = bag.iter().collect();
        assert_eq!(pairs, vec![(t(1), 1), (t(2), 2)]);
    }
}
