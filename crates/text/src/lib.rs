//! Text substrate for the TkLUS reproduction.
//!
//! Algorithm 2 in the paper (the index-construction map function) requires
//! that "the content of each post is tokenized and each term is stemmed.
//! Stop words are filtered out during the tokenization process." This crate
//! provides exactly that pipeline:
//!
//! * [`Tokenizer`] — lowercases, strips URLs/mentions/hashtag markers, and
//!   splits tweet text into word tokens.
//! * [`stopwords`] — the embedded stop-word list ("a vocabulary W that
//!   excludes popular stop words", Definition 1).
//! * [`PorterStemmer`] — a from-scratch implementation of the classic Porter
//!   (1980) stemming algorithm.
//! * [`Vocab`] — a term dictionary interning strings to dense [`TermId`]s so
//!   postings and keys store 4-byte ids rather than strings.
//! * [`TermBag`] — per-post term-frequency bags; Definition 6 counts query
//!   keyword occurrences "according to a bag model of keywords".

pub mod freq;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use freq::TermBag;
pub use stemmer::PorterStemmer;
pub use stopwords::is_stopword;
pub use tokenizer::{TextPipeline, Tokenizer};
pub use vocab::{TermId, Vocab};
