//! The Porter stemming algorithm (M.F. Porter, 1980), implemented from
//! scratch.
//!
//! Algorithm 2 stems every term before it becomes part of an inverted-index
//! key, and the query processor must stem query keywords identically so that
//! "restaurants" in a tweet matches the query keyword "restaurant".
//!
//! The implementation follows the original paper's five steps over a buffer
//! of lowercase ASCII letters. Words shorter than three letters or
//! containing non-ASCII-alphabetic characters are returned unchanged (the
//! tokenizer only emits lowercase alphanumeric tokens, so in practice only
//! all-letter tokens reach the interesting paths).

/// A reusable Porter stemmer. Stateless between calls; the struct exists so
/// callers can hold one and avoid re-validating configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a stemmer.
    pub fn new() -> Self {
        Self
    }

    /// Stems `word`, returning the stemmed form. Input is expected to be
    /// lowercase; uppercase input is lowercased first. Words with
    /// non-ASCII-alphabetic characters are returned unchanged.
    pub fn stem(&self, word: &str) -> String {
        let lower = word.to_ascii_lowercase();
        if lower.len() < 3 || !lower.bytes().all(|b| b.is_ascii_lowercase()) {
            return lower;
        }
        let mut buf = Stem { b: lower.into_bytes() };
        buf.step1a();
        buf.step1b();
        buf.step1c();
        buf.step2();
        buf.step3();
        buf.step4();
        buf.step5a();
        buf.step5b();
        String::from_utf8(buf.b).expect("stemmer output is ASCII")
    }
}

/// Working buffer for a single stemming run.
struct Stem {
    b: Vec<u8>,
}

impl Stem {
    #[inline]
    fn len(&self) -> usize {
        self.b.len()
    }

    /// Is the letter at `i` a consonant (Porter's definition: `y` is a
    /// consonant when preceded by a vowel... precisely, `y` after a
    /// consonant is a vowel)?
    fn is_cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter's measure m of the prefix `b[..j]` — the number of VC
    /// sequences in the form `[C](VC)^m[V]`.
    fn measure(&self, j: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < j && self.is_cons(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < j && !self.is_cons(i) {
                i += 1;
            }
            if i >= j {
                return m;
            }
            // Skip consonants: one VC sequence completed.
            while i < j && self.is_cons(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does the prefix `b[..j]` contain a vowel?
    fn has_vowel(&self, j: usize) -> bool {
        (0..j).any(|i| !self.is_cons(i))
    }

    /// Does the word end in a double consonant?
    fn double_cons(&self) -> bool {
        let n = self.len();
        n >= 2 && self.b[n - 1] == self.b[n - 2] && self.is_cons(n - 1)
    }

    /// Does the prefix `b[..j]` end consonant-vowel-consonant, where the
    /// final consonant is not w, x, or y? (Used to detect short stems like
    /// "hop" that take a final "e" — hoping -> hope.)
    fn ends_cvc(&self, j: usize) -> bool {
        if j < 3 {
            return false;
        }
        let (c1, v, c2) = (j - 3, j - 2, j - 1);
        self.is_cons(c1)
            && !self.is_cons(v)
            && self.is_cons(c2)
            && !matches!(self.b[c2], b'w' | b'x' | b'y')
    }

    /// Does the word end with `suffix`?
    fn ends(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    /// Length of the stem if `suffix` were removed.
    fn stem_len(&self, suffix: &str) -> usize {
        self.len() - suffix.len()
    }

    /// Replaces a trailing `suffix` with `replacement`.
    fn set_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.stem_len(suffix);
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// If the word ends with `suffix` and the remaining stem has m > 0,
    /// replace the suffix. Returns true if the *suffix matched* (whether or
    /// not replaced), so callers can stop trying alternatives.
    fn replace_m_gt0(&mut self, suffix: &str, replacement: &str) -> bool {
        if self.ends(suffix) {
            if self.measure(self.stem_len(suffix)) > 0 {
                self.set_suffix(suffix, replacement);
            }
            true
        } else {
            false
        }
    }

    /// Step 1a: plurals. caresses->caress, ponies->poni, cats->cat.
    fn step1a(&mut self) {
        if self.ends("sses") {
            self.set_suffix("sses", "ss");
        } else if self.ends("ies") {
            self.set_suffix("ies", "i");
        } else if self.ends("ss") {
            // unchanged
        } else if self.ends("s") && self.len() > 1 {
            self.set_suffix("s", "");
        }
    }

    /// Step 1b: -ed / -ing. feed->feed, agreed->agree, plastered->plaster,
    /// motoring->motor, hopping->hop, filing->file.
    fn step1b(&mut self) {
        if self.ends("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.set_suffix("eed", "ee");
            }
            return;
        }
        let matched = if self.ends("ed") && self.has_vowel(self.stem_len("ed")) {
            self.set_suffix("ed", "");
            true
        } else if self.ends("ing") && self.has_vowel(self.stem_len("ing")) {
            self.set_suffix("ing", "");
            true
        } else {
            false
        };
        if matched {
            if self.ends("at") {
                self.set_suffix("at", "ate");
            } else if self.ends("bl") {
                self.set_suffix("bl", "ble");
            } else if self.ends("iz") {
                self.set_suffix("iz", "ize");
            } else if self.double_cons() && !matches!(self.b[self.len() - 1], b'l' | b's' | b'z') {
                self.b.pop();
            } else if self.measure(self.len()) == 1 && self.ends_cvc(self.len()) {
                self.b.push(b'e');
            }
        }
    }

    /// Step 1c: terminal y -> i when there is a vowel in the stem.
    fn step1c(&mut self) {
        if self.ends("y") && self.has_vowel(self.stem_len("y")) {
            let n = self.len();
            self.b[n - 1] = b'i';
        }
    }

    /// Step 2: double/triple suffixes mapped to single ones when m > 0.
    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_m_gt0(suffix, replacement) {
                return;
            }
        }
    }

    /// Step 3: -icate, -ative, -alize, -iciti, -ical, -ful, -ness.
    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_m_gt0(suffix, replacement) {
                return;
            }
        }
    }

    /// Step 4: strip remaining standard suffixes when m > 1.
    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in SUFFIXES {
            if self.ends(suffix) {
                if self.measure(self.stem_len(suffix)) > 1 {
                    self.set_suffix(suffix, "");
                }
                return;
            }
        }
        // -ion only when preceded by s or t: adoption -> adopt.
        if self.ends("ion") {
            let j = self.stem_len("ion");
            if j > 0 && matches!(self.b[j - 1], b's' | b't') && self.measure(j) > 1 {
                self.set_suffix("ion", "");
            }
        }
    }

    /// Step 5a: remove a final e when m > 1, or when m == 1 and the stem
    /// does not end CVC (rate -> rate, cease -> ceas).
    fn step5a(&mut self) {
        if self.ends("e") {
            let j = self.stem_len("e");
            let m = self.measure(j);
            if m > 1 || (m == 1 && !self.ends_cvc(j)) {
                self.b.pop();
            }
        }
    }

    /// Step 5b: -ll -> -l when m > 1 (controll -> control, roll -> roll).
    fn step5b(&mut self) {
        let n = self.len();
        if n >= 2 && self.b[n - 1] == b'l' && self.b[n - 2] == b'l' && self.measure(n) > 1 {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(word: &str) -> String {
        PorterStemmer::new().stem(word)
    }

    #[test]
    fn step1a_plurals() {
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("ties"), "ti");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
    }

    #[test]
    fn step1b_ed_ing() {
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
    }

    #[test]
    fn step1c_y_to_i() {
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_double_suffixes() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("operator"), "oper");
        assert_eq!(s("feudalism"), "feudal");
        assert_eq!(s("decisiveness"), "decis");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("callousness"), "callous");
        assert_eq!(s("formality"), "formal");
        assert_eq!(s("sensitivity"), "sensit");
    }

    #[test]
    fn step3_suffixes() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("electricity"), "electr");
        assert_eq!(s("electrical"), "electr");
        assert_eq!(s("hopeful"), "hope");
        assert_eq!(s("goodness"), "good");
    }

    #[test]
    fn step4_suffixes() {
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("allowance"), "allow");
        assert_eq!(s("inference"), "infer");
        assert_eq!(s("airliner"), "airlin");
        assert_eq!(s("adjustable"), "adjust");
        assert_eq!(s("defensible"), "defens");
        assert_eq!(s("irritant"), "irrit");
        assert_eq!(s("replacement"), "replac");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("dependent"), "depend");
        assert_eq!(s("adoption"), "adopt");
        assert_eq!(s("communism"), "commun");
        assert_eq!(s("activate"), "activ");
        assert_eq!(s("effective"), "effect");
    }

    #[test]
    fn step5_final_e_and_ll() {
        assert_eq!(s("probate"), "probat");
        assert_eq!(s("rate"), "rate");
        assert_eq!(s("cease"), "ceas");
        assert_eq!(s("controlling"), "control");
        assert_eq!(s("roll"), "roll");
    }

    #[test]
    fn paper_hot_keywords_stem_stably() {
        // Table II keywords: queries and tweets must stem to the same form.
        assert_eq!(s("restaurants"), s("restaurant"));
        assert_eq!(s("games"), s("game"));
        assert_eq!(s("cafes"), s("cafe"));
        assert_eq!(s("shops"), s("shop"));
        assert_eq!(s("shopping"), s("shop"));
        assert_eq!(s("hotels"), s("hotel"));
        assert_eq!(s("clubs"), s("club"));
        assert_eq!(s("coffee"), "coffe");
        assert_eq!(s("films"), s("film"));
        assert_eq!(s("pizzas"), s("pizza"));
        assert_eq!(s("malls"), s("mall"));
    }

    #[test]
    fn short_and_nonascii_words_unchanged() {
        assert_eq!(s("is"), "is");
        assert_eq!(s("a"), "a");
        assert_eq!(s("日本語"), "日本語");
        assert_eq!(s("c3po"), "c3po");
    }

    #[test]
    fn uppercase_is_lowercased() {
        assert_eq!(s("Hotels"), "hotel");
        assert_eq!(s("RUNNING"), "run");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        // Note: Porter stemming is not idempotent in general (e.g.
        // coffee -> coffe -> coff); these words are ones where the fixpoint
        // is reached in one pass, which the query/index agreement relies on
        // only because both sides stem exactly once.
        let stemmer = PorterStemmer::new();
        for w in ["restaurant", "hotel", "running", "babysitter", "massage", "marriott"] {
            let once = stemmer.stem(w);
            let twice = stemmer.stem(&once);
            assert_eq!(once, twice, "stem({w}) not idempotent");
        }
    }
}
