//! Tweet tokenization.
//!
//! Implements the tokenization half of Algorithm 2's map function: lowercase
//! the post content, drop URLs and user mentions, strip hashtag markers
//! (keeping the tag word itself, as in the paper's example tweet F whose
//! `#toronto` style tags carry content), split on non-alphanumeric
//! characters, and filter stop words. Stemming is applied by
//! [`TextPipeline`], which bundles the tokenizer with the
//! [`PorterStemmer`](crate::PorterStemmer).

use crate::stemmer::PorterStemmer;
use crate::stopwords::is_stopword;

/// Configurable tweet tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_len: usize,
    /// Maximum token length; longer tokens are dropped (protects the index
    /// from pathological tokens).
    pub max_len: usize,
    /// Drop tokens consisting only of digits.
    pub drop_numeric: bool,
    /// Drop stop words (Definition 1's vocabulary excludes them).
    pub drop_stopwords: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self { min_len: 2, max_len: 40, drop_numeric: true, drop_stopwords: true }
    }
}

impl Tokenizer {
    /// Creates a tokenizer with the default settings used throughout the
    /// reproduction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes `text` into lowercase word tokens, in order of appearance
    /// (duplicates preserved — Definition 6 uses a bag model).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for raw in text.split_whitespace() {
            // Drop URLs and user mentions entirely; they carry no keyword
            // content ("@ Four Seasons" venue tags in the examples survive
            // because '@' standing alone splits away from the venue words).
            if raw.starts_with("http://") || raw.starts_with("https://") || raw.starts_with("www.")
            {
                continue;
            }
            if raw.len() > 1 && raw.starts_with('@') {
                continue;
            }
            // Hashtag marker is stripped by the alphanumeric split below.
            let mut token = String::new();
            for ch in raw.chars() {
                if ch.is_alphanumeric() {
                    for lc in ch.to_lowercase() {
                        // Lowercasing can emit combining marks (e.g. 'İ'
                        // U+0130 -> "i" + U+0307); keep only the
                        // alphanumeric part so tokens stay alphanumeric.
                        if lc.is_alphanumeric() {
                            token.push(lc);
                        }
                    }
                } else if ch == '\'' {
                    // Collapse apostrophes: "I'm" -> "im", "friend's" ->
                    // "friends"; both then hit the stop/stem pipeline.
                    continue;
                } else {
                    self.push_token(&mut out, std::mem::take(&mut token));
                }
            }
            self.push_token(&mut out, token);
        }
        out
    }

    fn push_token(&self, out: &mut Vec<String>, token: String) {
        if token.is_empty() {
            return;
        }
        let char_len = token.chars().count();
        if char_len < self.min_len || char_len > self.max_len {
            return;
        }
        if self.drop_numeric && token.chars().all(|c| c.is_ascii_digit()) {
            return;
        }
        if self.drop_stopwords && is_stopword(&token) {
            return;
        }
        out.push(token);
    }
}

/// The full text pipeline of Algorithm 2: tokenize, filter stop words, stem.
///
/// Both index construction and query parsing must use the same pipeline so
/// query keywords meet index terms in the same normalized space.
///
/// ```
/// use tklus_text::TextPipeline;
///
/// let p = TextPipeline::new();
/// let terms = p.terms("The best restaurants in Toronto!");
/// let query = p.normalize_keyword("Restaurant").unwrap();
/// assert!(terms.contains(&query)); // "restaurants" and "Restaurant" meet at the stem
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextPipeline {
    tokenizer: Tokenizer,
    stemmer: PorterStemmer,
}

impl TextPipeline {
    /// Pipeline with default tokenizer settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline with a custom tokenizer.
    pub fn with_tokenizer(tokenizer: Tokenizer) -> Self {
        Self { tokenizer, stemmer: PorterStemmer::new() }
    }

    /// Tokenizes and stems `text` into index/query terms (bag semantics:
    /// duplicates preserved, order of appearance).
    pub fn terms(&self, text: &str) -> Vec<String> {
        self.tokenizer.tokenize(text).iter().map(|t| self.stemmer.stem(t)).collect()
    }

    /// Normalizes a single query keyword (lowercase + stem). Returns `None`
    /// for keywords that normalize away entirely (stop words, too short).
    pub fn normalize_keyword(&self, keyword: &str) -> Option<String> {
        self.tokenizer.tokenize(keyword).first().map(|t| self.stemmer.stem(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split_and_lowercase() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("Finally Toronto"), vec!["finally", "toronto"]);
    }

    #[test]
    fn stopwords_removed() {
        let t = Tokenizer::new();
        let toks = t.tokenize("I'm at the Four Seasons Hotel and that was the best");
        assert!(
            !toks.iter().any(|w| ["the", "and", "that", "was", "at"].contains(&w.as_str())),
            "{toks:?}"
        );
        assert!(toks.contains(&"hotel".to_string()));
        assert!(toks.contains(&"seasons".to_string()));
    }

    #[test]
    fn paper_example_tweet_a() {
        // Tweet A: "I'm at Toronto Marriott Bloor Yorkville Hotel".
        // "I'm" collapses to the chat-noise stop word "im" and is dropped.
        let t = Tokenizer::new();
        let toks = t.tokenize("I'm at Toronto Marriott Bloor Yorkville Hotel");
        assert_eq!(toks, vec!["toronto", "marriott", "bloor", "yorkville", "hotel"]);
    }

    #[test]
    fn hashtags_keep_word_drop_marker() {
        // Tweet F's tags: "#fashion #style #ootd #toronto".
        let t = Tokenizer::new();
        let toks = t.tokenize("Saturday night steez #fashion #style #toronto");
        assert!(toks.contains(&"fashion".to_string()));
        assert!(toks.contains(&"toronto".to_string()));
        assert!(!toks.iter().any(|w| w.starts_with('#')));
    }

    #[test]
    fn urls_and_mentions_dropped() {
        let t = Tokenizer::new();
        let toks = t.tokenize("check https://t.co/abc123 and www.example.com with @friend please");
        assert_eq!(toks, vec!["check", "please"]);
    }

    #[test]
    fn venue_at_sign_does_not_eat_words() {
        let t = Tokenizer::new();
        let toks = t.tokenize("massage (@ The Spa at Four Seasons Hotel Toronto)");
        assert!(toks.contains(&"spa".to_string()));
        assert!(toks.contains(&"hotel".to_string()));
    }

    #[test]
    fn numeric_tokens_dropped_alphanumeric_kept() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("room 1408 at c3po hq2"), vec!["room", "c3po", "hq2"]);
    }

    #[test]
    fn length_bounds_enforced() {
        let t = Tokenizer { min_len: 3, max_len: 6, drop_numeric: true, drop_stopwords: false };
        assert_eq!(t.tokenize("ab abc abcdef abcdefg"), vec!["abc", "abcdef"]);
    }

    #[test]
    fn duplicates_preserved_bag_semantics() {
        // Definition 6: one "spicy" + two "restaurant" counts 3 occurrences.
        let t = Tokenizer::new();
        let toks = t.tokenize("spicy restaurant near my favourite restaurant");
        assert_eq!(toks.iter().filter(|w| *w == "restaurant").count(), 2);
        assert_eq!(toks.iter().filter(|w| *w == "spicy").count(), 1);
    }

    #[test]
    fn unicode_words_pass_through() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Tokyo 東京 ramen");
        assert_eq!(toks, vec!["tokyo", "東京", "ramen"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n ").is_empty());
        assert!(t.tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn pipeline_stems_terms() {
        let p = TextPipeline::new();
        let terms = p.terms("Best restaurants and hotels in Toronto");
        assert!(
            terms.contains(&"restaur".to_string()) || terms.contains(&"restaurant".to_string())
        );
        // Query keyword and tweet word meet in the same space.
        let q = p.normalize_keyword("Restaurants").unwrap();
        assert!(terms.contains(&q));
    }

    #[test]
    fn pipeline_normalize_keyword_drops_stopwords() {
        let p = TextPipeline::new();
        assert_eq!(p.normalize_keyword("the"), None);
        assert_eq!(p.normalize_keyword("Hotels"), Some("hotel".to_string()));
    }
}
