//! # tklus-shard — sharded scatter-gather query engine
//!
//! Horizontal partitioning of the TkLUS engine (DESIGN.md §14): the corpus
//! is split into `N` contiguous geohash-prefix ranges ([`ShardPlan`]), one
//! independent [`tklus_core::TklusEngine`] per range, and a router
//! ([`ShardedEngine`]) that computes the circle cover once, fans out only
//! to intersecting shards, prunes shards by their Definition 11 upper
//! bound (Maximum-score ranking), and merges per-shard partials into the
//! global top-k — bitwise-identical to the monolithic answer for any shard
//! count.
//!
//! Shard dispatches run behind per-shard circuit breakers; a faulted shard
//! yields a typed degraded partial ([`ShardCompleteness::Degraded`])
//! naming the failed shards instead of an error or a silently truncated
//! ranking.
//!
//! Persistence uses the format v3 sharded manifest
//! (`tklus_index::save_sharded_dir`); monolithic v2 directories load as a
//! single full-range shard.

mod engine;
mod metrics;
mod plan;

pub use engine::{ShardCompleteness, ShardError, ShardedEngine, ShardedOutcome, SHARD_BOUNDS_FILE};
pub use metrics::ShardMetrics;
pub use plan::{ShardId, ShardPlan};
// Breaker vocabulary for callers inspecting per-shard dispatch health.
pub use tklus_serve::{BreakerConfig, BreakerState};
