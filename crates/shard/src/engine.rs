//! The sharded scatter-gather engine.
//!
//! [`ShardedEngine`] owns `N` independent [`TklusEngine`]s, each holding
//! the inverted index of one contiguous geohash-prefix range of the corpus
//! (the [`ShardPlan`]). A query is answered by:
//!
//! 1. computing the circle cover once and fanning out only to shards whose
//!    range intersects it,
//! 2. for Maximum-score ranking, ordering shards by their Definition 11
//!    upper bound and **skipping** any shard whose best possible user score
//!    cannot beat the running global k-th bound,
//! 3. merging per-shard partials into the global top-k — a tid-ordered
//!    k-way merge with duplicate-tweet elimination for Sum, a per-user
//!    float max for Max.
//!
//! Every shard dispatch runs behind its own circuit breaker (the serving
//! layer's [`CircuitBreaker`]); a faulted shard degrades the result to a
//! typed partial ([`ShardCompleteness::Degraded`] naming the failed
//! shards) instead of failing the query.
//!
//! ## Why sharded answers are bitwise-identical to monolithic ones
//!
//! Each shard engine is assembled from its own per-range index but the
//! **full** corpus metadata, so thread popularity φ, recency, distance
//! score δ, and the bounds table inputs are computed from exactly the same
//! bytes as the monolithic engine's. All postings of a tweet live in the
//! single cell of its location, so AND/OR combination never crosses a
//! shard boundary. For Sum, the router re-folds per-tweet scores in global
//! tweet-id order — the same order the monolithic fold uses — so the float
//! sums associate identically. For Max, the per-user maximum is
//! order-independent. The final ranking uses the engine's own
//! [`top_k`] comparator.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::time::Instant;

use parking_lot::Mutex;
use tklus_core::score::{tweet_keyword_score, upper_bound_user_score, user_score};
use tklus_core::{
    top_k, BoundsMode, Completeness, EngineConfig, EngineError, PartialSumOutcome, QueryStats,
    RankedUser, Ranking, SumRow, TklusEngine,
};
use tklus_geo::{circle_cover, encode, Geohash};
use tklus_graph::{build_thread, SocialNetwork};
use tklus_index::{
    build_index, load_sharded_dir_with_report, save_sharded_dir_refs, shard_dir_name, HybridIndex,
    PersistError,
};
use tklus_model::{Corpus, Post, ScoringConfig, Semantics, TklusQuery, UserId};
use tklus_serve::{BreakerConfig, BreakerState, CircuitBreaker};
use tklus_text::{TermId, TextPipeline, Vocab};

use crate::metrics::ShardMetrics;
use crate::plan::{ShardId, ShardPlan};

/// One parallel-scatter result slot: outer `Option` is "worker filled
/// it yet", inner is `dispatch`'s breaker-refusal signal.
type ScatterSlot<T> = Mutex<Option<Option<Result<T, EngineError>>>>;

/// Completeness of a scatter-gather answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardCompleteness {
    /// Every fanned-out shard answered and examined its whole cover.
    Complete,
    /// The answer is a typed partial: it ranks only what the healthy
    /// shards found within their budgets.
    Degraded {
        /// Shards whose dispatch failed (engine error or open breaker);
        /// their contribution is missing from the ranking. Sorted, empty
        /// when the degradation is budget-only.
        failed_shards: Vec<ShardId>,
        /// Cover cells every healthy shard is known to have examined
        /// (the conservative minimum across shards).
        cells_processed: usize,
        /// Cover cells a budget-free, fault-free query would examine.
        cells_total: usize,
    },
}

impl ShardCompleteness {
    pub fn is_complete(&self) -> bool {
        matches!(self, ShardCompleteness::Complete)
    }
}

/// A merged scatter-gather answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Global top-k users (score descending, user id ascending).
    pub users: Vec<RankedUser>,
    /// Work tallies summed across dispatched shards (`cover_cells` is the
    /// max, since every shard walks the same cover; `elapsed` is the
    /// router's wall clock).
    pub stats: QueryStats,
    /// Whether the answer is exact or a typed partial.
    pub completeness: ShardCompleteness,
    /// Shards the router attempted to dispatch (cover intersection minus
    /// bound-skipped shards, including failed dispatches).
    pub fanout: usize,
    /// Shards whose Definition 11 upper bound proved they cannot affect
    /// the top-k (Maximum-score ranking only). Sorted.
    pub skipped_by_bound: Vec<ShardId>,
}

/// Errors from assembling a sharded engine off disk.
#[derive(Debug)]
pub enum ShardError {
    /// The sharded index directory failed to load.
    Persist(PersistError),
    /// A shard engine failed to assemble.
    Engine(EngineError),
    /// The shard plan is inconsistent with the loaded shards.
    Plan(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Persist(e) => write!(f, "sharded index load failed: {e}"),
            ShardError::Engine(e) => write!(f, "shard engine assembly failed: {e}"),
            ShardError::Plan(msg) => write!(f, "invalid shard plan: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<PersistError> for ShardError {
    fn from(e: PersistError) -> Self {
        ShardError::Persist(e)
    }
}

impl From<EngineError> for ShardError {
    fn from(e: EngineError) -> Self {
        ShardError::Engine(e)
    }
}

/// Per-term Definition 11 refinement for one shard: for every term in the
/// shard's vocabulary, the largest single-term contribution
/// `count_t(post) / N · φ(post)` any of the shard's posts can make to a
/// Maximum-score ρ, with φ built over **full-network** threads so it
/// equals the value the engine computes at query time. A query's ρ on
/// this shard is at most the sum of its resolved terms' entries (a term
/// absent from a post contributes zero occurrences), recency and the
/// distance score are each at most 1, so `α · Σ + (1 − α)` dominates
/// every user score the shard can produce — under both bounds modes, and
/// far tighter than `max_tf × corpus-wide popularity bound`, whose inputs
/// are identical across shards and therefore can never separate them.
struct ShardBoundTable {
    per_term: HashMap<TermId, f64>,
}

impl ShardBoundTable {
    fn compute(
        posts: &[Post],
        network: &SocialNetwork,
        vocab: &Vocab,
        config: &ScoringConfig,
    ) -> Self {
        let pipeline = TextPipeline::new();
        let mut per_term: HashMap<TermId, f64> = HashMap::new();
        for post in posts {
            let mut counts: HashMap<TermId, u32> = HashMap::new();
            for term in pipeline.terms(&post.text) {
                if let Some(id) = vocab.get(&term) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            if counts.is_empty() {
                continue;
            }
            let mut provider = network;
            let phi = build_thread(&mut provider, post.id, config.thread_depth)
                .popularity(config.epsilon);
            for (id, count) in counts {
                let contribution = tweet_keyword_score(count, phi, config);
                let entry = per_term.entry(id).or_insert(0.0);
                if contribution > *entry {
                    *entry = contribution;
                }
            }
        }
        Self { per_term }
    }

    /// Upper bound on the shard's Maximum-score ρ for `terms` (resolved
    /// against the shard's own vocabulary, so every term has an entry; a
    /// missing one means no shard post contains it and bounds it by zero).
    fn rho_bound(&self, terms: &[TermId]) -> f64 {
        terms.iter().map(|t| self.per_term.get(t).copied().unwrap_or(0.0)).sum()
    }

    /// The `bounds.tsv` sidecar body: format line, the shard's `max_tf`,
    /// then one `term` line per vocabulary term, id-sorted, with the f64
    /// bound as hex bits so a round trip is bit-exact.
    fn encode_tsv(&self, max_tf: u32) -> String {
        let mut entries: Vec<(u32, f64)> = self.per_term.iter().map(|(t, b)| (t.0, *b)).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        let mut out = format!("format\t{BOUNDS_FORMAT_VERSION}\nmax_tf\t{max_tf}\n");
        for (term, bound) in entries {
            out.push_str(&format!("term\t{term}\t{:016x}\n", bound.to_bits()));
        }
        out
    }

    /// Parses a `bounds.tsv` body. Strict: an unknown key, a malformed
    /// value, a missing header, or a non-finite/negative bound is corrupt —
    /// an unsound table would silently skip shards that matter.
    fn decode_tsv(text: &str) -> Result<(Self, u32), String> {
        let mut format: Option<u32> = None;
        let mut max_tf: Option<u32> = None;
        let mut per_term: HashMap<TermId, f64> = HashMap::new();
        for line in text.lines() {
            let mut fields = line.split('\t');
            match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some("format"), Some(v), None, None) => {
                    format = Some(v.parse().map_err(|_| format!("bad format line {line:?}"))?);
                }
                (Some("max_tf"), Some(v), None, None) => {
                    max_tf = Some(v.parse().map_err(|_| format!("bad max_tf line {line:?}"))?);
                }
                (Some("term"), Some(t), Some(bits), None) => {
                    let term: u32 = t.parse().map_err(|_| format!("bad term id in {line:?}"))?;
                    let bits = u64::from_str_radix(bits, 16)
                        .map_err(|_| format!("bad bits in {line:?}"))?;
                    let bound = f64::from_bits(bits);
                    if !bound.is_finite() || bound < 0.0 {
                        return Err(format!("bound for term {term} is not a finite non-negative"));
                    }
                    if per_term.insert(TermId(term), bound).is_some() {
                        return Err(format!("duplicate term {term}"));
                    }
                }
                _ => return Err(format!("unknown bounds line {line:?}")),
            }
        }
        match format {
            Some(BOUNDS_FORMAT_VERSION) => {}
            Some(v) => return Err(format!("bounds format {v}, expected {BOUNDS_FORMAT_VERSION}")),
            None => return Err("missing bounds format line".to_string()),
        }
        let max_tf = max_tf.ok_or_else(|| "missing max_tf line".to_string())?;
        Ok((Self { per_term }, max_tf))
    }
}

/// Format version of the per-shard `bounds.tsv` sidecar.
const BOUNDS_FORMAT_VERSION: u32 = 1;

/// The per-shard Definition 11 sidecar file name, stored inside each
/// `shard-NNN/` subdirectory next to the v2 index files (whose loader
/// ignores unknown file names, so pre-sidecar readers stay compatible).
pub const SHARD_BOUNDS_FILE: &str = "bounds.tsv";

struct Shard {
    engine: TklusEngine,
    /// Maximum token count of any post in this shard — an upper bound on
    /// the matched keyword occurrences of any tweet the shard can score.
    max_tf: u32,
    /// Definition 11 bounds specialized to this shard (see
    /// [`ShardBoundTable`]). `None` for shard sets whose exact post
    /// membership is unknown (loaded or hand-assembled via
    /// [`ShardedEngine::try_from_indexes`], where shards may overlap);
    /// those fall back to `max_tf` times the engine's corpus-wide table,
    /// which is always sound.
    bounds: Option<ShardBoundTable>,
    /// Mutating breaker behind a mutex: the router queries through `&self`.
    breaker: Mutex<CircuitBreaker>,
}

/// `N` shard engines plus the scatter-gather router over them.
pub struct ShardedEngine {
    shards: Vec<Shard>,
    plan: ShardPlan,
    geohash_len: usize,
    metrics: ShardMetrics,
    /// Monotonic epoch for breaker clocks.
    epoch: Instant,
    /// Definition 11 shard skipping (on by default; tests disable it to
    /// prove skipping never changes the answer).
    bound_skip: bool,
    /// Scatter width: how many shard dispatches run concurrently on
    /// scoped worker threads. `1` reproduces the sequential scatter
    /// exactly; any value yields identical answers (see the module doc —
    /// merge order is fixed by fanout position, and Definition 11 skips
    /// are exact), only the skip/fanout *accounting* may differ for
    /// Maximum-score ranking because the k-th floor is frozen per wave.
    scatter_parallelism: usize,
}

/// Default scatter width: one dispatch thread per available core.
fn default_scatter_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl ShardedEngine {
    /// Builds `n_shards` shard engines over `corpus` with a mass-balanced
    /// plan, every shard using `config` (each gets its own buffer pool,
    /// caches, and metric registry).
    pub fn try_build(
        corpus: &Corpus,
        n_shards: usize,
        config: &EngineConfig,
    ) -> Result<Self, EngineError> {
        let plan = Self::plan_for(corpus, n_shards, config.index.geohash_len);
        Self::try_build_with(corpus, plan, &|_| config.clone())
    }

    /// The mass-balanced plan `try_build` would use: post counts per
    /// geohash cell, split greedily into `n_shards` contiguous ranges.
    pub fn plan_for(corpus: &Corpus, n_shards: usize, geohash_len: usize) -> ShardPlan {
        let mut counts: BTreeMap<Geohash, usize> = BTreeMap::new();
        for post in corpus.posts() {
            if let Ok(cell) = encode(&post.location, geohash_len) {
                *counts.entry(cell).or_default() += 1;
            }
        }
        let cells: Vec<(Geohash, usize)> = counts.into_iter().collect();
        ShardPlan::balanced(&cells, n_shards)
    }

    /// Builds shard engines over `corpus` under an explicit `plan`, with a
    /// per-shard config hook (chaos tests hand one shard a fault-injecting
    /// metadata store). All configs must share the index geometry
    /// (`geohash_len`) of shard 0's.
    pub fn try_build_with(
        corpus: &Corpus,
        plan: ShardPlan,
        config_for: &dyn Fn(usize) -> EngineConfig,
    ) -> Result<Self, EngineError> {
        let n = plan.n_shards();
        let geohash_len = config_for(0).index.geohash_len;
        let pipeline = TextPipeline::new();
        let mut shard_posts: Vec<Vec<Post>> = (0..n).map(|_| Vec::new()).collect();
        let mut max_tfs = vec![0u32; n];
        for post in corpus.posts() {
            // `encode` only fails on a bad length, which would fail the
            // index build identically; route defensively to shard 0.
            let sid = match encode(&post.location, geohash_len) {
                Ok(cell) => plan.shard_of(cell).0,
                Err(_) => 0,
            };
            max_tfs[sid] = max_tfs[sid].max(pipeline.terms(&post.text).len() as u32);
            shard_posts[sid].push(post.clone());
        }
        // One full-corpus network for the shard-local bounds: replies to a
        // shard's tweets live wherever they were posted, so φ must be
        // computed over full threads to match query-time values.
        let network = SocialNetwork::from_corpus(corpus);
        let mut shards = Vec::with_capacity(n);
        for (i, posts) in shard_posts.into_iter().enumerate() {
            let config = config_for(i);
            let (index, _) = build_index(&posts, &config.index);
            // Full corpus: shard metadata (φ, δ, recency, bounds inputs)
            // must be bitwise-identical to the monolithic engine's.
            let engine = TklusEngine::try_from_index(index, corpus, &config)?;
            // Shard-local Definition 11 table over exactly the posts this
            // shard indexes: every (term, tweet) the shard can match comes
            // from one of these posts, so the per-term maxima dominate
            // every ρ contribution the shard's scorer will see.
            let bounds = Some(ShardBoundTable::compute(
                &posts,
                &network,
                engine.index().vocab(),
                engine.scoring(),
            ));
            shards.push(Shard {
                engine,
                max_tf: max_tfs[i],
                bounds,
                breaker: Mutex::new(CircuitBreaker::new(
                    ShardId(i).to_string(),
                    BreakerConfig::default(),
                )),
            });
        }
        Ok(Self {
            shards,
            plan,
            geohash_len,
            metrics: ShardMetrics::new(),
            epoch: Instant::now(),
            bound_skip: true,
            scatter_parallelism: default_scatter_parallelism(),
        })
    }

    /// Assembles a sharded engine from already-built per-shard indexes
    /// (disk load, or hand-built overlapping shards in tests). `max_tf` is
    /// bounded from the full corpus, which stays sound for any index
    /// content.
    pub fn try_from_indexes(
        indexes: Vec<HybridIndex>,
        plan: ShardPlan,
        corpus: &Corpus,
        config: &EngineConfig,
    ) -> Result<Self, ShardError> {
        if indexes.len() != plan.n_shards() {
            return Err(ShardError::Plan(format!(
                "plan has {} shards but {} indexes were provided",
                plan.n_shards(),
                indexes.len()
            )));
        }
        let pipeline = TextPipeline::new();
        let corpus_max_tf =
            corpus.posts().iter().map(|p| pipeline.terms(&p.text).len() as u32).max().unwrap_or(0);
        let geohash_len = config.index.geohash_len;
        let mut shards = Vec::with_capacity(indexes.len());
        for (i, index) in indexes.into_iter().enumerate() {
            if index.geohash_len() != geohash_len {
                return Err(ShardError::Plan(format!(
                    "shard {i} has geohash length {} but the config says {geohash_len}",
                    index.geohash_len()
                )));
            }
            let engine = TklusEngine::try_from_index(index, corpus, config)?;
            shards.push(Shard {
                engine,
                max_tf: corpus_max_tf,
                // Membership is only known index-side here (shards may
                // overlap); the corpus-wide table is the sound fallback.
                bounds: None,
                breaker: Mutex::new(CircuitBreaker::new(
                    ShardId(i).to_string(),
                    BreakerConfig::default(),
                )),
            });
        }
        Ok(Self {
            shards,
            plan,
            geohash_len,
            metrics: ShardMetrics::new(),
            epoch: Instant::now(),
            bound_skip: true,
            scatter_parallelism: default_scatter_parallelism(),
        })
    }

    /// Writes this engine's shards as a sharded (format v3) index
    /// directory, each shard's Definition 11 bound table riding along as a
    /// `bounds.tsv` sidecar in its `shard-NNN/` subdirectory (shards
    /// without an exact-membership table — hand-assembled overlapping
    /// sets — simply omit the sidecar). [`Self::try_load_dir`] restores
    /// the tables bit-exactly, so a reloaded engine skips shards exactly
    /// as the builder did instead of falling back to the loose
    /// `max_tf × corpus bound`.
    pub fn try_save_dir(&self, dir: &Path) -> Result<(), ShardError> {
        let indexes: Vec<&HybridIndex> = self.shards.iter().map(|s| s.engine.index()).collect();
        save_sharded_dir_refs(&indexes, self.plan.boundaries(), dir)?;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(table) = &shard.bounds {
                let path = dir.join(shard_dir_name(i)).join(SHARD_BOUNDS_FILE);
                std::fs::write(&path, table.encode_tsv(shard.max_tf))
                    .map_err(|e| ShardError::Persist(PersistError::Io(e)))?;
            }
        }
        Ok(())
    }

    /// Loads a sharded (format v3) or monolithic (v2, loaded as one shard)
    /// index directory and assembles the engines over `corpus`. Shards
    /// carrying a `bounds.tsv` sidecar get their persisted Definition 11
    /// table (and exact per-shard `max_tf`) back; shards without one keep
    /// the sound corpus-wide fallback.
    pub fn try_load_dir(
        dir: &Path,
        corpus: &Corpus,
        config: &EngineConfig,
    ) -> Result<Self, ShardError> {
        let (indexes, boundaries, _report) = load_sharded_dir_with_report(dir)?;
        let plan = ShardPlan::from_boundaries(boundaries).map_err(ShardError::Plan)?;
        let mut engine = Self::try_from_indexes(indexes, plan, corpus, config)?;
        for (i, shard) in engine.shards.iter_mut().enumerate() {
            let path = dir.join(shard_dir_name(i)).join(SHARD_BOUNDS_FILE);
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(ShardError::Persist(PersistError::Io(e))),
            };
            let (table, max_tf) = ShardBoundTable::decode_tsv(&text).map_err(|msg| {
                ShardError::Persist(PersistError::Corrupt(format!(
                    "{}/{SHARD_BOUNDS_FILE}: {msg}",
                    shard_dir_name(i)
                )))
            })?;
            shard.bounds = Some(table);
            shard.max_tf = max_tf;
        }
        Ok(engine)
    }

    /// Disables (or re-enables) Definition 11 shard skipping. Used by the
    /// bound-soundness tests to prove skipping never changes the answer.
    pub fn with_bound_skip(mut self, on: bool) -> Self {
        self.bound_skip = on;
        self
    }

    /// Sets the scatter width (clamped to ≥ 1). `1` reproduces the
    /// sequential scatter loop exactly; the invariance oracle asserts the
    /// answer is identical at any width.
    pub fn with_scatter_parallelism(mut self, n: usize) -> Self {
        self.set_scatter_parallelism(n);
        self
    }

    /// In-place form of [`Self::with_scatter_parallelism`] (the invariance
    /// oracle re-queries one engine at several widths).
    pub fn set_scatter_parallelism(&mut self, n: usize) {
        self.scatter_parallelism = n.max(1);
    }

    /// Replaces every shard's circuit breaker with one using `cfg`.
    pub fn with_breaker_config(self, cfg: BreakerConfig) -> Self {
        for (i, shard) in self.shards.iter().enumerate() {
            *shard.breaker.lock() = CircuitBreaker::new(ShardId(i).to_string(), cfg);
        }
        self
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Direct access to one shard's engine (tests, introspection).
    pub fn shard_engine(&self, i: usize) -> &TklusEngine {
        &self.shards[i].engine
    }

    /// The breaker state of shard `i`.
    pub fn breaker_state(&self, i: usize) -> BreakerState {
        self.shards[i].breaker.lock().state()
    }

    /// Merged metric snapshot: the router's `tklus_shard_*` families plus
    /// every shard engine's registry (counters sum, histograms merge).
    pub fn metrics_snapshot(&self) -> tklus_metrics::RegistrySnapshot {
        let mut snap = self.metrics.snapshot();
        for shard in &self.shards {
            if let Some(s) = shard.engine.metrics_snapshot() {
                snap.merge(&s);
            }
        }
        snap
    }

    /// The Definition 11 upper bound on any user score shard `sid` can
    /// produce for `q`: its maximum per-post token count (≥ any tweet's
    /// matched keyword occurrences) against the shard's popularity bound,
    /// with distance score and recency bounded by 1. `0` when the shard's
    /// vocabulary cannot produce a candidate at all.
    pub fn shard_upper_bound(&self, sid: usize, q: &TklusQuery, mode: BoundsMode) -> f64 {
        let shard = &self.shards[sid];
        let engine = &shard.engine;
        if q.semantics == Semantics::And
            && engine.resolve_keywords(&q.keywords).iter().any(Option::is_none)
        {
            return 0.0;
        }
        let terms = engine.resolve_query_terms(&q.keywords);
        if terms.is_empty() {
            return 0.0;
        }
        if let Some(table) = &shard.bounds {
            // Tight path: per-term shard maxima already include the
            // occurrence count, so no `max_tf` factor. Sound under both
            // bounds modes (`mode` only picks how loose the fallback is).
            return user_score(table.rho_bound(&terms), 1.0, engine.scoring());
        }
        let pop_bound = engine.bounds().query_bound(&terms, q.semantics, mode);
        upper_bound_user_score(shard.max_tf, pop_bound, engine.scoring())
    }

    /// Answers `q` by scatter-gather. Infallible by construction: a shard
    /// failure (engine error or open breaker) degrades the result to a
    /// typed partial naming the shard, it never fails the query.
    pub fn query(&self, q: &TklusQuery, ranking: Ranking) -> ShardedOutcome {
        let start = Instant::now();
        self.metrics.queries.inc();
        let (fanout, cells_total) = self.fanout_for(q);
        let mut out = match ranking {
            Ranking::Sum => self.scatter_sum(q, &fanout, cells_total),
            Ranking::Max(mode) => self.scatter_max(q, mode, &fanout, cells_total),
        };
        out.stats.elapsed = start.elapsed();
        self.metrics.fanout.add(out.fanout as u64);
        self.metrics.skipped_bound.add(out.skipped_by_bound.len() as u64);
        if !out.completeness.is_complete() {
            self.metrics.degraded.inc();
        }
        out
    }

    /// The shards whose range intersects the query's circle cover, plus
    /// the cover size (the authoritative `cells_total`).
    fn fanout_for(&self, q: &TklusQuery) -> (Vec<usize>, usize) {
        let metric =
            self.shards.first().map_or_else(Default::default, |s| s.engine.scoring().metric);
        let cover = circle_cover(&q.location, q.radius_km, self.geohash_len, metric)
            .expect("engine geohash length is valid");
        let mut shards = BTreeSet::new();
        for &cell in &cover {
            shards.insert(self.plan.shard_of(cell).0);
        }
        (shards.into_iter().collect(), cover.len())
    }

    /// Dispatches `f` against shard `sid` behind its breaker. `None` means
    /// the breaker refused; `Some(Err)` a typed engine failure (recorded
    /// against the breaker).
    fn dispatch<T>(
        &self,
        sid: usize,
        f: impl FnOnce(&TklusEngine) -> Result<T, EngineError>,
    ) -> Option<Result<T, EngineError>> {
        let shard = &self.shards[sid];
        if shard.breaker.lock().try_grant(self.now_ms()).is_none() {
            self.metrics.failed.inc();
            return None;
        }
        let t0 = Instant::now();
        let result = f(&shard.engine);
        self.metrics.latency.record_duration_us(t0.elapsed());
        let mut breaker = shard.breaker.lock();
        match &result {
            Ok(_) => breaker.record_success(self.now_ms()),
            Err(_) => {
                breaker.record_failure(self.now_ms());
                self.metrics.failed.inc();
            }
        }
        Some(result)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Dispatches `f` against every shard in `sids`, up to
    /// `scatter_parallelism` at a time on scoped worker threads. The
    /// result vector is indexed by position in `sids` — callers consume it
    /// in that order, so the merge order is identical to the sequential
    /// loop's no matter how the dispatches interleave in time.
    fn dispatch_all<T: Send>(
        &self,
        sids: &[usize],
        f: &(dyn Fn(&TklusEngine) -> Result<T, EngineError> + Sync),
    ) -> Vec<Option<Result<T, EngineError>>> {
        let threads = self.scatter_parallelism.min(sids.len());
        if threads <= 1 {
            return sids.iter().map(|&sid| self.dispatch(sid, f)).collect();
        }
        let slots: Vec<ScatterSlot<T>> = sids.iter().map(|_| Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&sid) = sids.get(i) else { break };
                    let result = self.dispatch(sid, f);
                    *slots[i].lock() = Some(result);
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().expect("worker filled every slot")).collect()
    }

    /// Sum-score scatter-gather: per-shard tid-ordered partial rows, k-way
    /// merged with duplicate-tweet elimination, folded in global tweet-id
    /// order (the monolithic fold order), then distance-blended and ranked.
    fn scatter_sum(&self, q: &TklusQuery, fanout: &[usize], cells_total: usize) -> ShardedOutcome {
        let mut failed: Vec<ShardId> = Vec::new();
        let mut healthy: Vec<(usize, PartialSumOutcome)> = Vec::new();
        // Concurrent dispatch, position-ordered collection: `healthy` ends
        // up in fanout order exactly as the sequential loop built it, so
        // the k-way merge (and therefore the float fold) is unchanged.
        for (&sid, result) in
            fanout.iter().zip(self.dispatch_all(fanout, &|e| e.try_partial_sum(q)))
        {
            match result {
                Some(Ok(p)) => healthy.push((sid, p)),
                Some(Err(_)) | None => failed.push(ShardId(sid)),
            }
        }

        // The distance blend reads through a healthy shard's metadata
        // database; if that too faults, drop the shard and redo the merge
        // without it (its rows must not survive its failure).
        let users: Vec<RankedUser> = loop {
            let merged = merge_sum_rows(healthy.iter().map(|(_, p)| p.rows.as_slice()));
            match self.blend_sum(q, &healthy, merged) {
                Ok(users) => break users,
                Err(_) => {
                    let (sid, _) = healthy.remove(0);
                    let mut breaker = self.shards[sid].breaker.lock();
                    breaker.record_failure(self.now_ms());
                    drop(breaker);
                    self.metrics.failed.inc();
                    failed.push(ShardId(sid));
                }
            }
        };

        let mut stats = QueryStats::default();
        for (_, p) in &healthy {
            merge_stats(&mut stats, &p.stats);
        }
        let completeness =
            consensus(failed, healthy.iter().map(|(_, p)| &p.completeness), cells_total);
        ShardedOutcome {
            users: top_k(users, q.k),
            stats,
            completeness,
            fanout: fanout.len(),
            skipped_by_bound: Vec::new(),
        }
    }

    /// Folds merged rows per user and blends in the distance score through
    /// the first healthy shard (every shard holds the full corpus
    /// metadata, so any healthy one gives the monolithic bytes).
    fn blend_sum(
        &self,
        q: &TklusQuery,
        healthy: &[(usize, PartialSumOutcome)],
        merged: Vec<SumRow>,
    ) -> Result<Vec<RankedUser>, EngineError> {
        let Some(&(blend_sid, _)) = healthy.first() else {
            return Ok(Vec::new());
        };
        let engine = &self.shards[blend_sid].engine;
        let mut users: HashMap<UserId, f64> = HashMap::new();
        for row in &merged {
            *users.entry(row.user).or_insert(0.0) += row.rho;
        }
        let mut entries: Vec<(UserId, f64)> = users.into_iter().collect();
        entries.sort_by_key(|e| e.0);
        let mut ranked = Vec::with_capacity(entries.len());
        for (uid, rho) in entries {
            let delta = engine.try_user_distance_score(&q.location, q.radius_km, uid)?;
            ranked.push(RankedUser { user: uid, score: user_score(rho, delta, engine.scoring()) });
        }
        Ok(ranked)
    }

    /// Maximum-score scatter-gather: dispatch in descending Definition 11
    /// upper-bound order, skip every shard whose bound cannot beat the
    /// running k-th best, merge per-user maxima.
    fn scatter_max(
        &self,
        q: &TklusQuery,
        mode: BoundsMode,
        fanout: &[usize],
        cells_total: usize,
    ) -> ShardedOutcome {
        let mut order: Vec<(usize, f64)> =
            fanout.iter().map(|&sid| (sid, self.shard_upper_bound(sid, q, mode))).collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("upper bounds are finite").then(a.0.cmp(&b.0))
        });

        let mut best: HashMap<UserId, f64> = HashMap::new();
        let mut failed: Vec<ShardId> = Vec::new();
        let mut skipped: Vec<ShardId> = Vec::new();
        let mut partial_completeness: Vec<Completeness> = Vec::new();
        let mut stats = QueryStats::default();
        let mut dispatched = 0usize;
        // Dispatch the bound-ordered list in waves of `scatter_parallelism`
        // shards. The k-th floor is frozen while a wave is being assembled
        // and refreshed between waves — at width 1 that is exactly the
        // sequential loop (the floor only ever changes after a dispatch).
        // Wider waves may dispatch a shard the sequential loop would have
        // skipped, but a skip is only ever taken when the bound *proves*
        // the shard cannot affect the top-k, so the merged answer is
        // identical at any width; only the skip/fanout tallies move.
        let mut i = 0usize;
        while i < order.len() {
            let floor = if self.bound_skip { kth_floor(&best, q.k) } else { None };
            let mut wave: Vec<usize> = Vec::new();
            while i < order.len() && wave.len() < self.scatter_parallelism {
                let (sid, upper) = order[i];
                i += 1;
                if floor.is_some_and(|floor| {
                    // Same comparison the monolithic prune uses
                    // (`upper <= kth`): a shard tying the floor cannot
                    // strictly displace the k-th user.
                    upper <= floor
                }) {
                    skipped.push(ShardId(sid));
                    continue;
                }
                wave.push(sid);
            }
            dispatched += wave.len();
            let results = self.dispatch_all(&wave, &|e| e.try_query(q, Ranking::Max(mode)));
            for (&sid, result) in wave.iter().zip(results) {
                match result {
                    Some(Ok(out)) => {
                        for ru in &out.users {
                            let entry = best.entry(ru.user).or_insert(f64::NEG_INFINITY);
                            if ru.score > *entry {
                                *entry = ru.score;
                            }
                        }
                        merge_stats(&mut stats, &out.stats);
                        partial_completeness.push(out.completeness);
                    }
                    Some(Err(_)) | None => failed.push(ShardId(sid)),
                }
            }
        }
        skipped.sort();
        failed.sort();
        let users =
            best.into_iter().map(|(user, score)| RankedUser { user, score }).collect::<Vec<_>>();
        let completeness = consensus(failed, partial_completeness.iter(), cells_total);
        ShardedOutcome {
            users: top_k(users, q.k),
            stats,
            completeness,
            fanout: dispatched,
            skipped_by_bound: skipped,
        }
    }
}

/// The current global k-th best user score, or `None` while fewer than `k`
/// users have been merged. Ordering matches [`top_k`]: score descending,
/// user id ascending.
fn kth_floor(best: &HashMap<UserId, f64>, k: usize) -> Option<f64> {
    if k == 0 || best.len() < k {
        return None;
    }
    let ranked: Vec<RankedUser> =
        best.iter().map(|(&user, &score)| RankedUser { user, score }).collect();
    top_k(ranked, k).last().map(|ru| ru.score)
}

/// K-way merges per-shard row slices (each sorted by tweet id ascending)
/// into one tid-ascending stream, keeping the **first** row of any
/// duplicated tweet id. Disjoint plans never duplicate a tweet; the dedup
/// guards hand-built overlapping shard sets (and any future plan bug) from
/// double-counting a tweet's score into its user's sum.
fn merge_sum_rows<'a>(lists: impl Iterator<Item = &'a [SumRow]>) -> Vec<SumRow> {
    let lists: Vec<&[SumRow]> = lists.collect();
    let mut idx = vec![0usize; lists.len()];
    let mut merged: Vec<SumRow> = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
    loop {
        let mut next: Option<usize> = None;
        for (li, list) in lists.iter().enumerate() {
            if let Some(row) = list.get(idx[li]) {
                let beats = match next {
                    None => true,
                    Some(best_li) => row.tweet < lists[best_li][idx[best_li]].tweet,
                };
                if beats {
                    next = Some(li);
                }
            }
        }
        let Some(li) = next else { break };
        let row = lists[li][idx[li]];
        idx[li] += 1;
        if merged.last().is_some_and(|last| last.tweet == row.tweet) {
            continue; // duplicate tweet across shards: count it once
        }
        merged.push(row);
    }
    merged
}

/// Folds per-shard completeness and the failed-shard list into the merged
/// verdict. Budget `cells_processed` merges conservatively (minimum across
/// shards); `cells_total` is the router's own cover size.
fn consensus<'a>(
    failed: Vec<ShardId>,
    parts: impl Iterator<Item = &'a Completeness>,
    cells_total: usize,
) -> ShardCompleteness {
    let mut budget_degraded = false;
    let mut min_processed = usize::MAX;
    for part in parts {
        if let Completeness::Degraded { cells_processed, .. } = part {
            budget_degraded = true;
            min_processed = min_processed.min(*cells_processed);
        }
    }
    if failed.is_empty() && !budget_degraded {
        return ShardCompleteness::Complete;
    }
    ShardCompleteness::Degraded {
        failed_shards: failed,
        cells_processed: if budget_degraded { min_processed } else { cells_total },
        cells_total,
    }
}

/// Sums one shard's work tallies into the merged stats. `cover_cells` is
/// the max (every shard resolves the same cover); durations add.
fn merge_stats(total: &mut QueryStats, s: &QueryStats) {
    total.cover_cells = total.cover_cells.max(s.cover_cells);
    total.lists_fetched += s.lists_fetched;
    total.dfs_bytes += s.dfs_bytes;
    total.candidates += s.candidates;
    total.in_radius += s.in_radius;
    total.threads_built += s.threads_built;
    total.threads_pruned += s.threads_pruned;
    total.metadata_page_reads += s.metadata_page_reads;
    total.cover_cache_hits += s.cover_cache_hits;
    total.cover_cache_misses += s.cover_cache_misses;
    total.postings_cache_hits += s.postings_cache_hits;
    total.postings_cache_misses += s.postings_cache_misses;
    total.thread_cache_hits += s.thread_cache_hits;
    total.thread_cache_misses += s.thread_cache_misses;
    total.deadline_polls_saved += s.deadline_polls_saved;
    total.stages.cover += s.stages.cover;
    total.stages.fetch += s.stages.fetch;
    total.stages.combine += s.stages.combine;
    total.stages.threads += s.stages.threads;
    total.stages.scoring += s.stages.scoring;
    total.stages.topk += s.stages.topk;
}
