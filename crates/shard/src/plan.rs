//! The shard plan: a partition of the geohash keyspace into `N`
//! contiguous half-open prefix ranges.
//!
//! A plan is just its `N - 1` sorted range boundaries; boundary `i` is the
//! first cell of shard `i + 1`'s range, so shard `i` owns
//! `[boundary[i-1], boundary[i])` (with the first and last ranges open at
//! the keyspace ends). Routing a cell is one `partition_point` over the
//! boundary list. Boundaries may repeat: a plan with more shards than
//! distinct cells simply has empty ranges, which keeps the shard count an
//! invariant of the plan rather than of the data.
//!
//! `Geohash` compares lexicographically for equal-length cells (its bits
//! are left-aligned), so "contiguous boundary ranges" and "contiguous
//! geographic prefix ranges" coincide as long as every routed cell uses
//! the same geohash length — which the sharded engine guarantees by
//! deriving both the plan and every query cover from one configured
//! `geohash_len`.

use tklus_geo::Geohash;

/// Identifies one shard of a [`ShardPlan`]. Displays as `shard-NNN`,
/// matching the on-disk subdirectory naming of the sharded manifest
/// (format v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{:03}", self.0)
    }
}

/// A partition of the geohash keyspace into contiguous shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Sorted range boundaries; `len() + 1` shards.
    boundaries: Vec<Geohash>,
}

impl ShardPlan {
    /// The trivial single-shard plan (the monolithic engine's keyspace).
    pub fn single() -> Self {
        Self { boundaries: Vec::new() }
    }

    /// A plan from explicit boundaries, which must be sorted ascending
    /// (duplicates allowed — they denote empty shards).
    pub fn from_boundaries(boundaries: Vec<Geohash>) -> Result<Self, String> {
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err("shard boundaries must be sorted ascending".to_string());
        }
        Ok(Self { boundaries })
    }

    /// A plan that splits `cells` — the corpus's distinct geohash cells
    /// with their post counts, sorted ascending by cell — into `n_shards`
    /// contiguous ranges of roughly equal post mass (greedy prefix cuts).
    /// With fewer distinct cells than shards, trailing boundaries repeat
    /// and the surplus shards are empty; an empty cell list yields the
    /// single-shard plan.
    pub fn balanced(cells: &[(Geohash, usize)], n_shards: usize) -> Self {
        let n = n_shards.max(1);
        if n == 1 || cells.is_empty() {
            return Self::single();
        }
        debug_assert!(cells.windows(2).all(|w| w[0].0 < w[1].0), "cells sorted and distinct");
        let total: usize = cells.iter().map(|&(_, c)| c).sum();
        let mut boundaries: Vec<Geohash> = Vec::with_capacity(n - 1);
        let mut prefix = 0usize;
        for &(gh, count) in cells {
            // Cut in front of this cell whenever the mass before it has
            // reached the next target `i * total / n`.
            while boundaries.len() < n - 1
                && prefix > 0
                && prefix * n >= (boundaries.len() + 1) * total
            {
                boundaries.push(gh);
            }
            prefix += count;
        }
        // Fewer cut points than requested shards: repeat the last cell so
        // the plan keeps its shard count (the extra shards are empty).
        let pad = boundaries.last().copied().unwrap_or(cells[cells.len() - 1].0);
        while boundaries.len() < n - 1 {
            boundaries.push(pad);
        }
        Self { boundaries }
    }

    /// Number of shards (always `boundaries + 1`, never 0).
    pub fn n_shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The sorted range boundaries (`n_shards() - 1` of them).
    pub fn boundaries(&self) -> &[Geohash] {
        &self.boundaries
    }

    /// The shard whose range contains `cell`. Total: every cell routes
    /// somewhere, including cells outside any corpus shard's data.
    pub fn shard_of(&self, cell: Geohash) -> ShardId {
        ShardId(self.boundaries.partition_point(|b| *b <= cell))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_geo::{encode, Point};

    fn cell(lat: f64, lon: f64) -> Geohash {
        encode(&Point::new_unchecked(lat, lon), 4).unwrap()
    }

    #[test]
    fn single_plan_routes_everything_to_shard_zero() {
        let plan = ShardPlan::single();
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.shard_of(cell(43.7, -79.4)), ShardId(0));
        assert_eq!(plan.shard_of(cell(-33.9, 151.2)), ShardId(0));
    }

    #[test]
    fn balanced_splits_mass_into_contiguous_ranges() {
        let mut cells: Vec<(Geohash, usize)> =
            (0..8).map(|i| (cell(43.0 + i as f64 * 0.5, -79.4), 10)).collect();
        cells.sort();
        cells.dedup_by_key(|c| c.0);
        let n_cells = cells.len();
        let plan = ShardPlan::balanced(&cells, 4);
        assert_eq!(plan.n_shards(), 4);
        // Routing is monotone in the cell order: shard ids never decrease.
        let ids: Vec<usize> = cells.iter().map(|&(gh, _)| plan.shard_of(gh).0).collect();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]), "{ids:?}");
        assert_eq!(ids[0], 0, "first cell lands in the first shard");
        assert_eq!(ids[n_cells - 1], 3, "last cell lands in the last shard");
        // Equal mass: every shard holds some cells.
        for shard in 0..4 {
            assert!(ids.contains(&shard), "shard {shard} is empty: {ids:?}");
        }
    }

    #[test]
    fn more_shards_than_cells_pads_with_empty_ranges() {
        let cells = vec![(cell(43.7, -79.4), 5)];
        let plan = ShardPlan::balanced(&cells, 4);
        assert_eq!(plan.n_shards(), 4, "plan keeps the requested shard count");
        // The one cell routes to exactly one shard; the rest are empty.
        let owner = plan.shard_of(cells[0].0);
        assert!(owner.0 < 4);
    }

    #[test]
    fn empty_cells_collapse_to_the_single_plan() {
        assert_eq!(ShardPlan::balanced(&[], 4), ShardPlan::single());
    }

    #[test]
    fn boundary_cell_starts_the_next_shard() {
        let a = cell(40.0, -79.4);
        let b = cell(45.0, -79.4);
        assert!(a < b);
        let plan = ShardPlan::from_boundaries(vec![b]).unwrap();
        assert_eq!(plan.shard_of(a), ShardId(0));
        assert_eq!(plan.shard_of(b), ShardId(1), "the boundary cell belongs to the right shard");
    }

    #[test]
    fn unsorted_boundaries_are_rejected() {
        let a = cell(40.0, -79.4);
        let b = cell(45.0, -79.4);
        assert!(ShardPlan::from_boundaries(vec![b, a]).is_err());
        assert!(ShardPlan::from_boundaries(vec![a, a, b]).is_ok(), "duplicates are empty shards");
    }

    #[test]
    fn shard_id_displays_like_the_on_disk_subdir() {
        assert_eq!(ShardId(3).to_string(), "shard-003");
        assert_eq!(ShardId(3).to_string(), tklus_index::shard_dir_name(3));
    }
}
