//! Router-level metrics: the `tklus_shard_*` families.
//!
//! The router owns its own [`MetricRegistry`] so shard-level engine metrics
//! (which each shard engine records into its own registry) and router
//! metrics stay independently inspectable; `ShardedEngine::metrics_snapshot`
//! merges them all into one snapshot for export.

use tklus_metrics::{Counter, Histogram, MetricRegistry, RegistrySnapshot};

/// Counter and histogram handles for the sharded query router.
#[derive(Debug)]
pub struct ShardMetrics {
    registry: MetricRegistry,
    /// Queries routed (`tklus_shard_queries_total`).
    pub queries: Counter,
    /// Shard dispatches attempted, including breaker-refused ones
    /// (`tklus_shard_fanout_total`).
    pub fanout: Counter,
    /// Shards skipped by the Definition 11 upper-bound check
    /// (`tklus_shard_skipped_bound_total`).
    pub skipped_bound: Counter,
    /// Queries that returned a degraded result (`tklus_shard_degraded_total`).
    pub degraded: Counter,
    /// Shard dispatches that failed — breaker-refused or engine error
    /// (`tklus_shard_failed_total`).
    pub failed: Counter,
    /// Per-shard dispatch latency in microseconds (`tklus_shard_latency_us`).
    pub latency: Histogram,
}

impl ShardMetrics {
    pub fn new() -> Self {
        let registry = MetricRegistry::new();
        let queries = registry.counter("tklus_shard_queries_total");
        let fanout = registry.counter("tklus_shard_fanout_total");
        let skipped_bound = registry.counter("tklus_shard_skipped_bound_total");
        let degraded = registry.counter("tklus_shard_degraded_total");
        let failed = registry.counter("tklus_shard_failed_total");
        let latency = registry.histogram("tklus_shard_latency_us");
        Self { registry, queries, fanout, skipped_bound, degraded, failed, latency }
    }

    /// Snapshot of the router-level families only.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

impl Default for ShardMetrics {
    fn default() -> Self {
        Self::new()
    }
}
