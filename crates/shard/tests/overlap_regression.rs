//! Regression pin for the cover-boundary double-count bug class.
//!
//! If the same tweet is reachable through more than one shard — hand-built
//! overlapping shard sets, or any future plan/routing bug that assigns a
//! boundary cell to two shards — the Sum ranking must still count each
//! tweet **once**. The router guarantees this by deduplicating tweet ids
//! at the k-way merge. This suite builds the worst case: two shards that
//! each hold the *full* index (every tweet duplicated across shards), fans
//! out to both, and requires the merged answer to stay bitwise-identical
//! to the monolithic engine's. Without merge-side dedup, every Sum score
//! would double.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_geo::{encode, Point};
use tklus_index::build_index;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};
use tklus_shard::{ShardCompleteness, ShardPlan, ShardedEngine};

const WORDS: [&str; 8] = ["hotel", "pizza", "cafe", "museum", "sushi", "beach", "coffee", "club"];

#[derive(Debug, Clone)]
struct RawPost {
    user: u8,
    dlat: i8,
    dlon: i8,
    words: Vec<u8>,
}

fn arb_post() -> impl Strategy<Value = RawPost> {
    (0u8..10, -100i8..=100, -100i8..=100, proptest::collection::vec(0u8..WORDS.len() as u8, 1..5))
        .prop_map(|(user, dlat, dlon, words)| RawPost { user, dlat, dlon, words })
}

fn materialize(raw: &[RawPost]) -> Corpus {
    let base = Point::new_unchecked(43.68, -79.38);
    let posts: Vec<Post> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let loc = Point::new_unchecked(
                base.lat() + r.dlat as f64 * 0.0015,
                base.lon() + r.dlon as f64 * 0.002,
            );
            let text: String =
                r.words.iter().map(|&w| WORDS[w as usize]).collect::<Vec<_>>().join(" ");
            Post::original(TweetId(i as u64 + 1), UserId(r.user as u64), loc, text)
        })
        .collect();
    Corpus::new(posts).expect("sequential ids")
}

/// Two shards, both holding the FULL index, split at the median corpus
/// cell so realistic radii fan out to both.
fn overlapping_engine(corpus: &Corpus, config: &EngineConfig) -> ShardedEngine {
    let mut cells: Vec<_> = corpus
        .posts()
        .iter()
        .map(|p| encode(&p.location, config.index.geohash_len).unwrap())
        .collect();
    cells.sort();
    let boundary = cells[cells.len() / 2];
    let plan = ShardPlan::from_boundaries(vec![boundary]).unwrap();
    let (left, _) = build_index(corpus.posts(), &config.index);
    let (right, _) = build_index(corpus.posts(), &config.index);
    ShardedEngine::try_from_indexes(vec![left, right], plan, corpus, config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn duplicated_tweets_across_shards_are_counted_once(
        raw in proptest::collection::vec(arb_post(), 5..40),
        radius in 5.0f64..30.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        and_sem in any::<bool>(),
    ) {
        let corpus = materialize(&raw);
        let config = EngineConfig::default();
        let (mono, _) = TklusEngine::build(&corpus, &config);
        let sharded = overlapping_engine(&corpus, &config);
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let q = TklusQuery::new(
            Point::new_unchecked(43.68, -79.38),
            radius,
            keywords,
            k,
            semantics,
        ).unwrap();

        // Sum is where double-counting bites (a duplicated tweet would add
        // its ρ twice); Max must be idempotent under duplication.
        for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
            let want = mono.try_query(&q, ranking).unwrap();
            let got = sharded.query(&q, ranking);
            prop_assert_eq!(got.completeness, ShardCompleteness::Complete);
            prop_assert_eq!(got.users.len(), want.users.len(), "{:?}", ranking);
            for (g, w) in got.users.iter().zip(&want.users) {
                prop_assert_eq!(g.user, w.user, "{:?}", ranking);
                prop_assert_eq!(
                    g.score.to_bits(), w.score.to_bits(),
                    "duplicated tweet double-counted: {} vs {} ({:?})",
                    g.score, w.score, ranking
                );
            }
        }
    }
}

/// A deterministic minimal pin: one tweet, duplicated in both shards, with
/// a cover spanning both ranges — its Sum score must equal the monolithic
/// score exactly (the pre-fix behaviour doubled the ρ term).
#[test]
fn single_tweet_in_two_shards_scores_once() {
    let corpus = materialize(&[
        RawPost { user: 1, dlat: -50, dlon: -50, words: vec![0] },
        RawPost { user: 2, dlat: 50, dlon: 50, words: vec![0, 0] },
    ]);
    let config = EngineConfig::default();
    let (mono, _) = TklusEngine::build(&corpus, &config);
    let sharded = overlapping_engine(&corpus, &config);
    let q = TklusQuery::new(
        Point::new_unchecked(43.68, -79.38),
        30.0,
        vec![WORDS[0].to_string()],
        2,
        Semantics::Or,
    )
    .unwrap();
    let want = mono.try_query(&q, Ranking::Sum).unwrap();
    let got = sharded.query(&q, Ranking::Sum);
    assert!(got.fanout >= 2, "the cover must reach both overlapping shards");
    assert_eq!(got.users.len(), want.users.len());
    for (g, w) in got.users.iter().zip(&want.users) {
        assert_eq!(g.user, w.user);
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{} vs {}", g.score, w.score);
    }
}
