//! Round trip of the per-shard Definition 11 bound sidecars.
//!
//! `ShardedEngine::try_save_dir` persists each shard's bound table as a
//! `bounds.tsv` sidecar; `try_load_dir` restores it. The contract: a
//! reloaded engine prunes shards **exactly** like the engine that built
//! the tables — same per-shard upper bounds to the bit, same skip
//! decisions, same answers — rather than degrading to the loose
//! `max_tf × corpus-wide bound` fallback that loads without sidecars get.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::path::PathBuf;
use tklus_core::{BoundsMode, EngineConfig, Ranking};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Semantics, TklusQuery};
use tklus_shard::{ShardError, ShardedEngine, SHARD_BOUNDS_FILE};

const N_SHARDS: usize = 3;

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tklus-bounds-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn corpus() -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: 260,
        users: 50,
        vocab_size: 200,
        seed: 17,
        ..GenConfig::default()
    })
}

fn engine_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

fn queries(corpus: &Corpus) -> Vec<(TklusQuery, Ranking)> {
    generate_queries(corpus, &QueryConfig { per_bucket: 3, seed: 0xB0D5 })
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let mode = if i % 2 == 0 { BoundsMode::HotKeywords } else { BoundsMode::Global };
            let q = TklusQuery::new(spec.location, 18.0, spec.keywords, 5, semantics).unwrap();
            (q, Ranking::Max(mode))
        })
        .collect()
}

#[test]
fn saved_bound_tables_reload_bit_exactly() {
    let corpus = corpus();
    let built = ShardedEngine::try_build(&corpus, N_SHARDS, &engine_config()).unwrap();
    let dir = tmp_dir("roundtrip");
    built.try_save_dir(&dir).unwrap();
    for i in 0..built.n_shards() {
        assert!(
            dir.join(tklus_index::shard_dir_name(i)).join(SHARD_BOUNDS_FILE).exists(),
            "shard {i} is missing its bounds sidecar"
        );
    }

    let loaded = ShardedEngine::try_load_dir(&dir, &corpus, &engine_config()).unwrap();
    assert_eq!(loaded.n_shards(), built.n_shards());

    let qs = queries(&corpus);
    let mut nonzero_bounds = 0usize;
    for (q, ranking) in &qs {
        let Ranking::Max(mode) = *ranking else { unreachable!("queries() is Max-only") };
        for sid in 0..built.n_shards() {
            let b = built.shard_upper_bound(sid, q, mode);
            let l = loaded.shard_upper_bound(sid, q, mode);
            assert_eq!(
                b.to_bits(),
                l.to_bits(),
                "shard {sid}: reloaded bound {l} differs from built {b}"
            );
            nonzero_bounds += usize::from(b > 0.0);
        }
        let got = loaded.query(q, *ranking);
        let want = built.query(q, *ranking);
        assert_eq!(got.users, want.users, "reloaded answer diverged");
        assert_eq!(
            got.skipped_by_bound, want.skipped_by_bound,
            "reloaded engine made different skip decisions"
        );
    }
    assert!(nonzero_bounds > 0, "every bound was zero — the comparison is vacuous");
}

#[test]
fn missing_sidecar_falls_back_and_stays_sound() {
    let corpus = corpus();
    let built = ShardedEngine::try_build(&corpus, N_SHARDS, &engine_config()).unwrap();
    let dir = tmp_dir("fallback");
    built.try_save_dir(&dir).unwrap();
    // Strip shard 0's sidecar: it must load with the corpus-wide fallback,
    // which can only be looser (≥) than the exact table — never tighter.
    std::fs::remove_file(dir.join(tklus_index::shard_dir_name(0)).join(SHARD_BOUNDS_FILE)).unwrap();
    let loaded = ShardedEngine::try_load_dir(&dir, &corpus, &engine_config()).unwrap();
    let qs = queries(&corpus);
    for (q, ranking) in &qs {
        let Ranking::Max(mode) = *ranking else { unreachable!("queries() is Max-only") };
        assert!(
            loaded.shard_upper_bound(0, q, mode) >= built.shard_upper_bound(0, q, mode),
            "fallback bound tighter than the exact table — unsound"
        );
        // Answers stay correct either way; only pruning power changes.
        assert_eq!(loaded.query(q, *ranking).users, built.query(q, *ranking).users);
    }
}

#[test]
fn corrupt_sidecar_is_a_typed_error() {
    let corpus = corpus();
    let built = ShardedEngine::try_build(&corpus, N_SHARDS, &engine_config()).unwrap();
    let dir = tmp_dir("corrupt");
    built.try_save_dir(&dir).unwrap();
    let path = dir.join(tklus_index::shard_dir_name(1)).join(SHARD_BOUNDS_FILE);
    for bad in ["format\t1\nmax_tf\t3\nterm\tnope\tffff\n", "format\t9\nmax_tf\t3\n", "gibberish\n"]
    {
        std::fs::write(&path, bad).unwrap();
        match ShardedEngine::try_load_dir(&dir, &corpus, &engine_config()) {
            Err(ShardError::Persist(_)) => {}
            Err(other) => panic!("wrong error class for corrupt sidecar: {other}"),
            Ok(_) => panic!("corrupt sidecar {bad:?} loaded anyway"),
        }
    }
}
