//! Definition 11 shard-pruning soundness.
//!
//! The router may skip a shard only when the shard's upper bound proves it
//! cannot affect the top-k. Two properties pin that down:
//!
//! 1. **Domination** — for every shard and query, the per-shard upper
//!    bound is ≥ every user score that shard's engine actually produces
//!    (so no skip decision can ever rest on an underestimate).
//! 2. **No false skip** — the answer with shard skipping enabled is
//!    bitwise-identical to the answer with skipping disabled, and no
//!    skipped shard holds a user that belongs in the global top-k.
//!
//! Radii are fuzzed from "well inside one shard" to "covers every shard",
//! so query circles straddle shard-range boundaries in most cases.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_core::{BoundsMode, EngineConfig, Ranking};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};
use tklus_shard::ShardedEngine;

const WORDS: [&str; 8] = ["hotel", "pizza", "cafe", "museum", "sushi", "beach", "coffee", "club"];

#[derive(Debug, Clone)]
struct RawPost {
    user: u8,
    dlat: i8,
    dlon: i8,
    words: Vec<u8>,
    reply_to: Option<u8>,
}

fn arb_post() -> impl Strategy<Value = RawPost> {
    (
        0u8..10,
        -100i8..=100,
        -100i8..=100,
        proptest::collection::vec(0u8..WORDS.len() as u8, 1..5),
        proptest::option::of(0u8..40),
    )
        .prop_map(|(user, dlat, dlon, words, reply_to)| RawPost {
            user,
            dlat,
            dlon,
            words,
            reply_to,
        })
}

fn materialize(raw: &[RawPost]) -> Corpus {
    let base = Point::new_unchecked(43.68, -79.38);
    let posts: Vec<Post> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let id = TweetId(i as u64 + 1);
            let loc = Point::new_unchecked(
                base.lat() + r.dlat as f64 * 0.0015,
                base.lon() + r.dlon as f64 * 0.002,
            );
            let text: String =
                r.words.iter().map(|&w| WORDS[w as usize]).collect::<Vec<_>>().join(" ");
            match r.reply_to {
                Some(t) if (t as usize) < i => {
                    let target = TweetId(t as u64 + 1);
                    let target_user = UserId(raw[t as usize].user as u64);
                    Post::reply(id, UserId(r.user as u64), loc, text, target, target_user)
                }
                _ => Post::original(id, UserId(r.user as u64), loc, text),
            }
        })
        .collect();
    Corpus::new(posts).expect("sequential ids")
}

/// A query whose circle is offset from the corpus centre, so its cover
/// straddles shard-range boundaries rather than sitting in one shard.
fn straddling_query(
    off_lat: i8,
    off_lon: i8,
    radius: f64,
    keywords: Vec<String>,
    k: usize,
    semantics: Semantics,
) -> TklusQuery {
    let center =
        Point::new_unchecked(43.68 + off_lat as f64 * 0.0015, -79.38 + off_lon as f64 * 0.002);
    TklusQuery::new(center, radius, keywords, k, semantics).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property 1: the per-shard Definition 11 upper bound dominates every
    /// user score the shard's own engine produces — across both bounds
    /// modes, both semantics, and shard counts 2/4/16.
    #[test]
    fn shard_upper_bound_dominates_every_shard_score(
        raw in proptest::collection::vec(arb_post(), 5..45),
        off_lat in -100i8..=100,
        off_lon in -100i8..=100,
        radius in 1.0f64..30.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        n_shards in prop_oneof![Just(2usize), Just(4), Just(16)],
        and_sem in any::<bool>(),
    ) {
        let corpus = materialize(&raw);
        let engine = ShardedEngine::try_build(&corpus, n_shards, &EngineConfig::default())
            .expect("sharded build");
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let q = straddling_query(off_lat, off_lon, radius, keywords, k, semantics);

        for mode in [BoundsMode::Global, BoundsMode::HotKeywords] {
            for sid in 0..engine.n_shards() {
                let upper = engine.shard_upper_bound(sid, &q, mode);
                prop_assert!(upper.is_finite() && upper >= 0.0, "bound sane: {upper}");
                let local = engine
                    .shard_engine(sid)
                    .try_query(&q, Ranking::Max(mode))
                    .unwrap();
                for ru in &local.users {
                    prop_assert!(
                        ru.score <= upper,
                        "shard {sid} produced {} above its bound {upper} \
                         (mode {mode:?}, {semantics:?}, N={n_shards})",
                        ru.score
                    );
                }
            }
        }
    }

    /// Property 2: skipping never changes the answer. The skip-enabled
    /// router returns bitwise the skip-disabled router's top-k, and every
    /// skipped shard's own best answer sits at or below the final k-th
    /// score — i.e. a skipped shard never held a top-k member.
    #[test]
    fn bound_skip_never_drops_a_topk_member(
        raw in proptest::collection::vec(arb_post(), 5..45),
        off_lat in -100i8..=100,
        off_lon in -100i8..=100,
        radius in 1.0f64..30.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        n_shards in prop_oneof![Just(2usize), Just(4), Just(16)],
        and_sem in any::<bool>(),
        mode in prop_oneof![Just(BoundsMode::Global), Just(BoundsMode::HotKeywords)],
    ) {
        let corpus = materialize(&raw);
        let config = EngineConfig::default();
        let skipping = ShardedEngine::try_build(&corpus, n_shards, &config)
            .expect("sharded build");
        let exhaustive = ShardedEngine::try_build(&corpus, n_shards, &config)
            .expect("sharded build")
            .with_bound_skip(false);
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let q = straddling_query(off_lat, off_lon, radius, keywords, k, semantics);

        let fast = skipping.query(&q, Ranking::Max(mode));
        let full = exhaustive.query(&q, Ranking::Max(mode));

        prop_assert!(full.skipped_by_bound.is_empty(), "skip disabled");
        prop_assert_eq!(fast.users.len(), full.users.len());
        for (f, w) in fast.users.iter().zip(&full.users) {
            prop_assert_eq!(f.user, w.user, "skip changed the ranking");
            prop_assert_eq!(
                f.score.to_bits(), w.score.to_bits(),
                "skip changed a score: {} vs {}", f.score, w.score
            );
        }

        // Direct witness: each skipped shard's own best local score cannot
        // beat the final k-th (the full result has ≥ k users whenever any
        // shard could contribute one).
        if let Some(kth) = fast.users.last().map(|ru| ru.score) {
            if fast.users.len() == q.k {
                for sid in &fast.skipped_by_bound {
                    let local = skipping
                        .shard_engine(sid.0)
                        .try_query(&q, Ranking::Max(mode))
                        .unwrap();
                    if let Some(best) = local.users.first() {
                        prop_assert!(
                            best.score <= kth,
                            "skipped {sid} held {} beating the k-th {kth}",
                            best.score
                        );
                    }
                }
            }
        }
    }
}
