//! Shard-count invariance oracle.
//!
//! The scatter-gather contract is that sharding is invisible: for any
//! corpus, query, semantics, ranking, postings layout, cache temperature,
//! and shard count `N`, the sharded engine returns the monolithic engine's
//! ranked users **bitwise** (same users, same `f64` score bits, same
//! completeness verdict). This suite drives randomized cases through
//! `N ∈ {1, 2, 4, 16}` (overridable via `TKLUS_SHARD_N`, which the CI
//! shard matrix uses) against a monolithic reference engine:
//!
//! * Sum and Max (both bounds modes) × Or/And semantics,
//! * block and flat postings layouts,
//! * a cold then a warm query against cache-enabled sharded engines
//!   (the monolithic reference runs uncached — so the comparison also
//!   re-proves cache invisibility, now across the router),
//! * `max_cells`-budgeted queries, where the degraded verdicts must agree
//!   cell-for-cell.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_core::{BoundsMode, CacheConfig, Completeness, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_index::{IndexBuildConfig, PostingsFormat};
use tklus_model::{Corpus, Post, QueryBudget, Semantics, TklusQuery, TweetId, UserId};
use tklus_shard::{ShardCompleteness, ShardedEngine, ShardedOutcome};

const WORDS: [&str; 8] = ["hotel", "pizza", "cafe", "museum", "sushi", "beach", "coffee", "club"];

/// Shard counts under test: `TKLUS_SHARD_N` (comma-separated) or the full
/// default ladder.
fn shard_counts() -> Vec<usize> {
    match std::env::var("TKLUS_SHARD_N") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("TKLUS_SHARD_N must be comma-separated integers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 16],
    }
}

#[derive(Debug, Clone)]
struct RawPost {
    user: u8,
    dlat: i8,
    dlon: i8,
    words: Vec<u8>,
    reply_to: Option<u8>,
}

fn arb_post() -> impl Strategy<Value = RawPost> {
    (
        0u8..10,
        -100i8..=100,
        -100i8..=100,
        proptest::collection::vec(0u8..WORDS.len() as u8, 1..5),
        proptest::option::of(0u8..40),
    )
        .prop_map(|(user, dlat, dlon, words, reply_to)| RawPost {
            user,
            dlat,
            dlon,
            words,
            reply_to,
        })
}

fn materialize(raw: &[RawPost]) -> Corpus {
    let base = Point::new_unchecked(43.68, -79.38);
    let posts: Vec<Post> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let id = TweetId(i as u64 + 1);
            let loc = Point::new_unchecked(
                base.lat() + r.dlat as f64 * 0.0015,
                base.lon() + r.dlon as f64 * 0.002,
            );
            let text: String =
                r.words.iter().map(|&w| WORDS[w as usize]).collect::<Vec<_>>().join(" ");
            match r.reply_to {
                Some(t) if (t as usize) < i => {
                    let target = TweetId(t as u64 + 1);
                    let target_user = UserId(raw[t as usize].user as u64);
                    Post::reply(id, UserId(r.user as u64), loc, text, target, target_user)
                }
                _ => Post::original(id, UserId(r.user as u64), loc, text),
            }
        })
        .collect();
    Corpus::new(posts).expect("sequential ids")
}

/// Sharded engine config: caches on (so the warm re-query is a real cache
/// pass) over the given postings layout.
fn sharded_config(format: PostingsFormat) -> EngineConfig {
    EngineConfig {
        index: IndexBuildConfig { postings_format: format, ..Default::default() },
        caches: CacheConfig { cover: 8, postings: 32, thread: 64 },
        ..EngineConfig::default()
    }
}

/// Asserts the sharded outcome is the monolithic outcome, to the bit.
fn assert_bitwise(
    got: &ShardedOutcome,
    want_users: &[tklus_core::RankedUser],
    want_completeness: &Completeness,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.users.len(), want_users.len(), "len mismatch: {}", label);
    for (g, w) in got.users.iter().zip(want_users) {
        prop_assert_eq!(g.user, w.user, "user mismatch: {}", label);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "score bits: {} vs {} ({})",
            g.score,
            w.score,
            label
        );
    }
    match (got.completeness.clone(), want_completeness) {
        (ShardCompleteness::Complete, Completeness::Complete) => {}
        (
            ShardCompleteness::Degraded { failed_shards, cells_processed, cells_total },
            Completeness::Degraded { cells_processed: wp, cells_total: wt },
        ) => {
            prop_assert!(failed_shards.is_empty(), "no shard faulted: {}", label);
            prop_assert_eq!(cells_processed, *wp, "cells_processed: {}", label);
            prop_assert_eq!(cells_total, *wt, "cells_total: {}", label);
        }
        (g, w) => {
            return Err(TestCaseError::Fail(format!("completeness {g:?} vs {w:?} ({label})")))
        }
    }
    Ok(())
}

proptest! {
    // 36 corpora × 2 semantics × 3 rankings × |N| shard counts × 2 layouts
    // × cold+warm = ~3456 sharded-vs-monolithic comparisons at the default
    // ladder (864 distinct query cases).
    #![proptest_config(ProptestConfig::with_cases(36))]

    #[test]
    fn sharded_matches_monolithic_bitwise(
        raw in proptest::collection::vec(arb_post(), 5..45),
        radius in 2.0f64..25.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
    ) {
        let corpus = materialize(&raw);
        let (mono, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();

        let mut sharded: Vec<(usize, ShardedEngine, ShardedEngine)> = shard_counts()
            .into_iter()
            .map(|n| {
                let block = ShardedEngine::try_build(
                    &corpus, n, &sharded_config(PostingsFormat::default()),
                ).expect("sharded build");
                let flat = ShardedEngine::try_build(
                    &corpus, n, &sharded_config(PostingsFormat::Flat),
                ).expect("sharded flat build");
                (n, block, flat)
            })
            .collect();

        for semantics in [Semantics::Or, Semantics::And] {
            let q = TklusQuery::new(
                Point::new_unchecked(43.68, -79.38),
                radius,
                keywords.clone(),
                k,
                semantics,
            ).unwrap();
            for ranking in [
                Ranking::Sum,
                Ranking::Max(BoundsMode::Global),
                Ranking::Max(BoundsMode::HotKeywords),
            ] {
                let want = mono.try_query(&q, ranking).unwrap();
                for (n, block, flat) in &mut sharded {
                    let n = *n;
                    for (engine, layout) in [(&mut *block, "block"), (&mut *flat, "flat")] {
                        // Scatter-width invariance: the sequential loop
                        // (width 1) and the scoped-thread scatter (width 4)
                        // must both reproduce the monolithic answer bitwise.
                        for par in [1usize, 4] {
                            engine.set_scatter_parallelism(par);
                            for temp in ["cold", "warm"] {
                                let got = engine.query(&q, ranking);
                                let label = format!(
                                    "N={n} par={par} {layout} {temp} {ranking:?} {semantics:?}"
                                );
                                assert_bitwise(&got, &want.users, &want.completeness, &label)?;
                                prop_assert!(
                                    got.fanout + got.skipped_by_bound.len() <= engine.n_shards(),
                                    "fanout accounting: {}", label
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    // Budgeted queries: the degraded verdict (cells processed/total) must
    // agree between monolithic and every shard count — each shard walks
    // the same cover under the same cell cap, so the typed partials align.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn budgeted_degradation_is_shard_count_invariant(
        raw in proptest::collection::vec(arb_post(), 8..40),
        radius in 5.0f64..25.0,
        k in 1usize..5,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        max_cells in 1usize..6,
        and_sem in any::<bool>(),
    ) {
        let corpus = materialize(&raw);
        let (mono, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let mut q = TklusQuery::new(
            Point::new_unchecked(43.68, -79.38),
            radius,
            keywords,
            k,
            semantics,
        ).unwrap();
        q.budget = Some(QueryBudget { timeout_ms: None, max_cells: Some(max_cells) });

        for n in shard_counts() {
            let mut engine = ShardedEngine::try_build(
                &corpus, n, &sharded_config(PostingsFormat::default()),
            ).expect("sharded build");
            // Budgeted queries only run Sum (the Max bound-skip could skip
            // a shard the monolithic budget *would* have walked; the skip
            // proof assumes complete shard answers, so the router's Sum
            // path is the budget-faithful one to pin).
            let want = mono.try_query(&q, Ranking::Sum).unwrap();
            for par in [1usize, 4] {
                engine.set_scatter_parallelism(par);
                let got = engine.query(&q, Ranking::Sum);
                assert_bitwise(
                    &got, &want.users, &want.completeness, &format!("N={n} par={par} budget"),
                )?;
            }
        }
    }
}
