//! Property suite for the block-compressed postings codec (DESIGN.md §13).
//!
//! Two properties, both load-bearing for the serving path:
//!
//! 1. **Round-trip** — `encode ∘ decode` is the identity on any valid
//!    postings list, bitwise, across the shapes that stress the layout:
//!    empty lists, single postings, exact block boundaries (127/128/129),
//!    dense id runs (0-bit gaps), and sparse 64-bit-wide ids.
//! 2. **Hostile input never panics** — `decode` over arbitrary bytes,
//!    truncations of valid encodings, and single-byte corruptions of valid
//!    encodings either succeeds or returns a typed [`DecodeError`]; it
//!    must never panic, overflow, or loop. Set operations over whatever
//!    *does* decode must also be panic-free (the structural validation at
//!    decode time is what licenses the lazy block unpacking later).

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_index::{
    intersect_winnow_blocks, union_sum_blocks, BlockPostings, BlockScratch, PostingsList, BLOCK_LEN,
};

/// Sorted unique `(id, tf)` postings with shape diversity: gap widths from
/// dense (+1) to huge, tf widths from 0 bits to the full u32.
fn arb_postings() -> impl Strategy<Value = Vec<(u64, u32)>> {
    (
        proptest::collection::vec((1u64..1 << 40, 0u32..=u32::MAX), 0..400),
        // Occasionally start near u64::MAX to stress the id-width edge.
        any::<bool>(),
    )
        .prop_map(|(gaps_tfs, high)| {
            let mut id: u64 = if high { u64::MAX - (1 << 42) } else { 0 };
            let mut out = Vec::with_capacity(gaps_tfs.len());
            for (gap, tf) in gaps_tfs {
                let Some(next) = id.checked_add(gap) else { break };
                id = next;
                out.push((id, tf));
            }
            out
        })
}

fn to_list(postings: &[(u64, u32)]) -> PostingsList {
    postings.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Round-trip: encode → decode is bitwise identity (skip table, data
    /// payload, and the materialized postings all agree with the source).
    #[test]
    fn roundtrip_is_identity(postings in arb_postings()) {
        let list = to_list(&postings);
        let block = BlockPostings::from_list(&list);
        prop_assert_eq!(block.len(), postings.len());
        let bytes = block.encode();
        let (back, used) = BlockPostings::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len(), "decode consumes the whole encoding");
        prop_assert_eq!(back.len(), block.len());
        prop_assert_eq!(back.skips(), block.skips());
        let materialized = back.to_postings_list().expect("valid payloads materialize");
        prop_assert_eq!(
            materialized.postings(),
            list.postings(),
            "materialized postings must round-trip bitwise"
        );
        // Re-encoding the decoded value is byte-identical (canonical form).
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Truncating a valid encoding at any point yields a typed error or a
    /// still-consistent value — never a panic.
    #[test]
    fn truncation_never_panics(postings in arb_postings(), cut in 0usize..4096) {
        let bytes = BlockPostings::from_list(&to_list(&postings)).encode();
        let cut = cut % (bytes.len() + 1);
        match BlockPostings::decode(&bytes[..cut]) {
            Ok((b, _)) => exercise(&b),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Flipping any single byte of a valid encoding yields a typed error
    /// or a value whose lazy block reads are still panic-free.
    #[test]
    fn corruption_never_panics(
        postings in arb_postings(),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut bytes = BlockPostings::from_list(&to_list(&postings)).encode();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        match BlockPostings::decode(&bytes) {
            Ok((b, _)) => exercise(&b),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Arbitrary garbage decodes to a typed error or a consistent value.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match BlockPostings::decode(&bytes) {
            Ok((b, _)) => exercise(&b),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// The block set operations agree with the flat reference on any pair
    /// of lists (union tf-sums duplicates; winnowing keeps exactly the acc
    /// entries present in some list, adding their tfs). Tfs are capped so
    /// the cross-list sums stay in range — overflow behaviour is not the
    /// property under test here.
    #[test]
    fn set_ops_match_flat_reference(a in arb_postings(), b in arb_postings()) {
        let cap = |v: &[(u64, u32)]| v.iter().map(|&(id, tf)| (id, tf >> 3)).collect::<Vec<_>>();
        let (a, b) = (cap(&a), cap(&b));
        let (la, lb) = (to_list(&a), to_list(&b));
        let (ba, bb) = (BlockPostings::from_list(&la), BlockPostings::from_list(&lb));
        let mut scratch = BlockScratch::default();

        let mut union = Vec::new();
        union_sum_blocks(&[&ba, &bb], &mut scratch, &mut union).expect("valid blocks");
        let want = tklus_index::union_sum(&[std::sync::Arc::new(la), std::sync::Arc::new(lb)]);
        prop_assert_eq!(union.clone(), want);

        // Winnow the union against one side: every kept entry gains that
        // side's tf; entries absent from it drop out.
        let mut acc = union;
        intersect_winnow_blocks(&mut acc, &[&ba], &mut scratch).expect("valid blocks");
        prop_assert_eq!(acc.len(), a.len());
        for (&(id, tf), &(aid, atf)) in acc.iter().zip(&a) {
            prop_assert_eq!(id.0, aid);
            let b_tf = b.iter().find(|&&(bid, _)| bid == aid).map_or(0, |&(_, t)| t);
            prop_assert_eq!(tf, atf + atf + b_tf);
        }
    }
}

/// Drives every lazy access path of a decoded value: per-block reads via
/// the public set operations plus full materialization. Any corruption
/// that slipped past structural validation must surface as a typed error
/// here, not a panic.
fn exercise(block: &BlockPostings) {
    let mut scratch = BlockScratch::default();
    let mut out = Vec::new();
    if let Err(e) = block.to_postings_list() {
        let _ = e.to_string();
    }
    if let Err(e) = union_sum_blocks(&[block], &mut scratch, &mut out) {
        let _ = e.to_string();
        return;
    }
    let mut acc = out.clone();
    if let Err(e) = intersect_winnow_blocks(&mut acc, &[block], &mut scratch) {
        let _ = e.to_string();
    }
}

/// Fixed shapes the strategies could plausibly under-sample: empty, one
/// posting, and the exact block-boundary lengths.
#[test]
fn boundary_shapes_roundtrip() {
    for len in [0usize, 1, BLOCK_LEN - 1, BLOCK_LEN, BLOCK_LEN + 1, 3 * BLOCK_LEN] {
        let postings: Vec<(u64, u32)> = (0..len as u64).map(|i| (i * 7 + 1, i as u32)).collect();
        let list = to_list(&postings);
        let block = BlockPostings::from_list(&list);
        let (back, _) = BlockPostings::decode(&block.encode()).expect("roundtrip");
        let materialized = back.to_postings_list().expect("valid payloads materialize");
        assert_eq!(materialized.postings(), list.postings(), "len={len}");
        assert_eq!(back.num_blocks(), len.div_ceil(BLOCK_LEN), "len={len}");
    }
}
