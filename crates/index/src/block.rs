//! Block-compressed postings: fixed-size blocks of bit-packed postings
//! with per-block skip metadata (DESIGN.md §13).
//!
//! The flat layout ([`crate::PostingsList`]) decodes a whole list — one
//! varint branch per byte — before the first candidate can be formed. The
//! block layout splits a list into [`BLOCK_LEN`]-posting blocks, each
//! described by a skip entry (first/last id, max tf, payload extent) that
//! is decoded up front, while the payload — frame-of-reference bit-packed
//! id deltas and term frequencies at a fixed width per block — is unpacked
//! lazily, block by block, into reusable scratch buffers. Set operations
//! gallop over the skip entries and unpack only blocks that can actually
//! contribute: a union bulk-copies blocks whose id range does not overlap
//! any other cursor, and an intersection touches only blocks whose
//! `[first_id, last_id]` range contains a surviving candidate.
//!
//! The fixed-width unpack kernel is branchless per value (a shift, a mask,
//! and a table-free accumulator refill) — the SIMD-friendly shape — in
//! contrast to the flat varint loop whose branch-per-byte serializes the
//! decode.
//!
//! Decoding never panics: every structural invariant (block sizing, skip
//! monotonicity, payload extents, reconstructed-id agreement with the skip
//! entry) is checked and surfaces as a typed
//! [`DecodeError`](crate::posting::DecodeError).

use crate::posting::{read_varint, write_varint, DecodeError, Posting, PostingsList};
use tklus_model::TweetId;

/// Postings per block. Every block of a list holds exactly this many
/// postings except the last, which holds the remainder (≥ 1).
pub const BLOCK_LEN: usize = 128;

/// On-DFS encoding of postings lists: the original delta-varint stream or
/// the block-compressed layout of DESIGN.md §13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostingsFormat {
    /// One delta-varint pair per posting, decoded front to back
    /// ([`PostingsList::encode`]). The pre-block layout, kept as the
    /// differential baseline and for persisted-v1 compatibility.
    Flat,
    /// [`BLOCK_LEN`]-posting blocks with skip metadata and bit-packed
    /// payloads ([`BlockPostings::encode`]). The default.
    #[default]
    Block,
}

impl PostingsFormat {
    /// The flag/meta spelling (`"flat"` / `"block"`).
    pub fn as_str(self) -> &'static str {
        match self {
            PostingsFormat::Flat => "flat",
            PostingsFormat::Block => "block",
        }
    }
}

impl std::fmt::Display for PostingsFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PostingsFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(PostingsFormat::Flat),
            "block" => Ok(PostingsFormat::Block),
            other => Err(format!("unknown postings format {other:?} (expected flat|block)")),
        }
    }
}

/// Skip metadata for one block: enough to decide, without unpacking the
/// payload, whether the block can contain a given id (`first_id..=last_id`)
/// and what the largest term frequency inside is (`max_tf`, the future
/// scoring-bound surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSkip {
    /// Smallest (first) tweet id in the block.
    pub first_id: u64,
    /// Largest (last) tweet id in the block.
    pub last_id: u64,
    /// Largest term frequency in the block.
    pub max_tf: u32,
    /// Postings in the block (1..=[`BLOCK_LEN`]; only the last block of a
    /// list may hold fewer than [`BLOCK_LEN`]).
    pub count: u32,
    /// Byte offset of the block's payload within the payload region.
    pub offset: u32,
    /// Byte length of the block's payload.
    pub len: u32,
}

/// A postings list in the block-compressed layout: a decoded skip table
/// over a still-packed payload region.
///
/// Construction is either [`from_postings`](Self::from_postings) (index
/// build) or [`decode`](Self::decode) (DFS read); both leave payloads
/// packed until a set operation asks for a specific block via
/// [`read_block`](Self::read_block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPostings {
    count: usize,
    skips: Vec<BlockSkip>,
    data: Vec<u8>,
}

/// Bytes needed to pack `count` values of `bits` width.
fn packed_len(count: usize, bits: u32) -> usize {
    ((count as u64 * bits as u64).div_ceil(8)) as usize
}

/// Width in bits of the largest value (0 for an all-zero slice).
fn width_of(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Packs `values` (each < 2^bits) into `out`, little-endian bit order.
fn pack_into(values: &[u64], bits: u32, out: &mut Vec<u8>) {
    debug_assert!(bits <= 64);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        debug_assert!(bits == 64 || v < (1u64 << bits), "value {v} exceeds {bits} bits");
        acc |= (v as u128) << nbits;
        nbits += bits;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Unpacks `count` values of `bits` width from `bytes` into `out`
/// (appending). `bytes` must hold exactly `packed_len(count, bits)` bytes —
/// the caller has already validated the extent. The inner loop is
/// branch-free per value: refill the accumulator, shift, mask.
fn unpack_into(bytes: &[u8], count: usize, bits: u32, out: &mut Vec<u64>) {
    debug_assert_eq!(bytes.len(), packed_len(count, bits));
    if bits == 0 {
        out.resize(out.len() + count, 0);
        return;
    }
    let mask: u128 = if bits == 64 { u64::MAX as u128 } else { (1u128 << bits) - 1 };
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mut pos = 0usize;
    for _ in 0..count {
        while nbits < bits {
            acc |= (bytes[pos] as u128) << nbits;
            pos += 1;
            nbits += 8;
        }
        out.push((acc & mask) as u64);
        acc >>= bits;
        nbits -= bits;
    }
}

impl BlockPostings {
    /// Builds the block layout from postings sorted by strictly increasing
    /// id (the [`PostingsList`] invariant).
    pub fn from_postings(postings: &[Posting]) -> Self {
        debug_assert!(
            postings.windows(2).all(|w| w[0].id < w[1].id),
            "postings must be sorted with unique ids"
        );
        let mut skips = Vec::with_capacity(postings.len().div_ceil(BLOCK_LEN));
        let mut data = Vec::new();
        let mut deltas: Vec<u64> = Vec::with_capacity(BLOCK_LEN);
        let mut tfs: Vec<u64> = Vec::with_capacity(BLOCK_LEN);
        for chunk in postings.chunks(BLOCK_LEN) {
            let first_id = chunk[0].id.0;
            let last_id = chunk[chunk.len() - 1].id.0;
            let max_tf = chunk.iter().map(|p| p.tf).max().unwrap_or(0);
            deltas.clear();
            tfs.clear();
            // Successive gaps minus one (ids strictly increase), so dense
            // runs pack to zero bits.
            deltas.extend(chunk.windows(2).map(|w| w[1].id.0 - w[0].id.0 - 1));
            tfs.extend(chunk.iter().map(|p| p.tf as u64));
            let id_bits = width_of(deltas.iter().copied().max().unwrap_or(0));
            let tf_bits = width_of(max_tf as u64);
            let offset = data.len() as u32;
            data.push(id_bits as u8);
            data.push(tf_bits as u8);
            pack_into(&deltas, id_bits, &mut data);
            pack_into(&tfs, tf_bits, &mut data);
            skips.push(BlockSkip {
                first_id,
                last_id,
                max_tf,
                count: chunk.len() as u32,
                offset,
                len: data.len() as u32 - offset,
            });
        }
        Self { count: postings.len(), skips, data }
    }

    /// [`Self::from_postings`] over a [`PostingsList`].
    pub fn from_list(list: &PostingsList) -> Self {
        Self::from_postings(list.postings())
    }

    /// Total postings across all blocks.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The skip table, one entry per block, in id order.
    pub fn skips(&self) -> &[BlockSkip] {
        &self.skips
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.skips.len()
    }

    /// Smallest id in the list (`None` when empty).
    pub fn first_id(&self) -> Option<u64> {
        self.skips.first().map(|s| s.first_id)
    }

    /// Largest id in the list (`None` when empty).
    pub fn last_id(&self) -> Option<u64> {
        self.skips.last().map(|s| s.last_id)
    }

    /// Serializes to the on-DFS byte format (DESIGN.md §13):
    ///
    /// ```text
    /// varint count                      total postings
    /// varint n_blocks                   = ceil(count / BLOCK_LEN)
    /// n_blocks × skip entry:
    ///   varint first_delta              first_id − previous last_id
    ///   varint span                     last_id − first_id
    ///   varint max_tf
    ///   varint payload_len
    /// payloads, concatenated:
    ///   u8 id_bits  u8 tf_bits
    ///   packed id gaps (count−1 values of id_bits each)
    ///   packed tfs   (count values of tf_bits each)
    /// ```
    ///
    /// Payload offsets are cumulative sums of `payload_len`, so they are
    /// never stored; per-block counts are implied by the fixed
    /// [`BLOCK_LEN`] sizing rule.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.skips.len() * 8 + self.data.len());
        write_varint(&mut out, self.count as u64);
        if self.count == 0 {
            return out;
        }
        write_varint(&mut out, self.skips.len() as u64);
        let mut prev_last = 0u64;
        for skip in &self.skips {
            write_varint(&mut out, skip.first_id - prev_last);
            write_varint(&mut out, skip.last_id - skip.first_id);
            write_varint(&mut out, skip.max_tf as u64);
            write_varint(&mut out, skip.len as u64);
            prev_last = skip.last_id;
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Decodes bytes produced by [`encode`](Self::encode), returning the
    /// list and the bytes consumed. Validates the whole structure — block
    /// sizing, skip monotonicity, payload extents and per-block header
    /// arithmetic — but leaves payload *values* packed; adversarial values
    /// are caught by [`read_block`](Self::read_block), which is equally
    /// panic-free.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let mut pos = 0usize;
        let count = read_varint(bytes, &mut pos)? as usize;
        if count == 0 {
            return Ok((Self { count: 0, skips: Vec::new(), data: Vec::new() }, pos));
        }
        let n_blocks = read_varint(bytes, &mut pos)? as usize;
        if n_blocks != count.div_ceil(BLOCK_LEN) {
            return Err(DecodeError::BadBlockHeader("block count disagrees with posting count"));
        }
        let mut skips = Vec::with_capacity(n_blocks);
        let mut prev_last = 0u64;
        let mut offset = 0u64;
        for b in 0..n_blocks {
            let first_delta = read_varint(bytes, &mut pos)?;
            let span = read_varint(bytes, &mut pos)?;
            let max_tf = read_varint(bytes, &mut pos)?;
            let len = read_varint(bytes, &mut pos)?;
            // Later blocks start strictly after the previous block ends.
            if b > 0 && first_delta == 0 {
                return Err(DecodeError::NonMonotonic);
            }
            let first_id = prev_last.checked_add(first_delta).ok_or(DecodeError::Overflow)?;
            let last_id = first_id.checked_add(span).ok_or(DecodeError::Overflow)?;
            let max_tf = u32::try_from(max_tf).map_err(|_| DecodeError::Overflow)?;
            let len = u32::try_from(len).map_err(|_| DecodeError::Overflow)?;
            let block_count = if b + 1 < n_blocks { BLOCK_LEN } else { count - b * BLOCK_LEN };
            if block_count == 1 && span != 0 {
                return Err(DecodeError::BadBlockHeader("single-posting block with nonzero span"));
            }
            if block_count > 1 && span == 0 {
                return Err(DecodeError::BadBlockHeader("multi-posting block with zero span"));
            }
            skips.push(BlockSkip {
                first_id,
                last_id,
                max_tf,
                count: block_count as u32,
                offset: u32::try_from(offset).map_err(|_| DecodeError::Overflow)?,
                len,
            });
            offset = offset.checked_add(len as u64).ok_or(DecodeError::Overflow)?;
            prev_last = last_id;
        }
        let data_len = offset as usize;
        let payload = bytes.get(pos..pos + data_len).ok_or(DecodeError::Truncated)?;
        // Per-block header arithmetic: the recorded payload length must be
        // exactly what the widths and counts imply, so a skip entry can
        // never point a read past its block.
        for skip in &skips {
            let head = payload
                .get(skip.offset as usize..skip.offset as usize + 2)
                .ok_or(DecodeError::Truncated)?;
            let (id_bits, tf_bits) = (head[0] as u32, head[1] as u32);
            if id_bits > 64 || tf_bits > 32 {
                return Err(DecodeError::BadBlockHeader("packed width out of range"));
            }
            let n = skip.count as usize;
            let expect = 2 + packed_len(n - 1, id_bits) + packed_len(n, tf_bits);
            if skip.len as usize != expect {
                return Err(DecodeError::BadBlockHeader("payload length disagrees with widths"));
            }
        }
        let data = payload.to_vec();
        pos += data_len;
        Ok((Self { count, skips, data }, pos))
    }

    /// Unpacks block `b` into `ids`/`tfs` (cleared first). Validates that
    /// the reconstructed ids are strictly increasing, stay within `u64`,
    /// and land exactly on the skip entry's `last_id`, and that the skip's
    /// `max_tf` matches the block's actual maximum — so a decoded block is
    /// always mutually consistent with the metadata the set operations
    /// trusted to skip it.
    pub fn read_block(
        &self,
        b: usize,
        ids: &mut Vec<u64>,
        tfs: &mut Vec<u32>,
    ) -> Result<(), DecodeError> {
        let skip = self.skips[b];
        let n = skip.count as usize;
        let payload = &self.data[skip.offset as usize..(skip.offset + skip.len) as usize];
        let (id_bits, tf_bits) = (payload[0] as u32, payload[1] as u32);
        let gaps_len = packed_len(n - 1, id_bits);
        ids.clear();
        tfs.clear();
        ids.push(skip.first_id);
        {
            // Reuse `tfs`'s backing? No — gaps are u64; unpack into a local
            // then fold. The fold is the frame-of-reference reconstruction.
            let mut gaps: Vec<u64> = Vec::with_capacity(n.saturating_sub(1));
            unpack_into(&payload[2..2 + gaps_len], n - 1, id_bits, &mut gaps);
            let mut prev = skip.first_id;
            for gap in gaps {
                let id = prev
                    .checked_add(gap)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(DecodeError::Overflow)?;
                ids.push(id);
                prev = id;
            }
            if prev != skip.last_id {
                return Err(DecodeError::BadBlockHeader("ids do not end on skip last_id"));
            }
        }
        let mut raw_tfs: Vec<u64> = Vec::with_capacity(n);
        unpack_into(&payload[2 + gaps_len..], n, tf_bits, &mut raw_tfs);
        let mut seen_max = 0u32;
        for tf in raw_tfs {
            let tf = u32::try_from(tf).map_err(|_| DecodeError::Overflow)?;
            seen_max = seen_max.max(tf);
            tfs.push(tf);
        }
        if seen_max != skip.max_tf {
            return Err(DecodeError::BadBlockHeader("max_tf disagrees with block contents"));
        }
        Ok(())
    }

    /// Fully unpacks into a [`PostingsList`] (the flat in-memory shape) —
    /// the compatibility bridge for flat-pipeline consumers of a
    /// block-format index.
    pub fn to_postings_list(&self) -> Result<PostingsList, DecodeError> {
        let mut ids = Vec::new();
        let mut tfs = Vec::new();
        let mut postings = Vec::with_capacity(self.count);
        for b in 0..self.num_blocks() {
            self.read_block(b, &mut ids, &mut tfs)?;
            postings.extend(ids.iter().zip(&tfs).map(|(&id, &tf)| Posting { id: TweetId(id), tf }));
        }
        Ok(PostingsList::new(postings))
    }
}

/// Reusable scratch for block set operations: per-cursor unpack buffers
/// recycled across queries so the hot path stops allocating per block.
/// One scratch serves one operation at a time (`&mut` threading); the
/// engine pools them per query.
#[derive(Debug, Default)]
pub struct BlockScratch {
    bufs: Vec<(Vec<u64>, Vec<u32>)>,
}

impl BlockScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_buf(&mut self) -> (Vec<u64>, Vec<u32>) {
        self.bufs.pop().unwrap_or_default()
    }

    fn give_buf(&mut self, buf: (Vec<u64>, Vec<u32>)) {
        if self.bufs.len() < 64 {
            self.bufs.push(buf);
        }
    }
}

/// A read cursor over one block list: the current block unpacked into a
/// scratch buffer, plus a position within it.
struct Cursor<'a> {
    list: &'a BlockPostings,
    block: usize,
    pos: usize,
    ids: Vec<u64>,
    tfs: Vec<u32>,
}

impl<'a> Cursor<'a> {
    fn new(list: &'a BlockPostings, scratch: &mut BlockScratch) -> Result<Self, DecodeError> {
        debug_assert!(!list.is_empty());
        let (ids, tfs) = scratch.take_buf();
        let mut cur = Self { list, block: 0, pos: 0, ids, tfs };
        cur.list.read_block(0, &mut cur.ids, &mut cur.tfs)?;
        Ok(cur)
    }

    fn current(&self) -> (u64, u32) {
        (self.ids[self.pos], self.tfs[self.pos])
    }

    /// Id range left in the current block from the cursor position on.
    fn block_last(&self) -> u64 {
        self.list.skips[self.block].last_id
    }

    /// Advances one posting; returns false when the list is exhausted.
    fn advance(&mut self) -> Result<bool, DecodeError> {
        self.pos += 1;
        if self.pos < self.ids.len() {
            return Ok(true);
        }
        self.next_block()
    }

    /// Moves to the start of the next block; returns false when exhausted.
    fn next_block(&mut self) -> Result<bool, DecodeError> {
        self.block += 1;
        self.pos = 0;
        if self.block >= self.list.num_blocks() {
            return Ok(false);
        }
        self.list.read_block(self.block, &mut self.ids, &mut self.tfs)?;
        Ok(true)
    }

    /// Appends the rest of the current block to `out` and moves to the next
    /// block; returns false when the list is exhausted.
    fn drain_block_into(&mut self, out: &mut Vec<(TweetId, u32)>) -> Result<bool, DecodeError> {
        out.extend(
            self.ids[self.pos..]
                .iter()
                .zip(&self.tfs[self.pos..])
                .map(|(&id, &tf)| (TweetId(id), tf)),
        );
        self.next_block()
    }

    fn into_buf(self, scratch: &mut BlockScratch) {
        scratch.give_buf((self.ids, self.tfs));
    }
}

/// Union of block lists with term frequencies summed on shared ids — the
/// block-layout counterpart of [`crate::union_sum`], identical output.
///
/// A k-way merge over lazy cursors with two fast paths that make the
/// common disjoint case (one keyword's lists across cover cells: a tweet
/// lives in exactly one cell, so the lists never share an id) close to a
/// sequence of block copies:
/// * one live cursor left → drain it block-wise, and
/// * the minimum cursor's whole remaining block sits below every other
///   cursor's current id → copy the block without per-element compares.
///
/// Output lands in `out` (cleared first); `scratch` supplies the unpack
/// buffers.
pub fn union_sum_blocks(
    lists: &[&BlockPostings],
    scratch: &mut BlockScratch,
    out: &mut Vec<(TweetId, u32)>,
) -> Result<(), DecodeError> {
    out.clear();
    out.reserve(lists.iter().map(|l| l.len()).sum());
    let mut cursors: Vec<Cursor<'_>> = Vec::with_capacity(lists.len());
    for list in lists {
        if !list.is_empty() {
            cursors.push(Cursor::new(list, scratch)?);
        }
    }
    while !cursors.is_empty() {
        if cursors.len() == 1 {
            let mut cur = cursors.pop().expect("one cursor");
            while cur.drain_block_into(out)? {}
            cur.into_buf(scratch);
            break;
        }
        // Find the minimum current id and the runner-up across cursors.
        let mut min_id = u64::MAX;
        let mut second = u64::MAX;
        for cur in &cursors {
            let (id, _) = cur.current();
            if id < min_id {
                second = min_id;
                min_id = id;
            } else if id < second {
                second = id;
            }
        }
        if min_id < second {
            // Exactly one cursor owns min_id.
            let i = cursors
                .iter()
                .position(|c| c.current().0 == min_id)
                .expect("a cursor holds the minimum");
            let cur = &mut cursors[i];
            let alive = if cur.block_last() < second {
                // The whole rest of this block sits before every other
                // cursor: bulk-copy it.
                cur.drain_block_into(out)?
            } else {
                let (id, tf) = cur.current();
                out.push((TweetId(id), tf));
                cur.advance()?
            };
            if !alive {
                cursors.swap_remove(i).into_buf(scratch);
            }
        } else {
            // Shared id: sum tfs across every cursor holding it. The sum
            // saturates — builder-produced tfs are tiny (words per tweet),
            // so saturation is unreachable from a real index, but hostile
            // payloads must not be able to panic a debug build.
            let mut tf_sum = 0u32;
            let mut i = 0;
            while i < cursors.len() {
                if cursors[i].current().0 == min_id {
                    tf_sum = tf_sum.saturating_add(cursors[i].current().1);
                    if cursors[i].advance()? {
                        i += 1;
                    } else {
                        cursors.swap_remove(i).into_buf(scratch);
                    }
                } else {
                    i += 1;
                }
            }
            out.push((TweetId(min_id), tf_sum));
        }
    }
    Ok(())
}

/// First block index at or after `from` whose `last_id` reaches `id`
/// (galloping: exponential probe then binary search within the window).
/// Returns `skips.len()` when every block ends before `id`.
fn seek_block(skips: &[BlockSkip], from: usize, id: u64) -> usize {
    if from >= skips.len() || skips[from].last_id >= id {
        return from;
    }
    let mut step = 1usize;
    let mut lo = from;
    while lo + step < skips.len() && skips[lo + step].last_id < id {
        lo += step;
        step *= 2;
    }
    let hi = (lo + step + 1).min(skips.len());
    lo + 1 + skips[lo + 1..hi].partition_point(|s| s.last_id < id)
}

/// Winnows sorted candidates `acc` against one keyword's block lists: a
/// candidate survives only if some list contains its id, and its tf grows
/// by the sum of every matching list's tf — exactly the flat pipeline's
/// per-keyword [`crate::union_sum`] followed by [`crate::intersect_sum`],
/// without materializing the keyword's union. Blocks are located by
/// galloping over skip entries and unpacked only when their id range
/// actually contains a surviving candidate.
pub fn intersect_winnow_blocks(
    acc: &mut Vec<(TweetId, u32)>,
    lists: &[&BlockPostings],
    scratch: &mut BlockScratch,
) -> Result<(), DecodeError> {
    struct ListState<'a> {
        list: &'a BlockPostings,
        /// Next block that could contain the (ascending) candidate ids.
        block: usize,
        /// Which block the buffers currently hold, if any.
        loaded: Option<usize>,
        ids: Vec<u64>,
        tfs: Vec<u32>,
    }
    let mut states: Vec<ListState<'_>> = lists
        .iter()
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (ids, tfs) = scratch.take_buf();
            ListState { list: l, block: 0, loaded: None, ids, tfs }
        })
        .collect();
    let mut w = 0usize;
    'cands: for r in 0..acc.len() {
        let (tid, tf) = acc[r];
        let mut matched = false;
        let mut tf_sum = tf;
        for st in &mut states {
            let skips = st.list.skips();
            st.block = seek_block(skips, st.block, tid.0);
            if st.block >= skips.len() {
                continue;
            }
            if skips[st.block].first_id > tid.0 {
                continue;
            }
            if st.loaded != Some(st.block) {
                st.list.read_block(st.block, &mut st.ids, &mut st.tfs)?;
                st.loaded = Some(st.block);
            }
            if let Ok(i) = st.ids.binary_search(&tid.0) {
                matched = true;
                // Saturating for the same reason as union_sum_blocks:
                // hostile tfs must not panic a debug build.
                tf_sum = tf_sum.saturating_add(st.tfs[i]);
            }
        }
        if matched {
            acc[w] = (tid, tf_sum);
            w += 1;
        } else if states.iter().all(|st| st.block >= st.list.num_blocks()) {
            // Every list is exhausted; no later candidate can match.
            acc.truncate(w);
            for st in states {
                scratch.give_buf((st.ids, st.tfs));
            }
            break 'cands;
        }
    }
    acc.truncate(w.min(acc.len()));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;

    fn list(pairs: &[(u64, u32)]) -> BlockPostings {
        let flat: PostingsList = pairs.iter().copied().collect();
        BlockPostings::from_list(&flat)
    }

    fn pairs_of(bp: &BlockPostings) -> Vec<(u64, u32)> {
        bp.to_postings_list().unwrap().postings().iter().map(|p| (p.id.0, p.tf)).collect()
    }

    #[test]
    fn pack_unpack_roundtrip_widths() {
        for bits in [0u32, 1, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let max = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let values: Vec<u64> =
                (0..130u64).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & max).collect();
            let mut bytes = Vec::new();
            pack_into(&values, bits, &mut bytes);
            assert_eq!(bytes.len(), packed_len(values.len(), bits));
            let mut back = Vec::new();
            unpack_into(&bytes, values.len(), bits, &mut back);
            assert_eq!(back, values, "bits={bits}");
        }
    }

    #[test]
    fn roundtrip_various_shapes() {
        let shapes: Vec<Vec<(u64, u32)>> = vec![
            vec![],
            vec![(0, 0)],
            vec![(7, 9)],
            (0..127u64).map(|i| (i * 3 + 1, (i % 7) as u32)).collect(),
            (0..128u64).map(|i| (i, 1)).collect(),
            (0..129u64).map(|i| (i * 1000, (i % 100) as u32)).collect(),
            (0..1000u64).map(|i| (1_000_000 + i, (i % 5) as u32 + 1)).collect(),
            vec![(u64::MAX - 1, u32::MAX), (u64::MAX, 0)],
        ];
        for pairs in shapes {
            let bp = list(&pairs);
            assert_eq!(bp.len(), pairs.len());
            let bytes = bp.encode();
            let (back, consumed) = BlockPostings::decode(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(back, bp);
            assert_eq!(pairs_of(&back), pairs);
        }
    }

    #[test]
    fn block_sizing_rule() {
        let bp = list(&(0..300u64).map(|i| (i * 2, 1)).collect::<Vec<_>>());
        assert_eq!(bp.num_blocks(), 3);
        assert_eq!(bp.skips()[0].count, 128);
        assert_eq!(bp.skips()[1].count, 128);
        assert_eq!(bp.skips()[2].count, 44);
        assert_eq!(bp.first_id(), Some(0));
        assert_eq!(bp.last_id(), Some(598));
        // Skip invariants: monotone, non-overlapping.
        for w in bp.skips().windows(2) {
            assert!(w[0].last_id < w[1].first_id);
        }
    }

    #[test]
    fn dense_blocks_pack_small() {
        // Consecutive ids, tf=1 → 0-bit gaps and 1-bit tfs.
        let bp = list(&(0..1024u64).map(|i| (5_000 + i, 1)).collect::<Vec<_>>());
        let bytes = bp.encode();
        // 8 blocks × (2 header bytes + 0 gap bytes + 16 tf bytes) plus
        // skip varints: far below even one byte per posting.
        assert!(bytes.len() < 400, "encoded to {} bytes", bytes.len());
    }

    #[test]
    fn decode_leaves_trailing_bytes() {
        let bp = list(&[(10, 1), (20, 2)]);
        let mut bytes = bp.encode();
        let len = bytes.len();
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        let (back, consumed) = BlockPostings::decode(&bytes).unwrap();
        assert_eq!(consumed, len);
        assert_eq!(back, bp);
    }

    #[test]
    fn truncation_is_typed_never_panics() {
        let bp = list(&(0..300u64).map(|i| (i * 5 + 3, (i % 9) as u32)).collect::<Vec<_>>());
        let bytes = bp.encode();
        for cut in 0..bytes.len() {
            match BlockPostings::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok((_, consumed)) => {
                    panic!("truncated to {cut} of {} decoded {consumed} bytes", bytes.len())
                }
            }
        }
    }

    #[test]
    fn corrupt_headers_are_typed() {
        let bp = list(&(0..200u64).map(|i| (i * 3, 2)).collect::<Vec<_>>());
        let bytes = bp.encode();
        // Flip every byte position once; decode (plus a full read of every
        // block on success) must never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            if let Ok((decoded, _)) = BlockPostings::decode(&bad) {
                let mut ids = Vec::new();
                let mut tfs = Vec::new();
                for b in 0..decoded.num_blocks() {
                    let _ = decoded.read_block(b, &mut ids, &mut tfs);
                }
            }
        }
    }

    #[test]
    fn union_matches_flat_union() {
        let a = vec![(1u64, 2u32), (3, 1), (5, 4), (300, 1)];
        let b = vec![(3u64, 2u32), (4, 1), (600, 9)];
        let c: Vec<(u64, u32)> = (0..400u64).map(|i| (i * 2 + 1, 1)).collect();
        let flat: Vec<PostingsList> =
            [&a, &b, &c].iter().map(|p| p.iter().copied().collect()).collect();
        let want: Vec<(TweetId, u32)> = crate::posting::union_sum(&flat);
        let blocks: Vec<BlockPostings> = [&a, &b, &c].iter().map(|p| list(p)).collect();
        let refs: Vec<&BlockPostings> = blocks.iter().collect();
        let mut scratch = BlockScratch::new();
        let mut got = Vec::new();
        union_sum_blocks(&refs, &mut scratch, &mut got).unwrap();
        assert_eq!(got, want);
        // Scratch reuse across calls changes nothing.
        let mut again = Vec::new();
        union_sum_blocks(&refs, &mut scratch, &mut again).unwrap();
        assert_eq!(again, want);
    }

    #[test]
    fn union_edge_cases() {
        let mut scratch = BlockScratch::new();
        let mut out = vec![(TweetId(99), 9)];
        union_sum_blocks(&[], &mut scratch, &mut out).unwrap();
        assert!(out.is_empty(), "output is cleared");
        let empty = list(&[]);
        let single = list(&[(7, 9)]);
        union_sum_blocks(&[&empty, &single], &mut scratch, &mut out).unwrap();
        assert_eq!(out, vec![(TweetId(7), 9)]);
    }

    #[test]
    fn winnow_matches_flat_intersect() {
        // Keyword A: two disjoint cell lists; keyword B: one long list.
        let a1: Vec<(u64, u32)> = (0..150u64).map(|i| (i * 3, 1)).collect();
        let a2: Vec<(u64, u32)> = (0..150u64).map(|i| (1000 + i * 3, 2)).collect();
        let b: Vec<(u64, u32)> = (0..500u64).map(|i| (i * 2, 3)).collect();
        let a_lists: Vec<PostingsList> =
            [&a1, &a2].iter().map(|p| p.iter().copied().collect()).collect();
        let b_lists: Vec<PostingsList> = vec![b.iter().copied().collect()];
        let groups = vec![crate::posting::union_sum(&a_lists), crate::posting::union_sum(&b_lists)];
        let want = crate::posting::intersect_sum(&groups);

        let mut scratch = BlockScratch::new();
        let a_blocks = [list(&a1), list(&a2)];
        let b_blocks = [list(&b)];
        let mut acc = Vec::new();
        union_sum_blocks(&a_blocks.iter().collect::<Vec<_>>(), &mut scratch, &mut acc).unwrap();
        intersect_winnow_blocks(&mut acc, &b_blocks.iter().collect::<Vec<_>>(), &mut scratch)
            .unwrap();
        assert_eq!(acc, want);
    }

    #[test]
    fn winnow_empty_and_disjoint() {
        let mut scratch = BlockScratch::new();
        let b = list(&[(2, 1), (4, 1)]);
        let mut acc = vec![(TweetId(1), 1), (TweetId(5), 1)];
        intersect_winnow_blocks(&mut acc, &[&b], &mut scratch).unwrap();
        assert!(acc.is_empty());
        let mut acc = vec![(TweetId(2), 1)];
        intersect_winnow_blocks(&mut acc, &[], &mut scratch).unwrap();
        assert!(acc.is_empty(), "no lists → nothing matches");
    }

    #[test]
    fn winnow_sums_across_duplicate_lists() {
        // Adversarial: the same id in two lists of one keyword — the flat
        // union sums them, so the winnow must too.
        let l1 = list(&[(10, 3)]);
        let l2 = list(&[(10, 4), (20, 1)]);
        let mut scratch = BlockScratch::new();
        let mut acc = vec![(TweetId(10), 5)];
        intersect_winnow_blocks(&mut acc, &[&l1, &l2], &mut scratch).unwrap();
        assert_eq!(acc, vec![(TweetId(10), 12)]);
    }

    #[test]
    fn seek_block_gallops_correctly() {
        let bp = list(&(0..1000u64).map(|i| (i * 10, 1)).collect::<Vec<_>>());
        let skips = bp.skips();
        for id in [0u64, 5, 1270, 1280, 5000, 9990, 9991, 100_000] {
            let got = seek_block(skips, 0, id);
            let want = skips.partition_point(|s| s.last_id < id);
            assert_eq!(got, want, "id={id}");
            // From any later starting point ≤ want, same answer.
            for from in [want / 2, want.saturating_sub(1), want] {
                assert_eq!(seek_block(skips, from, id), want, "id={id} from={from}");
            }
        }
    }

    #[test]
    fn randomized_block_ops_match_flat_ops() {
        // Deterministic xorshift sweep: union and AND-winnow against the
        // flat reference on skewed random inputs spanning block boundaries.
        fn next(state: &mut u64) -> u64 {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            *state
        }
        fn gen_list(state: &mut u64, len: usize, stride: u64) -> Vec<(u64, u32)> {
            let mut id = next(state) % 50;
            (0..len)
                .map(|_| {
                    id += 1 + next(state) % stride;
                    (id, (next(state) % 9) as u32)
                })
                .collect()
        }
        let s = &mut 0xC0FF_EE00_D15E_A5E5u64;
        for round in 0..60 {
            let n_lists = 1 + (next(s) % 4) as usize;
            let lists: Vec<Vec<(u64, u32)>> = (0..n_lists)
                .map(|_| {
                    let len = (next(s) % 300) as usize;
                    let stride = 1 + next(s) % 8;
                    gen_list(s, len, stride)
                })
                .collect();
            let flat: Vec<PostingsList> =
                lists.iter().map(|p| p.iter().copied().collect()).collect();
            let want_union = crate::posting::union_sum(&flat);
            let blocks: Vec<BlockPostings> = lists.iter().map(|p| list(p)).collect();
            let refs: Vec<&BlockPostings> = blocks.iter().collect();
            let mut scratch = BlockScratch::new();
            let mut got_union = Vec::new();
            union_sum_blocks(&refs, &mut scratch, &mut got_union).unwrap();
            assert_eq!(got_union, want_union, "round {round}");

            // AND of the union with one more random keyword group.
            let other_len = (next(s) % 400) as usize;
            let other_stride = 1 + next(s) % 4;
            let other = gen_list(s, other_len, other_stride);
            let other_flat: Vec<PostingsList> = vec![other.iter().copied().collect()];
            let want_and = crate::posting::intersect_sum(&[
                want_union.clone(),
                crate::posting::union_sum(&other_flat),
            ]);
            let other_blocks = [list(&other)];
            let mut acc = got_union;
            intersect_winnow_blocks(
                &mut acc,
                &other_blocks.iter().collect::<Vec<_>>(),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(acc, want_and, "round {round} (AND)");
        }
    }

    #[test]
    fn postings_format_parses() {
        assert_eq!("flat".parse::<PostingsFormat>().unwrap(), PostingsFormat::Flat);
        assert_eq!("block".parse::<PostingsFormat>().unwrap(), PostingsFormat::Block);
        assert!("gzip".parse::<PostingsFormat>().is_err());
        assert_eq!(PostingsFormat::default(), PostingsFormat::Block);
        assert_eq!(PostingsFormat::Block.to_string(), "block");
    }
}
