//! Centralized baseline index builder.
//!
//! The paper compares its MapReduce construction against I³, a
//! state-of-the-art *centralized* spatial-keyword index, using I³'s
//! published numbers (Section VI-A). Since we cannot run the authors'
//! testbed, we provide an executable centralized comparator instead: the
//! same logical index (identical forward/inverted structure and lookup
//! semantics) built by a single sequential pass on a one-node DFS. The
//! Figure 5 harness measures this against the distributed build so the
//! paper's "distributed construction scales better" claim is testable
//! rather than quoted.

use crate::block::{BlockPostings, PostingsFormat};
use crate::build::IndexBuildReport;
use crate::forward::{ForwardIndex, PostingsLocation};
use crate::inverted::HybridIndex;
use crate::posting::PostingsList;
use std::collections::BTreeMap;
use std::time::Instant;
use tklus_geo::{encode, Geohash};
use tklus_model::Post;
use tklus_storage::{Dfs, DfsConfig};
use tklus_text::{TextPipeline, Vocab};

/// Builds the same hybrid index sequentially on a single node.
pub fn build_centralized(
    posts: &[Post],
    geohash_len: usize,
    block_size: usize,
) -> (HybridIndex, IndexBuildReport) {
    let start = Instant::now();
    let pipeline = TextPipeline::new();
    // One sequential pass accumulating (key -> postings) in sorted order.
    let mut acc: BTreeMap<(Geohash, String), Vec<(u64, u32)>> = BTreeMap::new();
    for post in posts {
        let gh = encode(&post.location, geohash_len).expect("valid geohash length");
        let mut terms = pipeline.terms(&post.text);
        terms.sort_unstable();
        let mut i = 0;
        while i < terms.len() {
            let mut j = i + 1;
            while j < terms.len() && terms[j] == terms[i] {
                j += 1;
            }
            acc.entry((gh, terms[i].clone())).or_default().push((post.id.0, (j - i) as u32));
            i = j;
        }
    }
    let map_time = start.elapsed();

    let dfs = Dfs::new(DfsConfig { nodes: 1, block_size, replication: 1 });
    let mut vocab = Vocab::new();
    let mut entries: Vec<((Geohash, tklus_text::TermId), PostingsLocation)> = Vec::new();
    let mut file = Vec::new();
    let mut postings_total = 0u64;
    for ((gh, term), pairs) in &acc {
        let list: PostingsList = pairs.iter().copied().collect();
        let term_id = vocab.intern(term);
        vocab.add_occurrences(term_id, list.postings().iter().map(|p| p.tf as u64).sum());
        postings_total += list.len() as u64;
        // Same default encoding as the distributed build, so index sizes
        // stay directly comparable.
        let bytes = match PostingsFormat::default() {
            PostingsFormat::Flat => list.encode(),
            PostingsFormat::Block => BlockPostings::from_list(&list).encode(),
        };
        entries.push((
            (*gh, term_id),
            PostingsLocation { partition: 0, offset: file.len() as u64, len: bytes.len() as u32 },
        ));
        file.extend_from_slice(&bytes);
    }
    dfs.create_on(&HybridIndex::partition_file(0), file, 0).expect("fresh DFS");
    entries.sort_by_key(|e| e.0);
    let forward = ForwardIndex::from_sorted(entries);

    let report = IndexBuildReport {
        total_time: start.elapsed(),
        map_time,
        reduce_time: start.elapsed() - map_time,
        posts: posts.len() as u64,
        keys: forward.len() as u64,
        postings: postings_total,
        index_bytes: dfs.total_bytes(),
        distinct_terms: vocab.len() as u64,
    };
    (HybridIndex::new(forward, vocab, dfs, geohash_len, PostingsFormat::default()), report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use crate::build::{build_index, IndexBuildConfig};
    use tklus_geo::{DistanceMetric, Point};
    use tklus_model::{TweetId, UserId};

    fn posts() -> Vec<Post> {
        (0..200u64)
            .map(|i| {
                let lat = 43.6 + (i % 20) as f64 * 0.01;
                let lon = -79.5 + (i % 17) as f64 * 0.01;
                let text = match i % 4 {
                    0 => "great hotel downtown",
                    1 => "pizza and coffee",
                    2 => "hotel pizza combo deal",
                    _ => "random chatter about games",
                };
                Post::original(TweetId(i + 1), UserId(i % 31), Point::new_unchecked(lat, lon), text)
            })
            .collect()
    }

    #[test]
    fn centralized_equals_distributed_logically() {
        let posts = posts();
        let (dist, _) = build_index(&posts, &IndexBuildConfig::default());
        let (cent, _) = build_centralized(&posts, 4, 64 * 1024);
        // Same dictionary contents (ids may differ).
        assert_eq!(dist.vocab().len(), cent.vocab().len());
        // Same directory size.
        assert_eq!(dist.forward().len(), cent.forward().len());
        // Same query answers.
        let center = Point::new_unchecked(43.68, -79.4);
        for kw in ["hotel", "pizza", "coffee", "game"] {
            let td = dist.vocab().get(kw);
            let tc = cent.vocab().get(kw);
            assert_eq!(td.is_some(), tc.is_some(), "{kw}");
            let (Some(td), Some(tc)) = (td, tc) else { continue };
            let fd = dist.fetch_for_query(&center, 25.0, &[td], DistanceMetric::Euclidean);
            let fc = cent.fetch_for_query(&center, 25.0, &[tc], DistanceMetric::Euclidean);
            let ids = |f: &crate::inverted::QueryFetch| {
                let mut v: Vec<u64> = f.per_keyword[0]
                    .iter()
                    .flat_map(|l| l.postings().iter().map(|p| p.id.0))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(ids(&fd), ids(&fc), "{kw}");
        }
    }

    #[test]
    fn report_totals_match() {
        let posts = posts();
        let (_, rd) = build_index(&posts, &IndexBuildConfig::default());
        let (_, rc) = build_centralized(&posts, 4, 64 * 1024);
        assert_eq!(rd.keys, rc.keys);
        assert_eq!(rd.postings, rc.postings);
        assert_eq!(rd.distinct_terms, rc.distinct_terms);
        assert_eq!(rd.index_bytes, rc.index_bytes);
    }
}
