//! The in-memory forward index (postings directory).
//!
//! Figure 4: "Each entry in the forward index is in the format of
//! `⟨ge_i, kw_i⟩` … the forward index associates each of its entries to a
//! postings list in the inverted index that is stored in HDFS." Entries are
//! kept sorted by key, so lookup is a binary search and the whole structure
//! stays small enough to load at startup ("the system first loads the
//! postings forward index into memory since it is always small").

use tklus_geo::Geohash;
use tklus_text::TermId;

/// Where a postings list lives in the DFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingsLocation {
    /// Partition index (names the partition file).
    pub partition: u32,
    /// Byte offset within the partition file.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u32,
}

/// Sorted directory from `⟨geohash, term⟩` to postings location.
#[derive(Debug, Default, Clone)]
pub struct ForwardIndex {
    entries: Vec<((Geohash, TermId), PostingsLocation)>,
}

impl ForwardIndex {
    /// Builds from entries already sorted by key (the MapReduce output
    /// order). Panics if unsorted or duplicated — partition files are
    /// written in sorted key order, so a violation is a build bug.
    pub fn from_sorted(entries: Vec<((Geohash, TermId), PostingsLocation)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "forward index entries must be strictly sorted by (geohash, term)"
        );
        Self { entries }
    }

    /// Looks up the postings location for `⟨geohash, term⟩`.
    pub fn lookup(&self, geohash: Geohash, term: TermId) -> Option<PostingsLocation> {
        self.entries.binary_search_by_key(&(geohash, term), |e| e.0).ok().map(|i| self.entries[i].1)
    }

    /// All entries for a geohash cell, sorted by term.
    pub fn cell_entries(&self, geohash: Geohash) -> &[((Geohash, TermId), PostingsLocation)] {
        let lo = self.entries.partition_point(|e| e.0 .0 < geohash);
        let hi = self.entries.partition_point(|e| e.0 .0 <= geohash);
        &self.entries[lo..hi]
    }

    /// Number of directory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident size in bytes (the paper keeps this "< 12 MB").
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<((Geohash, TermId), PostingsLocation)>()
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &((Geohash, TermId), PostingsLocation)> {
        self.entries.iter()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;

    fn gh(s: &str) -> Geohash {
        s.parse().unwrap()
    }

    fn loc(partition: u32, offset: u64, len: u32) -> PostingsLocation {
        PostingsLocation { partition, offset, len }
    }

    fn sample() -> ForwardIndex {
        ForwardIndex::from_sorted(vec![
            ((gh("6gxp"), TermId(1)), loc(0, 0, 10)),
            ((gh("6gxp"), TermId(5)), loc(0, 10, 4)),
            ((gh("6gxq"), TermId(1)), loc(0, 14, 8)),
            ((gh("u4pr"), TermId(2)), loc(1, 0, 6)),
        ])
    }

    #[test]
    fn lookup_hits_and_misses() {
        let f = sample();
        assert_eq!(f.lookup(gh("6gxp"), TermId(5)), Some(loc(0, 10, 4)));
        assert_eq!(f.lookup(gh("6gxp"), TermId(2)), None);
        assert_eq!(f.lookup(gh("zzzz"), TermId(1)), None);
    }

    #[test]
    fn cell_entries_groups_by_geohash() {
        let f = sample();
        let cell = f.cell_entries(gh("6gxp"));
        assert_eq!(cell.len(), 2);
        assert!(cell.iter().all(|e| e.0 .0 == gh("6gxp")));
        assert!(f.cell_entries(gh("0000")).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_entries_rejected() {
        let _ = ForwardIndex::from_sorted(vec![
            ((gh("u4pr"), TermId(2)), loc(0, 0, 1)),
            ((gh("6gxp"), TermId(1)), loc(0, 1, 1)),
        ]);
    }

    #[test]
    fn size_and_len() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert!(f.size_bytes() > 0);
        assert!(ForwardIndex::default().is_empty());
    }
}
