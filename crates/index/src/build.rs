//! Index construction: the MapReduce job of Algorithms 2 and 3 plus the
//! driver that lays partitions out on the DFS and builds the forward index.

use crate::block::{BlockPostings, PostingsFormat};
use crate::forward::{ForwardIndex, PostingsLocation};
use crate::inverted::HybridIndex;
use crate::posting::{Posting, PostingsList};
use std::time::{Duration, Instant};
use tklus_geo::{encode, Geohash};
use tklus_mapreduce::{run_job, JobConfig, Mapper, RangePartitioner, Reducer};
use tklus_model::Post;
use tklus_storage::{Dfs, DfsConfig};
use tklus_text::{TextPipeline, Vocab};

/// Configuration of an index build.
#[derive(Debug, Clone)]
pub struct IndexBuildConfig {
    /// Geohash encoding length (the paper evaluates 1–4; default 4, the
    /// choice Section VI-B2 settles on).
    pub geohash_len: usize,
    /// Simulated cluster size = map tasks = reduce partitions = DFS nodes
    /// (the paper's cluster has 3 machines).
    pub nodes: usize,
    /// DFS block size in bytes.
    pub block_size: usize,
    /// DFS replication factor for partition files (1 = no replicas).
    pub replication: usize,
    /// On-DFS postings encoding (block-compressed by default; `Flat` keeps
    /// the pre-block delta-varint layout as a comparison baseline).
    pub postings_format: PostingsFormat,
}

impl Default for IndexBuildConfig {
    fn default() -> Self {
        Self {
            geohash_len: 4,
            nodes: 3,
            block_size: 64 * 1024,
            replication: 1,
            postings_format: PostingsFormat::Block,
        }
    }
}

/// Outcome statistics of a build, for the Figure 5/6 harnesses.
#[derive(Debug, Clone)]
pub struct IndexBuildReport {
    /// Total wall time of the build.
    pub total_time: Duration,
    /// Map+shuffle phase wall time.
    pub map_time: Duration,
    /// Reduce phase wall time.
    pub reduce_time: Duration,
    /// Posts consumed.
    pub posts: u64,
    /// `⟨geohash, term⟩` keys produced (= forward index entries).
    pub keys: u64,
    /// Postings across all lists.
    pub postings: u64,
    /// Bytes of inverted-index data written to the DFS (Fig. 6's size).
    pub index_bytes: u64,
    /// Distinct terms in the dictionary.
    pub distinct_terms: u64,
}

/// The map function of Algorithm 2: tokenize + stem the post, count term
/// frequencies, and emit `⟨(geohash, term), (timestamp, tf)⟩` per distinct
/// term.
struct IndexMapper {
    pipeline: TextPipeline,
    geohash_len: usize,
}

impl Mapper for IndexMapper {
    type Input = Post;
    type Key = (Geohash, String);
    type Value = (u64, u32);

    fn map(&self, post: &Post, emit: &mut dyn FnMut(Self::Key, Self::Value)) {
        let gh = encode(&post.location, self.geohash_len).expect("valid geohash length");
        // Associative array H of Algorithm 2: term -> in-post frequency.
        let mut terms = self.pipeline.terms(&post.text);
        terms.sort_unstable();
        let mut i = 0;
        while i < terms.len() {
            let mut j = i + 1;
            while j < terms.len() && terms[j] == terms[i] {
                j += 1;
            }
            emit((gh, terms[i].clone()), (post.id.0, (j - i) as u32));
            i = j;
        }
    }
}

/// The reduce function of Algorithm 3: gather all postings of one key and
/// sort them by timestamp.
struct IndexReducer;

impl Reducer for IndexReducer {
    type Key = (Geohash, String);
    type Value = (u64, u32);
    type Output = PostingsList;

    fn reduce(
        &self,
        _key: &Self::Key,
        values: Vec<(u64, u32)>,
        emit: &mut dyn FnMut(PostingsList),
    ) {
        emit(PostingsList::new(
            values
                .into_iter()
                .map(|(id, tf)| Posting { id: tklus_model::TweetId(id), tf })
                .collect(),
        ))
    }
}

/// Geohash-range split points giving each of `n` partitions an equal slice
/// of the top-level geohash alphabet, so each spatial region lands on one
/// node.
fn geohash_splits(n: usize) -> Vec<(Geohash, String)> {
    (1..n)
        .map(|i| {
            let c = (i * 32 / n) as u64;
            (Geohash::from_low_bits(c, 1).expect("root cell"), String::new())
        })
        .collect()
}

/// Builds the hybrid index over `posts` with the MapReduce pipeline and
/// returns it together with a build report.
///
/// ```
/// use tklus_index::{build_index, IndexBuildConfig};
/// use tklus_geo::Point;
/// use tklus_model::{Post, TweetId, UserId};
///
/// let posts = vec![Post::original(
///     TweetId(1), UserId(1), Point::new_unchecked(43.7, -79.4), "hotel downtown",
/// )];
/// let (index, report) = build_index(&posts, &IndexBuildConfig::default());
/// assert_eq!(report.posts, 1);
/// assert!(index.vocab().get("hotel").is_some());
/// ```
pub fn build_index(posts: &[Post], config: &IndexBuildConfig) -> (HybridIndex, IndexBuildReport) {
    assert!(config.nodes > 0, "at least one node");
    let start = Instant::now();
    let mapper = IndexMapper { pipeline: TextPipeline::new(), geohash_len: config.geohash_len };
    let partitioner = RangePartitioner::new(geohash_splits(config.nodes));
    let job = run_job(
        JobConfig { map_tasks: config.nodes, reduce_tasks: config.nodes, ..JobConfig::default() },
        posts,
        &mapper,
        &IndexReducer,
        &partitioner,
    );

    // Driver: lay each partition out as one DFS file on its own node, in
    // sorted key order, while building the dictionary and directory.
    let dfs = Dfs::new(DfsConfig {
        nodes: config.nodes,
        block_size: config.block_size,
        replication: config.replication,
    });
    let mut vocab = Vocab::new();
    let mut entries: Vec<((Geohash, tklus_text::TermId), PostingsLocation)> = Vec::new();
    let mut postings_total = 0u64;
    for (part_idx, partition) in job.partitions.iter().enumerate() {
        let mut file = Vec::new();
        for ((gh, term), list) in partition {
            let term_id = vocab.intern(term);
            // Corpus frequency = total occurrences (Table II ranking).
            let occurrences: u64 = list.postings().iter().map(|p| p.tf as u64).sum();
            vocab.add_occurrences(term_id, occurrences);
            postings_total += list.len() as u64;
            let bytes = match config.postings_format {
                PostingsFormat::Flat => list.encode(),
                PostingsFormat::Block => BlockPostings::from_list(list).encode(),
            };
            entries.push((
                (*gh, term_id),
                PostingsLocation {
                    partition: part_idx as u32,
                    offset: file.len() as u64,
                    len: bytes.len() as u32,
                },
            ));
            file.extend_from_slice(&bytes);
        }
        dfs.create_on(&HybridIndex::partition_file(part_idx as u32), file, part_idx % config.nodes)
            .expect("fresh DFS");
    }
    // Directory order is (geohash, term-id); term ids are assigned in
    // first-encounter order, so re-sort before building the directory.
    entries.sort_by_key(|e| e.0);
    let forward = ForwardIndex::from_sorted(entries);

    let report = IndexBuildReport {
        total_time: start.elapsed(),
        map_time: job.map_time,
        reduce_time: job.reduce_time,
        posts: job.counters.map_input_records,
        keys: forward.len() as u64,
        postings: postings_total,
        index_bytes: dfs.total_bytes(),
        distinct_terms: vocab.len() as u64,
    };
    let index = HybridIndex::new(forward, vocab, dfs, config.geohash_len, config.postings_format);
    (index, report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_geo::Point;
    use tklus_model::{TweetId, UserId};

    fn post(id: u64, user: u64, lat: f64, lon: f64, text: &str) -> Post {
        Post::original(TweetId(id), UserId(user), Point::new_unchecked(lat, lon), text)
    }

    fn toronto_posts() -> Vec<Post> {
        vec![
            post(1, 1, 43.670, -79.387, "I'm at Toronto Marriott Bloor Yorkville Hotel"),
            post(2, 2, 43.655, -79.380, "Finally Toronto (at Clarion Hotel)"),
            post(3, 3, 43.671, -79.389, "I'm at Four Seasons Hotel Toronto"),
            post(4, 4, 43.671, -79.389, "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto"),
            post(
                5,
                5,
                43.672,
                -79.390,
                "best massage ever (@ The Spa at Four Seasons Hotel Toronto)",
            ),
            post(
                6,
                6,
                43.672,
                -79.390,
                "Saturday night steez #fashion #toronto @ Four Seasons Hotel Toronto",
            ),
            post(
                7,
                1,
                43.669,
                -79.386,
                "Marriott Bloor Yorkville Hotel is a perfect place to stay",
            ),
        ]
    }

    #[test]
    fn builds_and_looks_up_postings() {
        let (index, report) = build_index(&toronto_posts(), &IndexBuildConfig::default());
        assert_eq!(report.posts, 7);
        assert!(report.keys > 0);
        assert!(report.index_bytes > 0);
        // Every post mentions "hotel"; they are all in the same 4-char cell
        // neighbourhood of Toronto.
        let hotel = index.vocab().get("hotel").expect("hotel indexed");
        let gh = encode(&Point::new_unchecked(43.670, -79.387), 4).unwrap();
        let list = index.postings(gh, hotel).expect("postings present");
        assert!(!list.is_empty());
        // Postings sorted by id.
        assert!(list.postings().windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn stemming_unifies_query_and_index_terms() {
        let posts = vec![post(1, 1, 43.7, -79.4, "great restaurants downtown")];
        let (index, _) = build_index(&posts, &IndexBuildConfig::default());
        // "restaurants" stems to the same term a "restaurant" query uses.
        let pipeline = TextPipeline::new();
        let q = pipeline.normalize_keyword("restaurant").unwrap();
        assert!(index.vocab().get(&q).is_some(), "query stem {q:?} missing from dictionary");
    }

    #[test]
    fn term_frequency_counted_per_post() {
        let posts = vec![post(1, 1, 43.7, -79.4, "pizza pizza pizza is the best pizza")];
        let (index, _) = build_index(&posts, &IndexBuildConfig::default());
        let pizza = index.vocab().get("pizza").unwrap();
        let gh = encode(&Point::new_unchecked(43.7, -79.4), 4).unwrap();
        let list = index.postings(gh, pizza).unwrap();
        assert_eq!(list.postings()[0].tf, 4);
        // Dictionary frequency counts all occurrences.
        assert_eq!(index.vocab().frequency(pizza), 4);
    }

    #[test]
    fn partitions_respect_geohash_ranges() {
        // Posts spread over the globe land in different partitions/nodes.
        let posts = vec![
            post(1, 1, -23.99, -46.23, "hotel sao paulo"), // geohash 6...
            post(2, 2, 43.67, -79.38, "hotel toronto"),    // geohash d...
            post(3, 3, 57.64, 10.40, "hotel denmark"),     // geohash u...
        ];
        let (index, _) = build_index(
            &posts,
            &IndexBuildConfig { geohash_len: 4, nodes: 3, block_size: 1024, ..Default::default() },
        );
        // Three partition files exist (some may be empty but created).
        let files = index.dfs().list();
        assert_eq!(files.len(), 3, "{files:?}");
        // Keys for Brazil sort before Canada before Denmark, and partition
        // indexes are monotone in key range.
        let hotel = index.vocab().get("hotel").unwrap();
        let parts: Vec<u32> = [(-23.99, -46.23), (43.67, -79.38), (57.64, 10.40)]
            .iter()
            .map(|&(lat, lon)| {
                let gh = encode(&Point::new_unchecked(lat, lon), 4).unwrap();
                index.forward().lookup(gh, hotel).unwrap().partition
            })
            .collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]), "{parts:?}");
        assert!(parts[0] < parts[2], "extremes must differ: {parts:?}");
    }

    #[test]
    fn report_counts_are_consistent() {
        let (index, report) = build_index(&toronto_posts(), &IndexBuildConfig::default());
        assert_eq!(report.keys as usize, index.forward().len());
        assert_eq!(report.distinct_terms as usize, index.vocab().len());
        assert!(report.postings >= report.keys, "every key has at least one posting");
        assert_eq!(report.index_bytes, index.dfs().total_bytes());
    }

    #[test]
    fn empty_corpus_builds_empty_index() {
        let (index, report) = build_index(&[], &IndexBuildConfig::default());
        assert_eq!(report.keys, 0);
        assert!(index.forward().is_empty());
    }

    #[test]
    fn geohash_length_one_still_works() {
        let (index, _) = build_index(
            &toronto_posts(),
            &IndexBuildConfig { geohash_len: 1, nodes: 3, block_size: 1024, ..Default::default() },
        );
        let hotel = index.vocab().get("hotel").unwrap();
        let gh = encode(&Point::new_unchecked(43.670, -79.387), 1).unwrap();
        let list = index.postings(gh, hotel).unwrap();
        assert_eq!(list.len(), 7, "all posts collapse into one cell");
    }
}
