//! The query-side face of the hybrid index.
//!
//! [`HybridIndex`] bundles the in-memory forward index, the term
//! dictionary, and the DFS holding the partition files, and implements the
//! postings-retrieval phase of Algorithms 4 and 5 (lines 1–7): geohash
//! circle cover, then one postings fetch per surviving `⟨cell, keyword⟩`
//! pair. Fetches are issued in `(partition, offset)` order so reads within
//! a partition are as sequential as the key layout allows — the locality
//! the paper's sorted `⟨geohash, term⟩` organization is designed to give.

use crate::block::{BlockPostings, PostingsFormat};
use crate::forward::{ForwardIndex, PostingsLocation};
use crate::posting::PostingsList;
use std::sync::Arc;
use tklus_geo::{circle_cover, DistanceMetric, Geohash, Point};
use tklus_storage::{Dfs, DfsError};
use tklus_text::{TermId, Vocab};

/// A `⟨geohash, term⟩` key, as stored in the forward index.
pub type IndexKey = (Geohash, TermId);

/// Errors from the inverted-index read path.
#[derive(Debug)]
pub enum IndexError {
    /// The DFS could not serve a partition range the directory points at.
    Dfs {
        /// Partition file the read targeted.
        file: String,
        /// The underlying DFS failure.
        source: DfsError,
    },
    /// Partition bytes at a directory location failed to decode.
    CorruptPostings {
        /// Partition file the bytes came from.
        file: String,
        /// Byte offset of the postings list within the file.
        offset: u64,
        /// What the decoder rejected.
        detail: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Dfs { file, source } => {
                write!(f, "dfs read of {file} failed: {source}")
            }
            IndexError::CorruptPostings { file, offset, detail } => {
                write!(f, "corrupt postings in {file} at offset {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// The hybrid index: forward directory in memory, inverted partitions on
/// the DFS.
pub struct HybridIndex {
    forward: ForwardIndex,
    vocab: Vocab,
    dfs: Dfs,
    geohash_len: usize,
    postings_format: PostingsFormat,
}

/// Result of the postings-retrieval phase for one query.
///
/// Lists are held behind `Arc` so a caching layer above the index (the
/// engine's postings cache) can hand out the same decoded list to many
/// concurrent queries without copying postings data.
#[derive(Debug)]
pub struct QueryFetch {
    /// `per_keyword[i]` holds the postings lists found for keyword `i`,
    /// one per cover cell that had an entry.
    pub per_keyword: Vec<Vec<Arc<PostingsList>>>,
    /// Number of cover cells examined.
    pub cells: usize,
    /// Number of postings lists fetched.
    pub lists: usize,
    /// Encoded bytes fetched from the DFS.
    pub bytes: u64,
}

impl HybridIndex {
    /// Assembles an index from its parts (normally via
    /// [`crate::build::build_index`]). `postings_format` must match the
    /// encoding the partition files were actually written with.
    pub fn new(
        forward: ForwardIndex,
        vocab: Vocab,
        dfs: Dfs,
        geohash_len: usize,
        postings_format: PostingsFormat,
    ) -> Self {
        Self { forward, vocab, dfs, geohash_len, postings_format }
    }

    /// DFS file name of partition `i`.
    pub fn partition_file(i: u32) -> String {
        format!("inverted/part-{i:05}")
    }

    /// The forward index (directory).
    pub fn forward(&self) -> &ForwardIndex {
        &self.forward
    }

    /// The term dictionary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The DFS holding the partition files.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The geohash encoding length the index was built with.
    pub fn geohash_len(&self) -> usize {
        self.geohash_len
    }

    /// The on-DFS postings encoding of this index's partition files.
    pub fn postings_format(&self) -> PostingsFormat {
        self.postings_format
    }

    /// Fetches the postings list for one `⟨geohash, term⟩` key.
    pub fn postings(&self, geohash: Geohash, term: TermId) -> Option<PostingsList> {
        let loc = self.forward.lookup(geohash, term)?;
        Some(self.read_postings(loc).0)
    }

    /// Reads and decodes the postings list at a directory location,
    /// returning the list and the number of encoded bytes read. Pure given
    /// the immutable partition files, so safe from any thread — this is the
    /// storage-touching half of a fetch that the engine's postings cache
    /// wraps.
    ///
    /// Panics if the directory points at an unreadable or undecodable
    /// range; fault-tolerant callers use [`Self::try_read_postings`].
    pub fn read_postings(&self, loc: PostingsLocation) -> (PostingsList, u64) {
        match self.try_read_postings(loc) {
            Ok(out) => out,
            Err(e) => panic!("directory points at valid partition range: {e}"),
        }
    }

    /// Fallible [`Self::read_postings`]: an unreadable partition range or
    /// undecodable bytes surface as a typed [`IndexError`] instead of a
    /// panic. On a block-format index the list is fully unpacked — the
    /// compatibility bridge for flat consumers; the block-native pipeline
    /// uses [`Self::try_read_block_postings`] instead.
    pub fn try_read_postings(
        &self,
        loc: PostingsLocation,
    ) -> Result<(PostingsList, u64), IndexError> {
        match self.postings_format {
            PostingsFormat::Flat => {
                let (raw, file) = self.read_raw(loc)?;
                let bytes = raw.len() as u64;
                let (list, _) =
                    PostingsList::decode(&raw).map_err(|e| Self::corrupt(file, loc.offset, e))?;
                Ok((list, bytes))
            }
            PostingsFormat::Block => {
                let (blocks, bytes) = self.try_read_block_postings(loc)?;
                let file = Self::partition_file(loc.partition);
                let list =
                    blocks.to_postings_list().map_err(|e| Self::corrupt(file, loc.offset, e))?;
                Ok((list, bytes))
            }
        }
    }

    /// Reads and decodes a block-compressed postings list at a directory
    /// location without unpacking its payloads. Only valid on an index
    /// whose [`Self::postings_format`] is [`PostingsFormat::Block`];
    /// reading a flat partition this way surfaces as a typed corruption
    /// error, never a misparse, because the block layout's structural
    /// validation rejects flat bytes.
    pub fn try_read_block_postings(
        &self,
        loc: PostingsLocation,
    ) -> Result<(BlockPostings, u64), IndexError> {
        let (raw, file) = self.read_raw(loc)?;
        let bytes = raw.len() as u64;
        let (blocks, _) =
            BlockPostings::decode(&raw).map_err(|e| Self::corrupt(file, loc.offset, e))?;
        Ok((blocks, bytes))
    }

    fn read_raw(&self, loc: PostingsLocation) -> Result<(Vec<u8>, String), IndexError> {
        let file = Self::partition_file(loc.partition);
        let raw = self
            .dfs
            .read_at(&file, loc.offset, loc.len as usize)
            .map_err(|source| IndexError::Dfs { file: file.clone(), source })?;
        Ok((raw, file))
    }

    fn corrupt(file: String, offset: u64, e: crate::posting::DecodeError) -> IndexError {
        IndexError::CorruptPostings { file, offset, detail: e.to_string() }
    }

    /// The postings-retrieval phase of Algorithms 4/5: computes the geohash
    /// circle cover of `(center, radius_km)` and fetches the postings list
    /// of every `⟨cell, keyword⟩` pair present in the directory.
    ///
    /// `keywords` are already-normalized term ids (the engine resolves
    /// strings through [`Self::vocab`] first).
    pub fn fetch_for_query(
        &self,
        center: &Point,
        radius_km: f64,
        keywords: &[TermId],
        metric: DistanceMetric,
    ) -> QueryFetch {
        self.fetch_for_query_parallel(center, radius_km, keywords, metric, 1)
    }

    /// [`Self::fetch_for_query`] with the postings reads spread over up to
    /// `parallelism` scoped threads. The sorted hit list is split into
    /// contiguous chunks (each worker keeps the within-partition
    /// sequentiality the sort bought) and results are reassembled in hit
    /// order, so the output — including per-keyword list order — is
    /// identical at any parallelism.
    pub fn fetch_for_query_parallel(
        &self,
        center: &Point,
        radius_km: f64,
        keywords: &[TermId],
        metric: DistanceMetric,
        parallelism: usize,
    ) -> QueryFetch {
        let cover = circle_cover(center, radius_km, self.geohash_len, metric)
            .expect("index geohash length is valid");
        // Gather directory hits first, then fetch in storage order.
        let mut hits: Vec<(usize, crate::forward::PostingsLocation)> = Vec::new();
        for (ki, &term) in keywords.iter().enumerate() {
            for &cell in &cover {
                if let Some(loc) = self.forward.lookup(cell, term) {
                    hits.push((ki, loc));
                }
            }
        }
        hits.sort_by_key(|(_, loc)| (loc.partition, loc.offset));
        let lists = hits.len();
        let workers = parallelism.max(1).min(lists.max(1));
        let fetch_hit = |ki: usize, loc: PostingsLocation| {
            let (list, bytes) = self.read_postings(loc);
            (ki, Arc::new(list), bytes)
        };
        let fetched: Vec<(usize, Arc<PostingsList>, u64)> = if workers <= 1 {
            hits.iter().map(|&(ki, loc)| fetch_hit(ki, loc)).collect()
        } else {
            let chunk = lists.div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = hits
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter().map(|&(ki, loc)| fetch_hit(ki, loc)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("postings fetch worker panicked"))
                    .collect()
            })
        };
        let mut per_keyword: Vec<Vec<Arc<PostingsList>>> =
            keywords.iter().map(|_| Vec::new()).collect();
        let mut bytes = 0u64;
        for (ki, list, b) in fetched {
            bytes += b;
            per_keyword[ki].push(list);
        }
        QueryFetch { per_keyword, cells: cover.len(), lists, bytes }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use crate::build::{build_index, IndexBuildConfig};
    use tklus_model::{Post, TweetId, UserId};

    fn post(id: u64, lat: f64, lon: f64, text: &str) -> Post {
        Post::original(TweetId(id), UserId(id), Point::new_unchecked(lat, lon), text)
    }

    fn index() -> HybridIndex {
        let posts = vec![
            post(1, 43.670, -79.387, "hotel downtown"),
            post(2, 43.675, -79.390, "hotel and spa"),
            post(3, 43.800, -79.200, "hotel far away suburb"),
            post(4, 43.671, -79.388, "pizza place"),
            post(5, 48.8566, 2.3522, "hotel paris"),
        ];
        build_index(&posts, &IndexBuildConfig::default()).0
    }

    #[test]
    fn fetch_for_query_groups_by_keyword() {
        let idx = index();
        let hotel = idx.vocab().get("hotel").unwrap();
        let pizza = idx.vocab().get("pizza").unwrap();
        let center = Point::new_unchecked(43.6839128037, -79.37356590);
        let fetch = idx.fetch_for_query(&center, 10.0, &[hotel, pizza], DistanceMetric::Euclidean);
        assert_eq!(fetch.per_keyword.len(), 2);
        let hotel_ids: Vec<u64> =
            fetch.per_keyword[0].iter().flat_map(|l| l.postings().iter().map(|p| p.id.0)).collect();
        // Tweets 1 and 2 are in range cells; tweet 3's cell may or may not
        // fall inside the 10 km cover, tweet 5 (Paris) must not.
        assert!(hotel_ids.contains(&1) && hotel_ids.contains(&2));
        assert!(!hotel_ids.contains(&5));
        let pizza_ids: Vec<u64> =
            fetch.per_keyword[1].iter().flat_map(|l| l.postings().iter().map(|p| p.id.0)).collect();
        assert_eq!(pizza_ids, vec![4]);
        assert!(fetch.cells > 0);
        assert_eq!(fetch.lists, fetch.per_keyword.iter().map(Vec::len).sum::<usize>());
        assert!(fetch.bytes > 0);
    }

    #[test]
    fn unknown_keyword_fetches_nothing() {
        let idx = index();
        let center = Point::new_unchecked(43.68, -79.37);
        // Use a term id that exists in no directory entry.
        let bogus = TermId(9999);
        let fetch = idx.fetch_for_query(&center, 10.0, &[bogus], DistanceMetric::Euclidean);
        assert!(fetch.per_keyword[0].is_empty());
        assert_eq!(fetch.lists, 0);
        assert_eq!(fetch.bytes, 0);
    }

    #[test]
    fn wider_radius_fetches_at_least_as_much() {
        let idx = index();
        let hotel = idx.vocab().get("hotel").unwrap();
        let center = Point::new_unchecked(43.6839128037, -79.37356590);
        let near = idx.fetch_for_query(&center, 5.0, &[hotel], DistanceMetric::Euclidean);
        let far = idx.fetch_for_query(&center, 50.0, &[hotel], DistanceMetric::Euclidean);
        assert!(far.cells >= near.cells);
        assert!(far.lists >= near.lists);
        let far_ids: usize = far.per_keyword[0].iter().map(|l| l.len()).sum();
        let near_ids: usize = near.per_keyword[0].iter().map(|l| l.len()).sum();
        assert!(far_ids >= near_ids);
        // 50 km from downtown Toronto reaches the suburb tweet.
        let ids: Vec<u64> =
            far.per_keyword[0].iter().flat_map(|l| l.postings().iter().map(|p| p.id.0)).collect();
        assert!(ids.contains(&3));
    }

    #[test]
    fn parallel_fetch_matches_sequential() {
        let idx = index();
        let hotel = idx.vocab().get("hotel").unwrap();
        let pizza = idx.vocab().get("pizza").unwrap();
        let center = Point::new_unchecked(43.6839128037, -79.37356590);
        let seq = idx.fetch_for_query(&center, 50.0, &[hotel, pizza], DistanceMetric::Euclidean);
        for parallelism in [2, 4, 8] {
            let par = idx.fetch_for_query_parallel(
                &center,
                50.0,
                &[hotel, pizza],
                DistanceMetric::Euclidean,
                parallelism,
            );
            assert_eq!(par.cells, seq.cells);
            assert_eq!(par.lists, seq.lists);
            assert_eq!(par.bytes, seq.bytes);
            assert_eq!(par.per_keyword.len(), seq.per_keyword.len());
            for (p, s) in par.per_keyword.iter().zip(&seq.per_keyword) {
                assert_eq!(p.len(), s.len());
                for (pl, sl) in p.iter().zip(s) {
                    assert_eq!(pl.postings(), sl.postings());
                }
            }
        }
    }

    #[test]
    fn bad_locations_surface_typed_errors() {
        let idx = index();
        let hotel = idx.vocab().get("hotel").unwrap();
        let (&(gh, _), &loc) = idx
            .forward()
            .iter()
            .find(|((_, t), _)| *t == hotel)
            .map(|(k, v)| (k, v))
            .expect("hotel has a directory entry");
        let _ = gh;
        // A read past the end of the partition is a DFS error.
        let past_end = PostingsLocation { partition: loc.partition, offset: 1 << 40, len: 8 };
        let err = idx.try_read_postings(past_end).unwrap_err();
        assert!(matches!(err, IndexError::Dfs { .. }), "{err}");
        // A truncated range decodes to garbage: a typed corruption error.
        if loc.len > 1 {
            let truncated =
                PostingsLocation { partition: loc.partition, offset: loc.offset, len: loc.len - 1 };
            let err = idx.try_read_postings(truncated).unwrap_err();
            assert!(matches!(err, IndexError::CorruptPostings { .. }), "{err}");
        }
        // The good location still reads fine.
        assert!(idx.try_read_postings(loc).is_ok());
    }

    #[test]
    fn reads_hit_dfs_counters() {
        let idx = index();
        let hotel = idx.vocab().get("hotel").unwrap();
        let before = idx.dfs().total_counters().blocks_read;
        let center = Point::new_unchecked(43.6839128037, -79.37356590);
        let _ = idx.fetch_for_query(&center, 10.0, &[hotel], DistanceMetric::Euclidean);
        assert!(idx.dfs().total_counters().blocks_read > before);
    }
}
