//! The hybrid spatial-keyword index of Section IV-B.
//!
//! Two components, exactly as in the paper's Figure 4:
//!
//! * an **inverted index** keyed by `⟨geohash, term⟩` whose postings lists
//!   of `⟨tweet-id, term-frequency⟩` pairs (sorted by tweet id = timestamp)
//!   live in partition files on the simulated DFS — built by the MapReduce
//!   job of Algorithms 2 and 3 ([`build`]);
//! * a **forward index** ([`forward::ForwardIndex`]) kept in main memory
//!   ("less than 12 MB … therefore it is kept in the main memory") that
//!   maps each `⟨geohash, term⟩` entry to its postings list's location in
//!   the DFS.
//!
//! Keys are range-partitioned by geohash so "data indexed by geohash will
//! have all points for a given rectangular area in one computer", and each
//! partition file is written in sorted key order so postings of nearby
//! cells with the same keyword sit in contiguous blocks.
//!
//! [`baseline::build_centralized`] builds the identical index single-threaded
//! on a one-node DFS — the centralized comparison point for the Figure 5
//! construction-scaling experiment.

pub mod baseline;
pub mod block;
pub mod build;
pub mod forward;
pub mod inverted;
pub mod irtree;
pub mod persist;
pub mod posting;

pub use block::{
    intersect_winnow_blocks, union_sum_blocks, BlockPostings, BlockScratch, BlockSkip,
    PostingsFormat, BLOCK_LEN,
};
pub use build::{build_index, IndexBuildConfig, IndexBuildReport};
pub use forward::{ForwardIndex, PostingsLocation};
pub use inverted::{HybridIndex, IndexError, IndexKey, QueryFetch};
pub use irtree::{IrSearchStats, IrTree};
pub use persist::{
    load_dir, load_dir_with_report, load_sharded_dir_with_report, save_dir, save_sharded_dir,
    save_sharded_dir_refs, shard_dir_name, LoadReport, PersistError, PERSIST_FORMAT_VERSION,
    SHARDED_FORMAT_VERSION,
};
pub use posting::{intersect_gallop, intersect_sum, union_sum, DecodeError, Posting, PostingsList};
