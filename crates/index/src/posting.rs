//! Postings lists: `⟨TID, TF⟩` pairs sorted by tweet id.
//!
//! "Each entry in a postings list is a pair ⟨TID, TF⟩ … the postings are
//! sorted by the timestamp before they are emitted. The subsequent
//! intersection operations on the sorted postings can be very efficient"
//! (Section IV-B2). Lists are delta-varint encoded on disk; set operations
//! are linear merges over the sorted ids.

use tklus_model::TweetId;

/// One posting: a tweet and the query-relevant term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Tweet id (timestamp).
    pub id: TweetId,
    /// Term frequency of the key's term in that tweet.
    pub tf: u32,
}

/// A postings list, sorted by tweet id, no duplicate ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingsList {
    postings: Vec<Posting>,
}

impl PostingsList {
    /// Builds a list from postings, sorting by id. Panics on duplicate ids
    /// (one posting per `⟨key, tweet⟩` by construction in Algorithm 2).
    pub fn new(mut postings: Vec<Posting>) -> Self {
        postings.sort_by_key(|p| p.id);
        assert!(
            postings.windows(2).all(|w| w[0].id < w[1].id),
            "duplicate tweet id in postings list"
        );
        Self { postings }
    }

    /// The postings, sorted by id.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when there are no postings.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Serializes to the on-DFS byte format: a varint count, then per
    /// posting a varint id-delta (first id is a delta from zero) and a
    /// varint term frequency.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.postings.len() * 3);
        write_varint(&mut out, self.postings.len() as u64);
        let mut prev = 0u64;
        for p in &self.postings {
            write_varint(&mut out, p.id.0 - prev);
            write_varint(&mut out, p.tf as u64);
            prev = p.id.0;
        }
        out
    }

    /// Decodes a list previously produced by [`encode`](Self::encode).
    /// Returns the list and the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let mut pos = 0usize;
        let count = read_varint(bytes, &mut pos)?;
        let mut postings = Vec::with_capacity(count as usize);
        let mut prev = 0u64;
        for _ in 0..count {
            let delta = read_varint(bytes, &mut pos)?;
            let tf = read_varint(bytes, &mut pos)?;
            let id = prev + delta;
            let tf = u32::try_from(tf).map_err(|_| DecodeError::Overflow)?;
            postings.push(Posting { id: TweetId(id), tf });
            prev = id;
        }
        Ok((Self { postings }, pos))
    }
}

impl FromIterator<(u64, u32)> for PostingsList {
    fn from_iter<I: IntoIterator<Item = (u64, u32)>>(iter: I) -> Self {
        Self::new(iter.into_iter().map(|(id, tf)| Posting { id: TweetId(id), tf }).collect())
    }
}

/// Malformed postings bytes (flat or block layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a varint or before a declared payload.
    Truncated,
    /// A term frequency exceeded `u32`, or an id/offset exceeded `u64`.
    Overflow,
    /// A block header field is internally inconsistent (block sizing,
    /// packed widths, payload extents, skip cross-checks).
    BadBlockHeader(&'static str),
    /// Block id ranges are not strictly increasing.
    NonMonotonic,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("postings bytes truncated"),
            DecodeError::Overflow => f.write_str("postings value overflows its type"),
            DecodeError::BadBlockHeader(detail) => {
                write!(f, "inconsistent postings block header: {detail}")
            }
            DecodeError::NonMonotonic => f.write_str("postings block ids not strictly increasing"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError::Truncated);
        }
    }
}

/// Union of sorted postings lists, summing term frequencies for tweets
/// appearing in several lists. This implements both
/// * the per-keyword merge of a keyword's lists across cover cells, and
/// * the OR-semantics union of Algorithm 4/5 (lines 12–14), where the
///   summed tf is the `|q.W ∩ p.W|` occurrence count of Definition 6.
///
/// Generic over how the lists are held (`&[PostingsList]`,
/// `&[Arc<PostingsList>]`, …) so cache-shared lists merge without cloning
/// their postings.
pub fn union_sum<L: std::borrow::Borrow<PostingsList>>(lists: &[L]) -> Vec<(TweetId, u32)> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].borrow().postings.iter().map(|p| (p.id, p.tf)).collect(),
        _ => {
            // k-way merge via a flattened sort: lists are typically short
            // and few; the simple approach beats a heap in practice here.
            let mut all: Vec<(TweetId, u32)> = lists
                .iter()
                .flat_map(|l| l.borrow().postings.iter().map(|p| (p.id, p.tf)))
                .collect();
            all.sort_by_key(|e| e.0);
            let mut out: Vec<(TweetId, u32)> = Vec::with_capacity(all.len());
            for (id, tf) in all {
                match out.last_mut() {
                    Some((last, total)) if *last == id => *total += tf,
                    _ => out.push((id, tf)),
                }
            }
            out
        }
    }
}

/// Intersection across keywords (AND semantics, Algorithm 4/5 lines 9–11):
/// `groups[i]` is the merged `(id, tf)` stream of keyword `i` (one
/// [`union_sum`] per keyword over its cover cells). A tweet survives only
/// if it appears in *every* group; its combined tf is the sum over groups —
/// the bag-model occurrence count of Definition 6.
pub fn intersect_sum(groups: &[Vec<(TweetId, u32)>]) -> Vec<(TweetId, u32)> {
    match groups.len() {
        0 => Vec::new(),
        1 => groups[0].clone(),
        _ => {
            // Start from the smallest group for the cheapest merge-joins.
            let mut order: Vec<usize> = (0..groups.len()).collect();
            order.sort_by_key(|&i| groups[i].len());
            let mut acc = groups[order[0]].clone();
            for &gi in &order[1..] {
                let other = &groups[gi];
                // Adaptive: gallop when one side dwarfs the other (the
                // rare-qualifier ∩ hot-anchor case), linear merge when the
                // sides are comparable.
                if other.len() > 8 * acc.len().max(1) {
                    acc = intersect_gallop(&acc, other);
                } else {
                    let mut merged = Vec::with_capacity(acc.len().min(other.len()));
                    let (mut i, mut j) = (0, 0);
                    while i < acc.len() && j < other.len() {
                        match acc[i].0.cmp(&other[j].0) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                merged.push((acc[i].0, acc[i].1 + other[j].1));
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc = merged;
                }
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
    }
}

/// Two-list intersection via galloping (exponential) search: for each
/// element of the smaller side, gallop in the larger side. Beats the
/// linear merge when one list is much shorter — the common AND-semantics
/// case where a rare qualifier intersects a hot anchor keyword. Results
/// are identical to [`intersect_sum`] on two groups; the `posting_ops`
/// Criterion bench quantifies the crossover.
pub fn intersect_gallop(a: &[(TweetId, u32)], b: &[(TweetId, u32)]) -> Vec<(TweetId, u32)> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &(id, tf) in small {
        // Gallop: find the window [lo, lo + step] containing id.
        let mut step = 1usize;
        while lo + step < large.len() && large[lo + step].0 < id {
            step *= 2;
        }
        let hi = (lo + step + 1).min(large.len());
        match large[lo..hi].binary_search_by_key(&id, |e| e.0) {
            Ok(i) => {
                out.push((id, tf + large[lo + i].1));
                lo += i + 1;
            }
            Err(i) => {
                lo += i;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;

    fn list(pairs: &[(u64, u32)]) -> PostingsList {
        pairs.iter().copied().collect()
    }

    #[test]
    fn new_sorts_by_id() {
        let l = PostingsList::new(vec![
            Posting { id: TweetId(5), tf: 1 },
            Posting { id: TweetId(2), tf: 3 },
        ]);
        let ids: Vec<u64> = l.postings().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate tweet id")]
    fn duplicate_ids_rejected() {
        let _ = list(&[(1, 1), (1, 2)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for pairs in
            [vec![], vec![(1u64, 1u32)], vec![(100, 2), (101, 1), (5000, 40), (u64::MAX / 2, 7)]]
        {
            let l = list(&pairs);
            let bytes = l.encode();
            let (back, consumed) = PostingsList::decode(&bytes).unwrap();
            assert_eq!(back, l);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decode_leaves_trailing_bytes() {
        let l = list(&[(10, 1), (20, 2)]);
        let mut bytes = l.encode();
        let len = bytes.len();
        bytes.extend_from_slice(&[0xFF, 0xFF]);
        let (back, consumed) = PostingsList::decode(&bytes).unwrap();
        assert_eq!(back, l);
        assert_eq!(consumed, len);
    }

    #[test]
    fn decode_rejects_truncation() {
        let l = list(&[(1000, 1), (2000, 2)]);
        let bytes = l.encode();
        assert_eq!(PostingsList::decode(&bytes[..bytes.len() - 1]), Err(DecodeError::Truncated));
        assert_eq!(PostingsList::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn delta_encoding_is_compact() {
        // Dense consecutive ids: ~2 bytes per posting.
        let l: PostingsList = (0..1000u64).map(|i| (1_000_000 + i, 1)).collect();
        assert!(l.encode().len() < 1000 * 3 + 10, "encoded to {} bytes", l.encode().len());
    }

    #[test]
    fn union_sums_overlapping_tfs() {
        let a = list(&[(1, 2), (3, 1), (5, 4)]);
        let b = list(&[(3, 2), (4, 1)]);
        let got = union_sum(&[a, b]);
        let want: Vec<(TweetId, u32)> =
            vec![(TweetId(1), 2), (TweetId(3), 3), (TweetId(4), 1), (TweetId(5), 4)];
        assert_eq!(got, want);
    }

    #[test]
    fn union_edge_cases() {
        assert!(union_sum::<PostingsList>(&[]).is_empty());
        let single = list(&[(7, 9)]);
        assert_eq!(union_sum(std::slice::from_ref(&single)), vec![(TweetId(7), 9)]);
        assert_eq!(union_sum(&[PostingsList::default(), single.clone()]), vec![(TweetId(7), 9)]);
    }

    #[test]
    fn intersect_requires_all_groups() {
        // Paper example shape: query "spicy restaurant"; a tweet with one
        // spicy and two restaurant scores tf 3.
        let spicy = union_sum(&[list(&[(10, 1), (30, 1)])]);
        let restaurant = union_sum(&[list(&[(10, 2), (20, 1)])]);
        let got = intersect_sum(&[spicy, restaurant]);
        assert_eq!(got, vec![(TweetId(10), 3)]);
    }

    #[test]
    fn intersect_edge_cases() {
        assert!(intersect_sum(&[]).is_empty());
        let g = vec![(TweetId(1), 2)];
        assert_eq!(intersect_sum(std::slice::from_ref(&g)), g);
        assert!(intersect_sum(&[g.clone(), vec![]]).is_empty());
        // Three-way.
        let a = vec![(TweetId(1), 1), (TweetId(2), 1), (TweetId(3), 1)];
        let b = vec![(TweetId(2), 2), (TweetId(3), 2)];
        let c = vec![(TweetId(3), 5), (TweetId(9), 1)];
        assert_eq!(intersect_sum(&[a, b, c]), vec![(TweetId(3), 8)]);
    }

    #[test]
    fn gallop_matches_merge_intersection() {
        let a: Vec<(TweetId, u32)> = (0..200u64).map(|i| (TweetId(i * 3), 1)).collect();
        let b: Vec<(TweetId, u32)> = (0..50u64).map(|i| (TweetId(i * 7), 2)).collect();
        let merge = intersect_sum(&[a.clone(), b.clone()]);
        let gallop = intersect_gallop(&a, &b);
        assert_eq!(merge, gallop);
        // Symmetric in argument order.
        assert_eq!(intersect_gallop(&b, &a), gallop);
        // Disjoint and empty cases.
        assert!(intersect_gallop(&a, &[]).is_empty());
        let odd: Vec<(TweetId, u32)> = vec![(TweetId(1), 1), (TweetId(5), 1)];
        let even: Vec<(TweetId, u32)> = vec![(TweetId(2), 1), (TweetId(4), 1)];
        assert!(intersect_gallop(&odd, &even).is_empty());
    }

    /// Reference implementation: the plain two-pointer linear merge the
    /// galloping path replaced, kept only to pin equivalence.
    fn naive_intersect(a: &[(TweetId, u32)], b: &[(TweetId, u32)]) -> Vec<(TweetId, u32)> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    #[test]
    fn gallop_equals_naive_merge_on_randomized_skewed_inputs() {
        // Deterministic xorshift so failures reproduce; sizes span the
        // balanced case (linear-merge branch of intersect_sum) and the
        // heavily skewed case (galloping branch).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let skew = 1 + (round % 40);
            let small_len = (next() % 30) as usize;
            let large_len = small_len * skew + (next() % 50) as usize;
            let mut gen_list = |len: usize, stride: u64| {
                let mut id = 0u64;
                (0..len)
                    .map(|_| {
                        id += 1 + next() % stride;
                        (TweetId(id), (next() % 9) as u32 + 1)
                    })
                    .collect::<Vec<_>>()
            };
            let small = gen_list(small_len, 7);
            let large = gen_list(large_len, 3);
            let want = naive_intersect(&small, &large);
            assert_eq!(intersect_gallop(&small, &large), want, "round {round}");
            assert_eq!(intersect_gallop(&large, &small), want, "round {round} (swapped)");
            // intersect_sum's adaptive dispatch must agree with the naive
            // merge whichever branch the size ratio selects.
            assert_eq!(
                intersect_sum(&[small.clone(), large.clone()]),
                want,
                "round {round} (adaptive)"
            );
        }
    }

    #[test]
    fn gallop_sums_term_frequencies() {
        let a = vec![(TweetId(10), 3)];
        let b = vec![(TweetId(5), 1), (TweetId(10), 4), (TweetId(20), 1)];
        assert_eq!(intersect_gallop(&a, &b), vec![(TweetId(10), 7)]);
    }

    #[test]
    fn union_then_intersect_is_query_shape() {
        // Keyword 1 appears in two cells; keyword 2 in one.
        let k1 = union_sum(&[list(&[(1, 1), (5, 2)]), list(&[(3, 1)])]);
        let k2 = union_sum(&[list(&[(3, 4), (5, 1)])]);
        let and = intersect_sum(&[k1.clone(), k2.clone()]);
        assert_eq!(and, vec![(TweetId(3), 5), (TweetId(5), 3)]);
        // OR = union of the groups' streams (as lists).
        let or = {
            let la: PostingsList = k1.iter().map(|(id, tf)| (id.0, *tf)).collect();
            let lb: PostingsList = k2.iter().map(|(id, tf)| (id.0, *tf)).collect();
            union_sum(&[la, lb])
        };
        assert_eq!(or, vec![(TweetId(1), 1), (TweetId(3), 5), (TweetId(5), 3)]);
    }
}
