//! An IR-tree-style centralized spatial-keyword index (query-time
//! baseline).
//!
//! The paper's related work (Section VII-A) positions the hybrid geohash
//! index against the IR-tree family [Cong et al. 2009, Li et al. 2011]:
//! R-trees whose every node carries an inverted file over the documents
//! below it, so a search can prune subtrees both spatially (MBR vs query
//! circle) and textually (no query term below this node). This module
//! implements that idea in its bulk-loaded form:
//!
//! * a Sort-Tile-Recursive (STR) packed R-tree over post locations;
//! * per-node *term signatures* — the sorted union of term ids present in
//!   the subtree — standing in for the per-node inverted files;
//! * circle search with AND/OR textual pruning, returning the same
//!   `(tweet, matched-occurrences)` candidates the hybrid index's
//!   fetch-and-combine phase produces.
//!
//! The `irtree_vs_hybrid` Criterion bench compares the two retrieval paths
//! on identical corpora and queries.

use tklus_geo::{Cell, DistanceMetric, Point};
use tklus_model::{Post, Semantics, TweetId};
use tklus_text::{TermBag, TermId, TextPipeline, Vocab};

/// R-tree fanout (entries per node).
const FANOUT: usize = 32;

/// A leaf entry: one post with its location and term bag.
struct Entry {
    id: TweetId,
    location: Point,
    terms: TermBag,
}

/// A tree node: leaf (entry range) or internal (child nodes).
struct NodeData {
    mbr: Cell,
    /// Sorted union of term ids in the subtree.
    signature: Vec<TermId>,
    kind: NodeKind,
}

enum NodeKind {
    Leaf { entries: Vec<usize> },
    Internal { children: Vec<usize> },
}

/// The IR-tree: a packed R-tree with per-node term signatures.
///
/// ```
/// use tklus_index::IrTree;
/// use tklus_geo::{DistanceMetric, Point};
/// use tklus_model::{Post, Semantics, TweetId, UserId};
///
/// let here = Point::new_unchecked(43.7, -79.4);
/// let posts = vec![Post::original(TweetId(1), UserId(1), here, "hotel downtown")];
/// let tree = IrTree::build(&posts);
/// let hotel = tree.vocab().get("hotel").unwrap();
/// let (hits, _stats) = tree.search_circle(&here, 5.0, &[hotel], Semantics::Or, DistanceMetric::Euclidean);
/// assert_eq!(hits, vec![(TweetId(1), 1)]);
/// ```
pub struct IrTree {
    entries: Vec<Entry>,
    nodes: Vec<NodeData>,
    root: Option<usize>,
    vocab: Vocab,
}

/// Statistics from one circle search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrSearchStats {
    /// Nodes visited.
    pub nodes_visited: usize,
    /// Subtrees pruned spatially (MBR outside the circle).
    pub pruned_spatial: usize,
    /// Subtrees pruned textually (signature misses the query terms).
    pub pruned_textual: usize,
    /// Leaf entries examined.
    pub entries_examined: usize,
}

impl IrTree {
    /// Bulk loads the tree from posts, tokenizing with the same pipeline
    /// as the hybrid index so term spaces match.
    pub fn build(posts: &[Post]) -> Self {
        let pipeline = TextPipeline::new();
        let mut vocab = Vocab::new();
        let mut entries: Vec<Entry> = posts
            .iter()
            .map(|p| Entry {
                id: p.id,
                location: p.location,
                terms: pipeline.terms(&p.text).iter().map(|t| vocab.intern_occurrence(t)).collect(),
            })
            .collect();
        let mut tree = IrTree { entries: Vec::new(), nodes: Vec::new(), root: None, vocab };
        if entries.is_empty() {
            tree.entries = entries;
            return tree;
        }

        // --- STR packing: sort by longitude, slice, sort slices by
        // latitude, chunk into leaves.
        let n = entries.len();
        let leaves_needed = n.div_ceil(FANOUT);
        let slices = (leaves_needed as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slices);
        entries.sort_by(|a, b| a.location.lon().partial_cmp(&b.location.lon()).expect("finite"));
        let mut leaf_ids: Vec<usize> = Vec::with_capacity(leaves_needed);
        let mut order: Vec<usize> = (0..n).collect();
        // Work over indices so entries stay addressable by index.
        order.sort_by(|&a, &b| {
            entries[a].location.lon().partial_cmp(&entries[b].location.lon()).expect("finite")
        });
        for slice in order.chunks(slice_size) {
            let mut slice: Vec<usize> = slice.to_vec();
            slice.sort_by(|&a, &b| {
                entries[a].location.lat().partial_cmp(&entries[b].location.lat()).expect("finite")
            });
            for chunk in slice.chunks(FANOUT) {
                let node = NodeData {
                    mbr: mbr_of_points(chunk.iter().map(|&i| entries[i].location)),
                    signature: union_signatures(
                        chunk
                            .iter()
                            .map(|&i| entries[i].terms.iter().map(|(t, _)| t).collect::<Vec<_>>()),
                    ),
                    kind: NodeKind::Leaf { entries: chunk.to_vec() },
                };
                tree.nodes.push(node);
                leaf_ids.push(tree.nodes.len() - 1);
            }
        }
        tree.entries = entries;

        // --- Build internal levels bottom-up.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
            for group in level.chunks(FANOUT) {
                let node = NodeData {
                    mbr: mbr_of_cells(group.iter().map(|&i| tree.nodes[i].mbr)),
                    signature: union_signatures(
                        group.iter().map(|&i| tree.nodes[i].signature.clone()),
                    ),
                    kind: NodeKind::Internal { children: group.to_vec() },
                };
                tree.nodes.push(node);
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// The term dictionary (for resolving query keywords).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Number of indexed posts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no posts are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Circle search: all posts within `radius_km` of `center` matching
    /// the query terms under the given semantics, as
    /// `(tweet, matched-occurrence-count)` pairs sorted by tweet id.
    pub fn search_circle(
        &self,
        center: &Point,
        radius_km: f64,
        terms: &[TermId],
        semantics: Semantics,
        metric: DistanceMetric,
    ) -> (Vec<(TweetId, u32)>, IrSearchStats) {
        let mut stats = IrSearchStats::default();
        let mut out = Vec::new();
        if terms.is_empty() {
            return (out, stats);
        }
        let Some(root) = self.root else { return (out, stats) };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            stats.nodes_visited += 1;
            if node.mbr.min_distance_km(center, metric) > radius_km {
                stats.pruned_spatial += 1;
                continue;
            }
            if !signature_matches(&node.signature, terms, semantics) {
                stats.pruned_textual += 1;
                continue;
            }
            match &node.kind {
                NodeKind::Internal { children } => stack.extend(children.iter().copied()),
                NodeKind::Leaf { entries } => {
                    for &ei in entries {
                        stats.entries_examined += 1;
                        let e = &self.entries[ei];
                        if center.distance_km(&e.location, metric) > radius_km {
                            continue;
                        }
                        let qualifies = match semantics {
                            Semantics::And => e.terms.contains_all(terms),
                            Semantics::Or => e.terms.contains_any(terms),
                        };
                        if qualifies {
                            out.push((e.id, e.terms.matched_occurrences(terms)));
                        }
                    }
                }
            }
        }
        out.sort_by_key(|e| e.0);
        (out, stats)
    }
}

fn mbr_of_points<I: Iterator<Item = Point>>(points: I) -> Cell {
    let mut lat_lo = f64::INFINITY;
    let mut lat_hi = f64::NEG_INFINITY;
    let mut lon_lo = f64::INFINITY;
    let mut lon_hi = f64::NEG_INFINITY;
    for p in points {
        lat_lo = lat_lo.min(p.lat());
        lat_hi = lat_hi.max(p.lat());
        lon_lo = lon_lo.min(p.lon());
        lon_hi = lon_hi.max(p.lon());
    }
    Cell::from_bounds(lat_lo, lat_hi, lon_lo, lon_hi)
}

fn mbr_of_cells<I: Iterator<Item = Cell>>(cells: I) -> Cell {
    let mut lat_lo = f64::INFINITY;
    let mut lat_hi = f64::NEG_INFINITY;
    let mut lon_lo = f64::INFINITY;
    let mut lon_hi = f64::NEG_INFINITY;
    for c in cells {
        lat_lo = lat_lo.min(c.lat_lo());
        lat_hi = lat_hi.max(c.lat_hi());
        lon_lo = lon_lo.min(c.lon_lo());
        lon_hi = lon_hi.max(c.lon_hi());
    }
    Cell::from_bounds(lat_lo, lat_hi, lon_lo, lon_hi)
}

fn union_signatures<I: Iterator<Item = Vec<TermId>>>(sets: I) -> Vec<TermId> {
    let mut all: Vec<TermId> = sets.flatten().collect();
    all.sort_unstable();
    all.dedup();
    all
}

fn signature_matches(signature: &[TermId], terms: &[TermId], semantics: Semantics) -> bool {
    let has = |t: &TermId| signature.binary_search(t).is_ok();
    match semantics {
        Semantics::And => terms.iter().all(has),
        Semantics::Or => terms.iter().any(has),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_model::UserId;

    fn post(id: u64, lat: f64, lon: f64, text: &str) -> Post {
        Post::original(TweetId(id), UserId(id), Point::new_unchecked(lat, lon), text)
    }

    fn posts() -> Vec<Post> {
        let mut out = Vec::new();
        // A grid of posts around Toronto, mixed keywords.
        for i in 0..200u64 {
            let lat = 43.5 + (i % 20) as f64 * 0.02;
            let lon = -79.6 + (i / 20) as f64 * 0.03;
            let text = match i % 4 {
                0 => "nice hotel here",
                1 => "pizza place",
                2 => "hotel and pizza combo",
                _ => "random words only",
            };
            out.push(post(i + 1, lat, lon, text));
        }
        // One far-away post.
        out.push(post(999, 48.85, 2.35, "paris hotel"));
        out
    }

    /// Brute-force reference filter.
    fn brute(
        posts: &[Post],
        tree: &IrTree,
        center: &Point,
        radius: f64,
        terms: &[TermId],
        semantics: Semantics,
    ) -> Vec<(TweetId, u32)> {
        let pipeline = TextPipeline::new();
        let mut out = Vec::new();
        for p in posts {
            if center.euclidean_km(&p.location) > radius {
                continue;
            }
            let bag: TermBag =
                pipeline.terms(&p.text).iter().filter_map(|t| tree.vocab().get(t)).collect();
            let ok = match semantics {
                Semantics::And => bag.contains_all(terms),
                Semantics::Or => bag.contains_any(terms),
            };
            if ok {
                out.push((p.id, bag.matched_occurrences(terms)));
            }
        }
        out.sort_by_key(|e| e.0);
        out
    }

    #[test]
    fn matches_brute_force_on_both_semantics() {
        let posts = posts();
        let tree = IrTree::build(&posts);
        let center = Point::new_unchecked(43.7, -79.4);
        let hotel = tree.vocab().get("hotel").unwrap();
        let pizza = tree.vocab().get("pizza").unwrap();
        for radius in [5.0, 20.0, 60.0] {
            for semantics in [Semantics::And, Semantics::Or] {
                let (got, _) = tree.search_circle(
                    &center,
                    radius,
                    &[hotel, pizza],
                    semantics,
                    DistanceMetric::Euclidean,
                );
                let want = brute(&posts, &tree, &center, radius, &[hotel, pizza], semantics);
                assert_eq!(got, want, "radius {radius} {semantics:?}");
            }
        }
    }

    #[test]
    fn spatial_pruning_skips_remote_subtrees() {
        let posts = posts();
        let tree = IrTree::build(&posts);
        let center = Point::new_unchecked(43.7, -79.4);
        let hotel = tree.vocab().get("hotel").unwrap();
        let (got, stats) =
            tree.search_circle(&center, 10.0, &[hotel], Semantics::Or, DistanceMetric::Euclidean);
        assert!(!got.is_empty());
        assert!(got.iter().all(|(id, _)| id.0 != 999), "Paris post excluded");
        assert!(stats.entries_examined < posts.len(), "leaf pruning happened: {stats:?}");
    }

    #[test]
    fn textual_pruning_fires_for_absent_terms() {
        let posts = posts();
        let tree = IrTree::build(&posts);
        let center = Point::new_unchecked(43.7, -79.4);
        // A term that exists only in the Paris post: searching near
        // Toronto prunes everything textually or spatially.
        let paris = tree.vocab().get("pari").or_else(|| tree.vocab().get("paris")).unwrap();
        let (got, stats) =
            tree.search_circle(&center, 50.0, &[paris], Semantics::Or, DistanceMetric::Euclidean);
        assert!(got.is_empty());
        assert!(stats.pruned_textual > 0, "{stats:?}");
        // The leaf holding the Paris outlier has a transatlantic MBR (an
        // artefact of STR packing with outliers), so a handful of entries
        // may be touched — but textual pruning must kill the bulk.
        assert!(stats.entries_examined <= FANOUT, "most leaves pruned: {stats:?}");
    }

    #[test]
    fn empty_inputs() {
        let tree = IrTree::build(&[]);
        assert!(tree.is_empty());
        let center = Point::new_unchecked(0.0, 0.0);
        let (got, _) = tree.search_circle(
            &center,
            10.0,
            &[TermId(0)],
            Semantics::Or,
            DistanceMetric::Euclidean,
        );
        assert!(got.is_empty());
        // Non-empty tree, empty term list.
        let tree = IrTree::build(&posts());
        let (got, _) =
            tree.search_circle(&center, 10.0, &[], Semantics::Or, DistanceMetric::Euclidean);
        assert!(got.is_empty());
    }

    #[test]
    fn occurrence_counts_use_bag_model() {
        let posts = vec![post(1, 43.7, -79.4, "pizza pizza pizza hotel")];
        let tree = IrTree::build(&posts);
        let center = Point::new_unchecked(43.7, -79.4);
        let pizza = tree.vocab().get("pizza").unwrap();
        let hotel = tree.vocab().get("hotel").unwrap();
        let (got, _) = tree.search_circle(
            &center,
            1.0,
            &[pizza, hotel],
            Semantics::And,
            DistanceMetric::Euclidean,
        );
        assert_eq!(got, vec![(TweetId(1), 4)]);
    }
}
