//! Saving and loading a [`HybridIndex`] as a directory on the real
//! filesystem.
//!
//! Layout (all text formats are line-oriented and human-inspectable):
//!
//! ```text
//! <dir>/meta.tsv          format version, geohash_len, node count
//! <dir>/vocab.tsv         term_id \t frequency \t term   (ascending ids)
//! <dir>/forward.tsv       geohash \t term_id \t partition \t offset \t len
//! <dir>/checksums.tsv     partition file \t crc32 (hex)
//! <dir>/partitions/part-NNNNN    raw concatenated postings bytes
//! ```
//!
//! Loading rebuilds the simulated DFS (same node placement: partition `i`
//! on node `i % nodes`), the dictionary (ids are positions, so interning
//! in file order reproduces them), and the forward directory. Every
//! partition file is verified against its recorded CRC32 before it is
//! trusted, the `format` line must match [`PERSIST_FORMAT_VERSION`], and
//! files in `partitions/` that are not partition files are skipped and
//! reported rather than aborting the load (editor swap files, `.DS_Store`,
//! and the like are not corruption).

use crate::block::PostingsFormat;
use crate::forward::{ForwardIndex, PostingsLocation};
use crate::inverted::HybridIndex;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tklus_geo::Geohash;
use tklus_storage::{crc32, Dfs, DfsConfig};
use tklus_text::{TermId, Vocab};

/// On-disk format version written to (and required from) `meta.tsv`.
///
/// Version history:
/// * **1** — flat delta-varint postings only; no `postings_format` line.
///   Still readable: a v1 directory loads with
///   [`PostingsFormat::Flat`] (the only encoding v1 ever wrote).
/// * **2** — adds the mandatory `postings_format` meta line
///   (`flat` | `block`) and the block-compressed partition encoding.
pub const PERSIST_FORMAT_VERSION: u32 = 2;

/// The one format version before [`PERSIST_FORMAT_VERSION`] that this
/// build still reads (compat path).
const PERSIST_FORMAT_VERSION_V1: u32 = 1;

/// Errors from index persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed metadata/dictionary/directory line.
    Corrupt(String),
    /// The directory was written by an incompatible format version.
    VersionMismatch {
        /// The `format` value found in `meta.tsv` (or a description of its
        /// absence).
        found: String,
        /// The version this build reads.
        expected: u32,
    },
    /// A partition file's bytes do not match their recorded checksum.
    PartitionCorrupt {
        /// The partition file name.
        file: String,
        /// CRC32 recorded in `checksums.tsv`.
        expected: u32,
        /// CRC32 of the bytes actually on disk.
        actual: u32,
    },
    /// A partition file recorded in `checksums.tsv` is absent on disk.
    MissingPartition {
        /// The missing partition file name.
        file: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index io error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt index directory: {m}"),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "index format version mismatch: directory has {found}, this build reads {expected}"
            ),
            PersistError::PartitionCorrupt { file, expected, actual } => write!(
                f,
                "partition {file} is corrupt: checksum {actual:#010x} does not match recorded {expected:#010x}"
            ),
            PersistError::MissingPartition { file } => {
                write!(f, "partition {file} is recorded in checksums.tsv but missing on disk")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(message: impl Into<String>) -> PersistError {
    PersistError::Corrupt(message.into())
}

/// What a load found beyond the index itself: partitions verified and any
/// stray files skipped in `partitions/`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Partition files loaded and checksum-verified.
    pub partitions_loaded: usize,
    /// Files in `partitions/` that are not partition files, skipped.
    pub skipped_files: Vec<String>,
}

/// Writes the index to `dir` (created if missing; existing files are
/// overwritten).
pub fn save_dir(index: &HybridIndex, dir: &Path) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir.join("partitions"))?;

    // meta.tsv — format version first, so incompatible readers stop before
    // interpreting anything else.
    let mut meta = BufWriter::new(std::fs::File::create(dir.join("meta.tsv"))?);
    writeln!(meta, "format\t{PERSIST_FORMAT_VERSION}")?;
    writeln!(meta, "postings_format\t{}", index.postings_format())?;
    writeln!(meta, "geohash_len\t{}", index.geohash_len())?;
    writeln!(meta, "nodes\t{}", index.dfs().node_count())?;
    meta.flush()?;

    // vocab.tsv — ascending term id order.
    let mut vocab = BufWriter::new(std::fs::File::create(dir.join("vocab.tsv"))?);
    for (id, term, freq) in index.vocab().iter() {
        debug_assert!(!term.contains('\t') && !term.contains('\n'), "terms are tokenizer output");
        writeln!(vocab, "{}\t{}\t{}", id.0, freq, term)?;
    }
    vocab.flush()?;

    // forward.tsv — already sorted by (geohash, term).
    let mut fwd = BufWriter::new(std::fs::File::create(dir.join("forward.tsv"))?);
    for ((gh, term), loc) in index.forward().iter() {
        writeln!(fwd, "{}\t{}\t{}\t{}\t{}", gh, term.0, loc.partition, loc.offset, loc.len)?;
    }
    fwd.flush()?;

    // Partition files, with a CRC32 per file recorded in checksums.tsv.
    let mut sums = BufWriter::new(std::fs::File::create(dir.join("checksums.tsv"))?);
    let mut names = index.dfs().list();
    names.sort();
    for name in names {
        let bytes = index.dfs().read_all(&name).map_err(|e| corrupt(e.to_string()))?;
        let file = name.rsplit('/').next().expect("partition file name");
        writeln!(sums, "{}\t{:08x}", file, crc32(&bytes))?;
        std::fs::write(dir.join("partitions").join(file), bytes)?;
    }
    sums.flush()?;
    Ok(())
}

/// Loads an index previously written by [`save_dir`], discarding the
/// [`LoadReport`].
pub fn load_dir(dir: &Path) -> Result<HybridIndex, PersistError> {
    load_dir_with_report(dir).map(|(index, _)| index)
}

/// Loads an index previously written by [`save_dir`], reporting what was
/// verified and what was skipped.
pub fn load_dir_with_report(dir: &Path) -> Result<(HybridIndex, LoadReport), PersistError> {
    // meta.tsv — the format line gates everything else.
    let meta = std::fs::read_to_string(dir.join("meta.tsv"))?;
    let mut format: Option<String> = None;
    let mut postings_format: Option<String> = None;
    let mut geohash_len: Option<usize> = None;
    let mut nodes: Option<usize> = None;
    for line in meta.lines() {
        match line.split_once('\t') {
            Some(("format", v)) => format = Some(v.to_string()),
            Some(("postings_format", v)) => postings_format = Some(v.to_string()),
            Some(("geohash_len", v)) => {
                geohash_len = Some(v.parse().map_err(|_| corrupt("geohash_len"))?)
            }
            Some(("nodes", v)) => nodes = Some(v.parse().map_err(|_| corrupt("nodes"))?),
            _ => return Err(corrupt(format!("meta line {line:?}"))),
        }
    }
    let version = match format {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n == PERSIST_FORMAT_VERSION || n == PERSIST_FORMAT_VERSION_V1 => n,
            _ => {
                return Err(PersistError::VersionMismatch {
                    found: v,
                    expected: PERSIST_FORMAT_VERSION,
                })
            }
        },
        None => {
            return Err(PersistError::VersionMismatch {
                found: "no format line".to_string(),
                expected: PERSIST_FORMAT_VERSION,
            })
        }
    };
    // v1 directories predate the postings_format line and only ever held
    // flat-encoded partitions; v2 must say which encoding it wrote.
    let postings_format = match (version, postings_format) {
        (PERSIST_FORMAT_VERSION_V1, None) => PostingsFormat::Flat,
        (PERSIST_FORMAT_VERSION_V1, Some(_)) => {
            return Err(corrupt("format 1 directory carries a postings_format line"))
        }
        (_, Some(v)) => v.parse::<PostingsFormat>().map_err(corrupt)?,
        (_, None) => return Err(corrupt("missing postings_format")),
    };
    let geohash_len = geohash_len.ok_or_else(|| corrupt("missing geohash_len"))?;
    let nodes = nodes.ok_or_else(|| corrupt("missing nodes"))?;

    // vocab.tsv — ids must be dense and ascending.
    let mut vocab = Vocab::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("vocab.tsv"))?);
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.splitn(3, '\t');
        let id: u32 =
            parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| corrupt("vocab id"))?;
        let freq: u64 =
            parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| corrupt("vocab freq"))?;
        let term = parts.next().ok_or_else(|| corrupt("vocab term"))?;
        let assigned = vocab.intern(term);
        if assigned.0 != id {
            return Err(corrupt(format!(
                "vocab ids not dense: expected {id}, assigned {}",
                assigned.0
            )));
        }
        vocab.add_occurrences(assigned, freq);
    }

    // forward.tsv
    let mut entries = Vec::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("forward.tsv"))?);
    for line in reader.lines() {
        let line = line?;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(corrupt(format!("forward line {line:?}")));
        }
        let gh = fields[0].parse().map_err(|_| corrupt("forward geohash"))?;
        let term: u32 = fields[1].parse().map_err(|_| corrupt("forward term"))?;
        let partition: u32 = fields[2].parse().map_err(|_| corrupt("forward partition"))?;
        let offset: u64 = fields[3].parse().map_err(|_| corrupt("forward offset"))?;
        let len: u32 = fields[4].parse().map_err(|_| corrupt("forward len"))?;
        entries.push(((gh, TermId(term)), PostingsLocation { partition, offset, len }));
    }
    let forward = ForwardIndex::from_sorted(entries);

    // checksums.tsv — the set of partition files we expect, and what their
    // bytes must hash to.
    let mut expected: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    let sums = std::fs::read_to_string(dir.join("checksums.tsv"))?;
    for line in sums.lines() {
        let (file, sum) =
            line.split_once('\t').ok_or_else(|| corrupt(format!("checksum line {line:?}")))?;
        let sum =
            u32::from_str_radix(sum, 16).map_err(|_| corrupt(format!("checksum value {sum:?}")))?;
        expected.insert(file.to_string(), sum);
    }

    // Partition files back onto a fresh simulated DFS. Stray files are
    // skipped and reported; recorded-but-absent files are an error.
    let mut report = LoadReport::default();
    let dfs = Dfs::new(DfsConfig { nodes, ..DfsConfig::default() });
    let mut names: Vec<String> = std::fs::read_dir(dir.join("partitions"))?
        .map(|e| Ok(e?.file_name().to_string_lossy().into_owned()))
        .collect::<Result<_, PersistError>>()?;
    names.sort();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for name in names {
        let idx: u32 = match name.strip_prefix("part-").and_then(|s| s.parse().ok()) {
            Some(idx) => idx,
            None => {
                report.skipped_files.push(name);
                continue;
            }
        };
        let bytes = std::fs::read(dir.join("partitions").join(&name))?;
        let recorded = *expected
            .get(&name)
            .ok_or_else(|| corrupt(format!("partition {name} has no checksum entry")))?;
        let actual = crc32(&bytes);
        if actual != recorded {
            return Err(PersistError::PartitionCorrupt { file: name, expected: recorded, actual });
        }
        seen.insert(name);
        dfs.create_on(&HybridIndex::partition_file(idx), bytes, idx as usize % nodes)
            .map_err(|e| corrupt(e.to_string()))?;
        report.partitions_loaded += 1;
    }
    if let Some(missing) = expected.keys().find(|file| !seen.contains(*file)) {
        return Err(PersistError::MissingPartition { file: missing.clone() });
    }
    Ok((HybridIndex::new(forward, vocab, dfs, geohash_len, postings_format), report))
}

/// On-disk format version of a *sharded* index directory (`manifest.tsv`).
///
/// Version history continues from [`PERSIST_FORMAT_VERSION`]:
/// * **3** — a sharded directory: `manifest.tsv` names the shard count and
///   the `N-1` geohash boundaries of the contiguous prefix ranges, and each
///   shard's index lives in a `shard-NNN/` subdirectory in the v2
///   monolithic layout. A v2 (or v1) monolithic directory — no
///   `manifest.tsv` — still loads via [`load_sharded_dir_with_report`] as a
///   single full-range shard.
pub const SHARDED_FORMAT_VERSION: u32 = 3;

/// The `shard-NNN` subdirectory name for shard `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// Writes a sharded index directory (format v3): `manifest.tsv` plus one
/// v2 subdirectory per shard. `boundaries` are the `shards.len() - 1`
/// geohash range boundaries, sorted ascending; boundary `i` is the first
/// cell of shard `i + 1`'s half-open range.
pub fn save_sharded_dir(
    shards: &[HybridIndex],
    boundaries: &[Geohash],
    dir: &Path,
) -> Result<(), PersistError> {
    let refs: Vec<&HybridIndex> = shards.iter().collect();
    save_sharded_dir_refs(&refs, boundaries, dir)
}

/// [`save_sharded_dir`] over borrowed indexes — the entry point for
/// callers whose indexes live inside engines (e.g. the sharded engine's
/// own save path, which persists per-shard bound sidecars alongside).
pub fn save_sharded_dir_refs(
    shards: &[&HybridIndex],
    boundaries: &[Geohash],
    dir: &Path,
) -> Result<(), PersistError> {
    if boundaries.len() + 1 != shards.len() {
        return Err(corrupt(format!(
            "{} shards need {} boundaries, got {}",
            shards.len(),
            shards.len().saturating_sub(1),
            boundaries.len()
        )));
    }
    std::fs::create_dir_all(dir)?;
    let mut manifest = BufWriter::new(std::fs::File::create(dir.join("manifest.tsv"))?);
    writeln!(manifest, "format\t{SHARDED_FORMAT_VERSION}")?;
    writeln!(manifest, "shards\t{}", shards.len())?;
    for b in boundaries {
        writeln!(manifest, "boundary\t{b}")?;
    }
    manifest.flush()?;
    for (i, shard) in shards.iter().enumerate() {
        save_dir(shard, &dir.join(shard_dir_name(i)))?;
    }
    Ok(())
}

/// Loads a sharded (v3) *or* monolithic (v2/v1) index directory as a list
/// of shard indexes plus their range boundaries. A monolithic directory
/// loads as one shard covering the whole keyspace (no boundaries) — the
/// forward-compat path that lets every pre-sharding index keep working.
/// Per-shard [`LoadReport`]s are merged; skipped-file names are prefixed
/// with their shard subdirectory.
pub fn load_sharded_dir_with_report(
    dir: &Path,
) -> Result<(Vec<HybridIndex>, Vec<Geohash>, LoadReport), PersistError> {
    let manifest_path = dir.join("manifest.tsv");
    if !manifest_path.exists() {
        // Monolithic v2/v1 directory: one full-range shard.
        let (index, report) = load_dir_with_report(dir)?;
        return Ok((vec![index], Vec::new(), report));
    }
    let manifest = std::fs::read_to_string(&manifest_path)?;
    let mut format: Option<String> = None;
    let mut shard_count: Option<usize> = None;
    let mut boundaries: Vec<Geohash> = Vec::new();
    for line in manifest.lines() {
        match line.split_once('\t') {
            Some(("format", v)) => format = Some(v.to_string()),
            Some(("shards", v)) => {
                shard_count = Some(v.parse().map_err(|_| corrupt("manifest shards"))?)
            }
            Some(("boundary", v)) => {
                boundaries.push(v.parse().map_err(|_| corrupt("manifest boundary"))?)
            }
            _ => return Err(corrupt(format!("manifest line {line:?}"))),
        }
    }
    match format {
        Some(v) if v.parse::<u32>() == Ok(SHARDED_FORMAT_VERSION) => {}
        Some(v) => {
            return Err(PersistError::VersionMismatch {
                found: v,
                expected: SHARDED_FORMAT_VERSION,
            })
        }
        None => {
            return Err(PersistError::VersionMismatch {
                found: "no format line".to_string(),
                expected: SHARDED_FORMAT_VERSION,
            })
        }
    }
    let shard_count = shard_count.ok_or_else(|| corrupt("missing shards line"))?;
    if shard_count == 0 {
        return Err(corrupt("sharded directory with zero shards"));
    }
    if boundaries.len() + 1 != shard_count {
        return Err(corrupt(format!(
            "{shard_count} shards need {} boundaries, manifest has {}",
            shard_count - 1,
            boundaries.len()
        )));
    }
    if boundaries.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("manifest boundaries are not sorted"));
    }
    let mut shards = Vec::with_capacity(shard_count);
    let mut report = LoadReport::default();
    for i in 0..shard_count {
        let name = shard_dir_name(i);
        let (index, shard_report) = load_dir_with_report(&dir.join(&name))?;
        report.partitions_loaded += shard_report.partitions_loaded;
        report
            .skipped_files
            .extend(shard_report.skipped_files.into_iter().map(|f| format!("{name}/{f}")));
        shards.push(index);
    }
    Ok((shards, boundaries, report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use crate::build::{build_index, IndexBuildConfig};
    use tklus_geo::{DistanceMetric, Point};
    use tklus_model::{Post, TweetId, UserId};

    fn posts() -> Vec<Post> {
        (0..300u64)
            .map(|i| {
                let lat = 43.6 + (i % 15) as f64 * 0.01;
                let lon = -79.5 + (i % 11) as f64 * 0.01;
                let text = match i % 3 {
                    0 => "hotel by the lake",
                    1 => "pizza pizza downtown",
                    _ => "coffee and games",
                };
                Post::original(TweetId(i + 1), UserId(i % 40), Point::new_unchecked(lat, lon), text)
            })
            .collect()
    }

    fn load_err(dir: &Path) -> PersistError {
        match load_dir(dir) {
            Err(e) => e,
            Ok(_) => panic!("load of a damaged directory must fail"),
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tklus-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn saved_dir(name: &str) -> std::path::PathBuf {
        let (index, _) = build_index(&posts(), &IndexBuildConfig::default());
        let dir = tmp_dir(name);
        save_dir(&index, &dir).unwrap();
        dir
    }

    /// The first non-empty partition file in `dir` (smallest name).
    fn first_partition(dir: &Path) -> std::path::PathBuf {
        let mut names: Vec<_> = std::fs::read_dir(dir.join("partitions"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
            .iter()
            .map(|n| dir.join("partitions").join(n))
            .find(|p| std::fs::metadata(p).unwrap().len() > 0)
            .expect("a non-empty partition exists")
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let (index, report) = build_index(&posts(), &IndexBuildConfig::default());
        let dir = tmp_dir("roundtrip");
        save_dir(&index, &dir).unwrap();
        let (loaded, load_report) = load_dir_with_report(&dir).unwrap();
        assert!(load_report.partitions_loaded > 0);
        assert!(load_report.skipped_files.is_empty());

        assert_eq!(loaded.geohash_len(), index.geohash_len());
        assert_eq!(loaded.forward().len(), index.forward().len());
        assert_eq!(loaded.vocab().len(), index.vocab().len());
        assert_eq!(loaded.dfs().total_bytes(), report.index_bytes);

        // Same postings for every keyword over a query region.
        let center = Point::new_unchecked(43.68, -79.45);
        for kw in ["hotel", "pizza", "coffe", "game"] {
            let t1 = index.vocab().get(kw);
            let t2 = loaded.vocab().get(kw);
            assert_eq!(t1, t2, "{kw}: term ids must be identical");
            let Some(t) = t1 else { continue };
            let f1 = index.fetch_for_query(&center, 30.0, &[t], DistanceMetric::Euclidean);
            let f2 = loaded.fetch_for_query(&center, 30.0, &[t], DistanceMetric::Euclidean);
            assert_eq!(f1.per_keyword, f2.per_keyword, "{kw}");
        }
        // Term frequencies survive (Table II reproducibility from a loaded
        // index).
        let top1: Vec<_> = index.vocab().top_terms(5);
        let top2: Vec<_> = loaded.vocab().top_terms(5);
        assert_eq!(top1, top2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = match load_dir(Path::new("/nonexistent/tklus-index")) {
            Err(e) => e,
            Ok(_) => panic!("missing directory must not load"),
        };
        assert!(matches!(err, PersistError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_meta_detected() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(dir.join("partitions")).unwrap();
        std::fs::write(dir.join("meta.tsv"), "format\t1\nbogus\t4\n").unwrap();
        std::fs::write(dir.join("vocab.tsv"), "").unwrap();
        std::fs::write(dir.join("forward.tsv"), "").unwrap();
        std::fs::write(dir.join("checksums.tsv"), "").unwrap();
        let err = match load_dir(&dir) {
            Err(e) => e,
            Ok(_) => panic!("corrupt meta must not load"),
        };
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let dir = saved_dir("version");
        let meta = std::fs::read_to_string(dir.join("meta.tsv")).unwrap();
        std::fs::write(dir.join("meta.tsv"), meta.replace("format\t2", "format\t99")).unwrap();
        let err = load_err(&dir);
        assert!(
            matches!(&err, PersistError::VersionMismatch { found, expected: 2 } if found == "99"),
            "{err}"
        );
        // A directory with no format line at all is also a version mismatch
        // (pre-versioning layout), not a parse error.
        std::fs::write(dir.join("meta.tsv"), meta.replace("format\t2\n", "")).unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::VersionMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_directory_loads_as_flat_compat() {
        // A v1 directory is exactly a flat-format save minus the
        // postings_format meta line: rewrite the meta that way and the
        // compat path must load it, flagged flat, answering queries
        // identically to the in-memory flat index.
        let (index, _) = build_index(
            &posts(),
            &IndexBuildConfig {
                postings_format: crate::block::PostingsFormat::Flat,
                ..Default::default()
            },
        );
        let dir = tmp_dir("v1-compat");
        save_dir(&index, &dir).unwrap();
        let meta = std::fs::read_to_string(dir.join("meta.tsv")).unwrap();
        std::fs::write(
            dir.join("meta.tsv"),
            meta.replace("format\t2", "format\t1").replace("postings_format\tflat\n", ""),
        )
        .unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.postings_format(), crate::block::PostingsFormat::Flat);
        let center = Point::new_unchecked(43.68, -79.45);
        let hotel = index.vocab().get("hotel").unwrap();
        let f1 = index.fetch_for_query(&center, 30.0, &[hotel], DistanceMetric::Euclidean);
        let f2 = loaded.fetch_for_query(&center, 30.0, &[hotel], DistanceMetric::Euclidean);
        assert_eq!(f1.per_keyword, f2.per_keyword);

        // A v1 directory claiming a postings_format is contradictory: v1
        // never wrote one. Typed corruption, not a silent misparse.
        let meta = std::fs::read_to_string(dir.join("meta.tsv")).unwrap();
        std::fs::write(dir.join("meta.tsv"), format!("{meta}postings_format\tblock\n")).unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_requires_valid_postings_format() {
        let dir = saved_dir("v2-format-line");
        let meta = std::fs::read_to_string(dir.join("meta.tsv")).unwrap();
        // Unknown encoding name.
        std::fs::write(
            dir.join("meta.tsv"),
            meta.replace("postings_format\tblock", "postings_format\tgzip"),
        )
        .unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        // Missing line entirely.
        std::fs::write(dir.join("meta.tsv"), meta.replace("postings_format\tblock\n", "")).unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrip_preserves_postings_format() {
        for format in [crate::block::PostingsFormat::Flat, crate::block::PostingsFormat::Block] {
            let (index, _) = build_index(
                &posts(),
                &IndexBuildConfig { postings_format: format, ..Default::default() },
            );
            let dir = tmp_dir(&format!("fmt-{format}"));
            save_dir(&index, &dir).unwrap();
            let loaded = load_dir(&dir).unwrap();
            assert_eq!(loaded.postings_format(), format);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn truncated_meta_is_typed() {
        let dir = saved_dir("truncated-meta");
        // Keep only the first two lines: nodes is gone.
        let meta = std::fs::read_to_string(dir.join("meta.tsv")).unwrap();
        let short: String = meta.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(dir.join("meta.tsv"), short).unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_partition_is_typed() {
        let dir = saved_dir("bitflip");
        let part = first_partition(&dir);
        let mut bytes = std::fs::read(&part).unwrap();
        assert!(!bytes.is_empty());
        bytes[0] ^= 0x40;
        std::fs::write(&part, bytes).unwrap();
        let err = load_err(&dir);
        assert!(matches!(err, PersistError::PartitionCorrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_partition_is_typed() {
        let dir = saved_dir("missing-part");
        let part = first_partition(&dir);
        let name = part.file_name().unwrap().to_string_lossy().into_owned();
        std::fs::remove_file(&part).unwrap();
        let err = load_err(&dir);
        assert!(matches!(&err, PersistError::MissingPartition { file } if *file == name), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_roundtrip_preserves_each_shard() {
        let all = posts();
        let mid = all.len() / 2;
        let (left, _) = build_index(&all[..mid], &IndexBuildConfig::default());
        let (right, _) = build_index(&all[mid..], &IndexBuildConfig::default());
        let boundary = tklus_geo::encode(&Point::new_unchecked(43.68, -79.45), 4).unwrap();
        let dir = tmp_dir("sharded-roundtrip");
        save_sharded_dir(&[left, right], &[boundary], &dir).unwrap();
        let (shards, boundaries, report) = load_sharded_dir_with_report(&dir).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(boundaries, vec![boundary]);
        assert!(report.partitions_loaded > 0);
        // Each shard answers identically to a fresh build over its slice.
        let (fresh, _) = build_index(&all[..mid], &IndexBuildConfig::default());
        let center = Point::new_unchecked(43.68, -79.45);
        let hotel = fresh.vocab().get("hotel").unwrap();
        let f1 = fresh.fetch_for_query(&center, 30.0, &[hotel], DistanceMetric::Euclidean);
        let f2 = shards[0].fetch_for_query(&center, 30.0, &[hotel], DistanceMetric::Euclidean);
        assert_eq!(f1.per_keyword, f2.per_keyword);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn monolithic_dir_loads_as_single_shard() {
        let dir = saved_dir("mono-as-shard");
        let (shards, boundaries, report) = load_sharded_dir_with_report(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        assert!(boundaries.is_empty());
        assert!(report.partitions_loaded > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_manifest_errors_are_typed() {
        let (index, _) = build_index(&posts(), &IndexBuildConfig::default());
        let boundary = tklus_geo::encode(&Point::new_unchecked(43.68, -79.45), 4).unwrap();
        // Boundary count must match the shard count.
        let dir = tmp_dir("sharded-bad-save");
        let err = save_sharded_dir(&[index], &[boundary], &dir).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);

        // A wrong manifest format version is a typed mismatch.
        let (a, _) = build_index(&posts(), &IndexBuildConfig::default());
        let dir = tmp_dir("sharded-bad-version");
        save_sharded_dir(&[a], &[], &dir).unwrap();
        let load_sharded_err = |dir: &Path| match load_sharded_dir_with_report(dir) {
            Err(e) => e,
            Ok(_) => panic!("load of a damaged sharded directory must fail"),
        };
        let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).unwrap();
        std::fs::write(dir.join("manifest.tsv"), manifest.replace("format\t3", "format\t9"))
            .unwrap();
        let err = load_sharded_err(&dir);
        assert!(
            matches!(&err, PersistError::VersionMismatch { found, expected: 3 } if found == "9"),
            "{err}"
        );
        // A manifest claiming more shards than it has boundaries for.
        std::fs::write(dir.join("manifest.tsv"), "format\t3\nshards\t2\n").unwrap();
        let err = load_sharded_err(&dir);
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_files_are_skipped_and_reported() {
        let dir = saved_dir("stray");
        std::fs::write(dir.join("partitions").join(".DS_Store"), b"junk").unwrap();
        std::fs::write(dir.join("partitions").join("part-00000.swp"), b"vim").unwrap();
        let (loaded, report) = load_dir_with_report(&dir).unwrap();
        assert!(!loaded.forward().is_empty());
        assert_eq!(report.skipped_files, vec![".DS_Store", "part-00000.swp"]);
        assert!(report.partitions_loaded > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
