//! Saving and loading a [`HybridIndex`] as a directory on the real
//! filesystem.
//!
//! Layout (all text formats are line-oriented and human-inspectable):
//!
//! ```text
//! <dir>/meta.tsv          geohash_len, node count
//! <dir>/vocab.tsv         term_id \t frequency \t term   (ascending ids)
//! <dir>/forward.tsv       geohash \t term_id \t partition \t offset \t len
//! <dir>/partitions/part-NNNNN    raw concatenated postings bytes
//! ```
//!
//! Loading rebuilds the simulated DFS (same node placement: partition `i`
//! on node `i % nodes`), the dictionary (ids are positions, so interning
//! in file order reproduces them), and the forward directory.

use crate::forward::{ForwardIndex, PostingsLocation};
use crate::inverted::HybridIndex;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tklus_storage::{Dfs, DfsConfig};
use tklus_text::{TermId, Vocab};

/// Errors from index persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed metadata/dictionary/directory line.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index io error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt index directory: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(message: impl Into<String>) -> PersistError {
    PersistError::Corrupt(message.into())
}

/// Writes the index to `dir` (created if missing; existing files are
/// overwritten).
pub fn save_dir(index: &HybridIndex, dir: &Path) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir.join("partitions"))?;

    // meta.tsv
    let mut meta = BufWriter::new(std::fs::File::create(dir.join("meta.tsv"))?);
    writeln!(meta, "geohash_len\t{}", index.geohash_len())?;
    writeln!(meta, "nodes\t{}", index.dfs().node_count())?;
    meta.flush()?;

    // vocab.tsv — ascending term id order.
    let mut vocab = BufWriter::new(std::fs::File::create(dir.join("vocab.tsv"))?);
    for (id, term, freq) in index.vocab().iter() {
        debug_assert!(!term.contains('\t') && !term.contains('\n'), "terms are tokenizer output");
        writeln!(vocab, "{}\t{}\t{}", id.0, freq, term)?;
    }
    vocab.flush()?;

    // forward.tsv — already sorted by (geohash, term).
    let mut fwd = BufWriter::new(std::fs::File::create(dir.join("forward.tsv"))?);
    for ((gh, term), loc) in index.forward().iter() {
        writeln!(fwd, "{}\t{}\t{}\t{}\t{}", gh, term.0, loc.partition, loc.offset, loc.len)?;
    }
    fwd.flush()?;

    // Partition files.
    for name in index.dfs().list() {
        let bytes = index.dfs().read_all(&name).map_err(|e| corrupt(e.to_string()))?;
        let file = name.rsplit('/').next().expect("partition file name");
        std::fs::write(dir.join("partitions").join(file), bytes)?;
    }
    Ok(())
}

/// Loads an index previously written by [`save_dir`].
pub fn load_dir(dir: &Path) -> Result<HybridIndex, PersistError> {
    // meta.tsv
    let meta = std::fs::read_to_string(dir.join("meta.tsv"))?;
    let mut geohash_len: Option<usize> = None;
    let mut nodes: Option<usize> = None;
    for line in meta.lines() {
        match line.split_once('\t') {
            Some(("geohash_len", v)) => {
                geohash_len = Some(v.parse().map_err(|_| corrupt("geohash_len"))?)
            }
            Some(("nodes", v)) => nodes = Some(v.parse().map_err(|_| corrupt("nodes"))?),
            _ => return Err(corrupt(format!("meta line {line:?}"))),
        }
    }
    let geohash_len = geohash_len.ok_or_else(|| corrupt("missing geohash_len"))?;
    let nodes = nodes.ok_or_else(|| corrupt("missing nodes"))?;

    // vocab.tsv — ids must be dense and ascending.
    let mut vocab = Vocab::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("vocab.tsv"))?);
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.splitn(3, '\t');
        let id: u32 =
            parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| corrupt("vocab id"))?;
        let freq: u64 =
            parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| corrupt("vocab freq"))?;
        let term = parts.next().ok_or_else(|| corrupt("vocab term"))?;
        let assigned = vocab.intern(term);
        if assigned.0 != id {
            return Err(corrupt(format!(
                "vocab ids not dense: expected {id}, assigned {}",
                assigned.0
            )));
        }
        vocab.add_occurrences(assigned, freq);
    }

    // forward.tsv
    let mut entries = Vec::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("forward.tsv"))?);
    for line in reader.lines() {
        let line = line?;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(corrupt(format!("forward line {line:?}")));
        }
        let gh = fields[0].parse().map_err(|_| corrupt("forward geohash"))?;
        let term: u32 = fields[1].parse().map_err(|_| corrupt("forward term"))?;
        let partition: u32 = fields[2].parse().map_err(|_| corrupt("forward partition"))?;
        let offset: u64 = fields[3].parse().map_err(|_| corrupt("forward offset"))?;
        let len: u32 = fields[4].parse().map_err(|_| corrupt("forward len"))?;
        entries.push(((gh, TermId(term)), PostingsLocation { partition, offset, len }));
    }
    let forward = ForwardIndex::from_sorted(entries);

    // Partition files back onto a fresh simulated DFS.
    let dfs = Dfs::new(DfsConfig { nodes, ..DfsConfig::default() });
    let mut names: Vec<String> = std::fs::read_dir(dir.join("partitions"))?
        .map(|e| Ok(e?.file_name().to_string_lossy().into_owned()))
        .collect::<Result<_, PersistError>>()?;
    names.sort();
    for name in names {
        let idx: u32 = name
            .strip_prefix("part-")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt(format!("partition file name {name:?}")))?;
        let bytes = std::fs::read(dir.join("partitions").join(&name))?;
        dfs.create_on(&HybridIndex::partition_file(idx), bytes, idx as usize % nodes)
            .map_err(|e| corrupt(e.to_string()))?;
    }
    Ok(HybridIndex::new(forward, vocab, dfs, geohash_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, IndexBuildConfig};
    use tklus_geo::{DistanceMetric, Point};
    use tklus_model::{Post, TweetId, UserId};

    fn posts() -> Vec<Post> {
        (0..300u64)
            .map(|i| {
                let lat = 43.6 + (i % 15) as f64 * 0.01;
                let lon = -79.5 + (i % 11) as f64 * 0.01;
                let text = match i % 3 {
                    0 => "hotel by the lake",
                    1 => "pizza pizza downtown",
                    _ => "coffee and games",
                };
                Post::original(TweetId(i + 1), UserId(i % 40), Point::new_unchecked(lat, lon), text)
            })
            .collect()
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tklus-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let (index, report) = build_index(&posts(), &IndexBuildConfig::default());
        let dir = tmp_dir("roundtrip");
        save_dir(&index, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();

        assert_eq!(loaded.geohash_len(), index.geohash_len());
        assert_eq!(loaded.forward().len(), index.forward().len());
        assert_eq!(loaded.vocab().len(), index.vocab().len());
        assert_eq!(loaded.dfs().total_bytes(), report.index_bytes);

        // Same postings for every keyword over a query region.
        let center = Point::new_unchecked(43.68, -79.45);
        for kw in ["hotel", "pizza", "coffe", "game"] {
            let t1 = index.vocab().get(kw);
            let t2 = loaded.vocab().get(kw);
            assert_eq!(t1, t2, "{kw}: term ids must be identical");
            let Some(t) = t1 else { continue };
            let f1 = index.fetch_for_query(&center, 30.0, &[t], DistanceMetric::Euclidean);
            let f2 = loaded.fetch_for_query(&center, 30.0, &[t], DistanceMetric::Euclidean);
            assert_eq!(f1.per_keyword, f2.per_keyword, "{kw}");
        }
        // Term frequencies survive (Table II reproducibility from a loaded
        // index).
        let top1: Vec<_> = index.vocab().top_terms(5);
        let top2: Vec<_> = loaded.vocab().top_terms(5);
        assert_eq!(top1, top2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = match load_dir(Path::new("/nonexistent/tklus-index")) {
            Err(e) => e,
            Ok(_) => panic!("missing directory must not load"),
        };
        assert!(matches!(err, PersistError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_meta_detected() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(dir.join("partitions")).unwrap();
        std::fs::write(dir.join("meta.tsv"), "bogus\t4\n").unwrap();
        std::fs::write(dir.join("vocab.tsv"), "").unwrap();
        std::fs::write(dir.join("forward.tsv"), "").unwrap();
        let err = match load_dir(&dir) {
            Err(e) => e,
            Ok(_) => panic!("corrupt meta must not load"),
        };
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
