//! `tklus` — command-line interface to the TkLUS reproduction.
//!
//! ```text
//! tklus generate    --posts 20000 --seed 123 --out corpus.tsv
//! tklus build-index --corpus corpus.tsv --out index_dir/
//! tklus stats       [--corpus corpus.tsv | --posts 20000 --seed 123]
//! tklus query       --lat 43.6839 --lon -79.3736 --radius 10 \
//!                   --keywords hotel,spa --k 5 --ranking max --semantics or \
//!                   [--corpus corpus.tsv] [--index index_dir/] \
//!                   [--since T --until T] [--now T --half-life H] \
//!                   [--timeout-ms MS] [--max-cells N] \
//!                   [--cover-cache N --postings-cache N --thread-cache N]
//! ```
//!
//! Corpora travel between invocations as TSV files (`tklus generate --out`)
//! or are regenerated deterministically from `--posts`/`--seed`; indexes
//! can be built once (`build-index`) and reloaded for querying
//! (`query --index`).
//!
//! # Exit codes
//!
//! Failures map to distinct exit codes so scripts can branch on the
//! failure class (DESIGN.md §10):
//!
//! * `1` — general failure (corpus file I/O, ETL);
//! * `2` — usage error (bad flags, invalid query parameters);
//! * `3` — index directory persistence failure (save/load, corruption,
//!   format-version mismatch);
//! * `4` — metadata storage failure during engine build or query;
//! * `5` — inverted-index failure during query;
//! * `6` — degraded (budget-truncated) result under `--fail-on-degraded`;
//! * `7` — write-ahead-log failure (`ingest --wal`: append, replay, or
//!   unhealable corruption; DESIGN.md §15).
//!
//! `tklus serve-http` exits `0` on a clean SIGTERM/SIGINT drain — shed or
//! abandoned requests were each answered typed, so a drained shutdown is
//! success, not failure; the usual codes above apply to startup errors
//! (bad flags `2`, WAL open `7`, bind failures `1`).
//!
//! A *degraded* query result (budget exhausted) is not a failure by
//! default: the CLI prints the partial top-k with a completeness note and
//! exits `0`. Pass `--fail-on-degraded` to make scripts treat the partial
//! answer as an error — the result is still printed, but the process
//! exits `6`.

mod args;
mod serve;
mod serve_http;

use args::{ArgError, Args};
use std::path::PathBuf;
use tklus_core::{
    BoundsMode, CacheConfig, Completeness, EngineConfig, EngineError, Ranking, TklusEngine,
};
use tklus_gen::{generate_corpus, load_tsv, save_tsv, GenConfig};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery};
use tklus_shard::{ShardCompleteness, ShardError, ShardedEngine, ShardedOutcome};

/// A CLI failure, carrying the class that decides the process exit code.
#[derive(Debug)]
enum CliError {
    /// File I/O and other environment failures — exit 1.
    General(String),
    /// Flag and query-parameter errors — exit 2.
    Usage(String),
    /// Index directory save/load failures — exit 3.
    Persist(tklus_index::PersistError),
    /// Engine failures — exit 4 (storage) or 5 (index).
    Engine(EngineError),
    /// Degraded result rejected by `--fail-on-degraded` — exit 6. The
    /// partial answer was already printed; this only flips the exit code.
    Degraded {
        /// Cover cells examined before the budget expired.
        cells_processed: usize,
        /// Cover cells a complete answer would have examined.
        cells_total: usize,
    },
    /// Write-ahead-log failures (`ingest --wal`) — exit 7.
    Wal(tklus_wal::WalError),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::General(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Persist(_) => 3,
            CliError::Engine(EngineError::Storage(_)) => 4,
            CliError::Engine(EngineError::Index(_)) => 5,
            CliError::Degraded { .. } => 6,
            CliError::Wal(_) => 7,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::General(msg) | CliError::Usage(msg) => f.write_str(msg),
            CliError::Persist(e) => write!(f, "index persistence failed: {e}"),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Degraded { cells_processed, cells_total } => write!(
                f,
                "degraded result ({cells_processed}/{cells_total} cover cells) \
                 rejected by --fail-on-degraded"
            ),
            CliError::Wal(e) => write!(f, "write-ahead log failure: {e}"),
        }
    }
}

impl From<tklus_wal::WalError> for CliError {
    fn from(e: tklus_wal::WalError) -> Self {
        CliError::Wal(e)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<tklus_index::PersistError> for CliError {
    fn from(e: tklus_index::PersistError) -> Self {
        CliError::Persist(e)
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}

impl From<ShardError> for CliError {
    fn from(e: ShardError) -> Self {
        match e {
            ShardError::Persist(p) => CliError::Persist(p),
            ShardError::Engine(en) => CliError::Engine(en),
            ShardError::Plan(msg) => CliError::General(msg),
        }
    }
}

const USAGE: &str = "usage:
  tklus generate    --posts N [--seed S] --out FILE.tsv
  tklus ingest      --json FILE.jsonl [--out FILE.tsv] [--wal DIR]
                    [--compact]
  tklus build-index [--corpus FILE.tsv | --posts N --seed S]
                    --out DIR [--geohash-len 4] [--nodes 3]
                    [--postings-format flat|block]
  tklus shard-split [--corpus FILE.tsv | --posts N --seed S]
                    --out DIR [--shards 4] [--geohash-len 4] [--nodes 3]
                    [--postings-format flat|block]
  tklus stats       [--corpus FILE.tsv] [--posts N] [--seed S]
                    [--metrics] [--format prometheus|json]
  tklus query       --lat L --lon L --radius KM --keywords a,b[,c]
                    [--k K] [--ranking sum|max|max-global] [--semantics and|or]
                    [--corpus FILE.tsv] [--posts N] [--seed S] [--index DIR]
                    [--shards N] [--since T --until T] [--now T --half-life H]
                    [--timeout-ms MS] [--max-cells N] [--fail-on-degraded]
                    [--threads N] [--cover-cache N] [--postings-cache N]
                    [--thread-cache N] [--metrics] [--postings-format flat|block]
  tklus serve       [--corpus FILE.tsv] [--posts N] [--seed S]
                    [--mode sim|threaded] [--requests N] [--load-seed S]
                    [--mean-interarrival-ms MS] [--deadline-ms MS]
                    [--mean-service-ms MS] [--workers N] [--queue-capacity N]
                    [--est-service-ms MS] [--degrade-threshold N --degrade-cells N]
                    [--drain-at-ms MS] [--drain-deadline-ms MS]
                    [--stats-every MS] [--wal DIR]
                    [--compact-threshold N] [--compact-interval-ms MS]
  tklus serve-http  [--corpus FILE.tsv] [--posts N] [--seed S]
                    [--addr HOST:PORT] [--wal DIR] [--threads N]
                    [--compact-threshold N] [--compact-interval-ms MS]
                    [--workers N] [--queue-capacity N] [--deadline-ms MS]
                    [--est-service-ms MS]
                    [--degrade-threshold N --degrade-cells N]
                    [--max-connections N] [--max-header-bytes B]
                    [--max-body-bytes B] [--read-timeout-ms MS]
                    [--write-timeout-ms MS] [--max-batch N]
                    [--drain-timeout-ms MS]";

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let rest: Vec<String> = argv.collect();
    let result = match command.as_str() {
        "generate" => cmd_generate(rest),
        "ingest" => cmd_ingest(rest),
        "build-index" => cmd_build_index(rest),
        "shard-split" => cmd_shard_split(rest),
        "stats" => cmd_stats(rest),
        "query" => cmd_query(rest),
        "serve" => serve::cmd_serve(rest),
        "serve-http" => serve_http::cmd_serve_http(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}\n{USAGE}"))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// Loads `--corpus FILE` if given, else generates from `--posts`/`--seed`.
fn corpus_from(args: &Args) -> Result<Corpus, CliError> {
    if let Some(path) = args.get_str("corpus") {
        return load_tsv(&PathBuf::from(path)).map_err(|e| CliError::General(e.to_string()));
    }
    let posts: usize = args.get_or("posts", 20_000)?;
    let seed: u64 = args.get_or("seed", 0x7B1D5)?;
    Ok(generate_corpus(&GenConfig {
        original_posts: posts,
        users: (posts / 3).max(50),
        seed,
        ..GenConfig::default()
    }))
}

/// Parses `--postings-format flat|block` (defaults to the build default,
/// block; DESIGN.md §13).
fn postings_format_from(args: &Args) -> Result<tklus_index::PostingsFormat, CliError> {
    match args.get_str("postings-format") {
        None => Ok(tklus_index::PostingsFormat::default()),
        Some("flat") => Ok(tklus_index::PostingsFormat::Flat),
        Some("block") => Ok(tklus_index::PostingsFormat::Block),
        Some(other) => {
            Err(ArgError(format!("--postings-format must be flat|block, got {other:?}")).into())
        }
    }
}

fn cmd_generate(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&["posts", "seed", "out"])?;
    let out: String = args.require("out")?;
    let corpus = corpus_from(&args)?;
    save_tsv(&corpus, &PathBuf::from(&out)).map_err(|e| CliError::General(e.to_string()))?;
    println!("wrote {} posts by {} users to {out}", corpus.len(), corpus.user_count());
    Ok(())
}

fn cmd_ingest(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&["json", "out", "wal", "compact"])?;
    let json: String = args.require("json")?;
    let out = args.get_str("out").map(str::to_string);
    let wal = args.get_str("wal").map(str::to_string);
    if out.is_none() && wal.is_none() {
        return Err(ArgError("ingest needs --out FILE.tsv and/or --wal DIR".to_string()).into());
    }
    let file = std::fs::File::open(&json).map_err(|e| CliError::General(format!("{json}: {e}")))?;
    let (corpus, report) =
        tklus_gen::etl_json(file).map_err(|e| CliError::General(e.to_string()))?;
    println!(
        "etl: {} lines -> {} loaded ({} no location, {} bad location, {} malformed, {} duplicate)",
        report.lines,
        report.loaded,
        report.dropped_no_location,
        report.dropped_bad_location,
        report.dropped_malformed,
        report.dropped_duplicate
    );
    if let Some(out) = out {
        save_tsv(&corpus, &PathBuf::from(&out)).map_err(|e| CliError::General(e.to_string()))?;
        println!("wrote {} posts -> {out}", corpus.len());
    }
    if let Some(dir) = wal {
        ingest_into_wal(&corpus, &dir, args.get_flag("compact")?)?;
    }
    Ok(())
}

/// Appends `corpus` into the crash-safe WAL store at `dir` (creating it on
/// first use, replaying any existing log first). Posts already in the
/// store — this command is safe to re-run after a crash — count as
/// duplicates, not failures.
fn ingest_into_wal(corpus: &Corpus, dir: &str, compact: bool) -> Result<(), CliError> {
    use std::sync::Arc;
    use tklus_wal::{IngestStore, StdFs, StoreConfig, WalError, WalFs};
    let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(dir)?);
    let (store, open) = IngestStore::open(fs, StoreConfig::default())?;
    println!(
        "wal: opened {dir} at generation {} ({} segments scanned, {} records replayed, \
         {} sealed + {} live posts{})",
        open.generation,
        open.recovery.segments_scanned,
        open.recovery.records_replayed,
        open.sealed_posts,
        open.live_posts,
        match open.recovery.truncated_bytes {
            0 => String::new(),
            n => format!(", healed a {n}-byte torn tail"),
        }
    );
    let mut acked = 0usize;
    let mut duplicates = 0usize;
    for post in corpus.posts() {
        match store.ingest(post.clone()) {
            Ok(_) => acked += 1,
            Err(WalError::DuplicateTweet(_)) => duplicates += 1,
            Err(e) => return Err(e.into()),
        }
    }
    println!("wal: acked {acked} posts ({duplicates} duplicates skipped)");
    if compact {
        let sealed = store.compact()?;
        println!(
            "wal: compaction {} (generation {}, {} posts sealed)",
            if sealed { "sealed the live set" } else { "had nothing to seal" },
            store.generation(),
            store.acked_posts(),
        );
    }
    Ok(())
}

fn cmd_build_index(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&[
        "corpus",
        "posts",
        "seed",
        "out",
        "geohash-len",
        "nodes",
        "postings-format",
    ])?;
    let out: String = args.require("out")?;
    let corpus = corpus_from(&args)?;
    let config = tklus_index::IndexBuildConfig {
        geohash_len: args.get_or("geohash-len", 4)?,
        nodes: args.get_or("nodes", 3)?,
        postings_format: postings_format_from(&args)?,
        ..tklus_index::IndexBuildConfig::default()
    };
    let (index, report) = tklus_index::build_index(corpus.posts(), &config);
    tklus_index::save_dir(&index, &PathBuf::from(&out))?;
    println!(
        "built index over {} posts in {:?}: {} keys, {} postings, {} bytes -> {out}",
        report.posts, report.total_time, report.keys, report.postings, report.index_bytes
    );
    Ok(())
}

/// Builds per-shard indexes under a mass-balanced geohash-range plan and
/// writes a sharded (format v3) index directory: `manifest.tsv` plus one
/// `shard-NNN/` v2 index per range. `tklus query --index DIR` detects the
/// manifest and runs scatter-gather automatically.
fn cmd_shard_split(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&[
        "corpus",
        "posts",
        "seed",
        "out",
        "shards",
        "geohash-len",
        "nodes",
        "postings-format",
    ])?;
    let out: String = args.require("out")?;
    let n: usize = args.get_or("shards", 4)?;
    if n == 0 {
        return Err(ArgError("--shards must be at least 1".to_string()).into());
    }
    let corpus = corpus_from(&args)?;
    let config = tklus_index::IndexBuildConfig {
        geohash_len: args.get_or("geohash-len", 4)?,
        nodes: args.get_or("nodes", 3)?,
        postings_format: postings_format_from(&args)?,
        ..tklus_index::IndexBuildConfig::default()
    };
    let plan = ShardedEngine::plan_for(&corpus, n, config.geohash_len);
    let mut shard_posts: Vec<Vec<Post>> = (0..plan.n_shards()).map(|_| Vec::new()).collect();
    for post in corpus.posts() {
        let sid = tklus_geo::encode(&post.location, config.geohash_len)
            .map(|cell| plan.shard_of(cell).0)
            .unwrap_or(0);
        shard_posts[sid].push(post.clone());
    }
    // Build full shard engines (not bare indexes): the engine path also
    // computes each shard's Definition 11 bound table, which try_save_dir
    // persists as a bounds.tsv sidecar so a reloaded router skips shards
    // exactly as this build would.
    let engine_config = EngineConfig { index: config, ..EngineConfig::default() };
    let sharded = ShardedEngine::try_build_with(&corpus, plan.clone(), &|_| engine_config.clone())?;
    sharded.try_save_dir(&PathBuf::from(&out))?;
    println!(
        "split {} posts into {} shards (with Definition 11 bound sidecars) -> {out}",
        corpus.len(),
        plan.n_shards(),
    );
    for (i, posts) in shard_posts.iter().enumerate() {
        let range_end =
            plan.boundaries().get(i).map(|b| format!("< {b}")).unwrap_or_else(|| "..".to_string());
        println!(
            "  {} {:>8} posts  range {}",
            tklus_index::shard_dir_name(i),
            posts.len(),
            range_end
        );
    }
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&["corpus", "posts", "seed", "metrics", "format"])?;
    let corpus = corpus_from(&args)?;
    let (engine, report) = TklusEngine::try_build(&corpus, &EngineConfig::default())?;
    if args.get_flag("metrics")? {
        // Registry exposition (DESIGN.md §12): on a freshly built engine
        // the query counters are zero, but the storage counters already
        // carry the build's page traffic.
        let snap = engine
            .metrics_snapshot()
            .ok_or_else(|| CliError::General("engine built with metrics disabled".into()))?;
        match args.get_str("format").unwrap_or("prometheus") {
            "prometheus" | "prom" => print!("{}", snap.render_prometheus()),
            "json" => println!("{}", snap.render_json()),
            other => {
                return Err(
                    ArgError(format!("--format must be prometheus|json, got {other:?}")).into()
                )
            }
        }
        return Ok(());
    }
    println!("corpus: {} posts, {} users", corpus.len(), corpus.user_count());
    let replies = corpus.posts().iter().filter(|p| p.is_reply()).count();
    println!("  replies/forwards: {replies}");
    println!("index: built in {:?}", report.total_time);
    println!("  <geohash, term> keys: {}", report.keys);
    println!("  postings:             {}", report.postings);
    println!("  inverted bytes (DFS): {}", report.index_bytes);
    println!("  forward bytes (RAM):  {}", engine.index().forward().size_bytes());
    println!("  distinct terms:       {}", report.distinct_terms);
    println!("top-10 keywords:");
    for (rank, (term, freq)) in engine.index().vocab().top_terms(10).into_iter().enumerate() {
        println!(
            "  {:>2}. {:<16} {freq}",
            rank + 1,
            engine.index().vocab().term(term).unwrap_or("?")
        );
    }
    Ok(())
}

fn cmd_query(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&[
        "lat",
        "lon",
        "radius",
        "keywords",
        "k",
        "ranking",
        "semantics",
        "corpus",
        "posts",
        "seed",
        "index",
        "shards",
        "since",
        "until",
        "now",
        "half-life",
        "timeout-ms",
        "max-cells",
        "fail-on-degraded",
        "threads",
        "cover-cache",
        "postings-cache",
        "thread-cache",
        "metrics",
        "postings-format",
    ])?;
    let lat: f64 = args.require("lat")?;
    let lon: f64 = args.require("lon")?;
    let location = Point::new(lat, lon).map_err(|e| ArgError(e.to_string()))?;
    let radius: f64 = args.require("radius")?;
    let keywords: Vec<String> = args
        .require::<String>("keywords")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let k: usize = args.get_or("k", 5)?;
    let semantics = match args.get_str("semantics").unwrap_or("or") {
        "and" | "AND" => Semantics::And,
        "or" | "OR" => Semantics::Or,
        other => return Err(ArgError(format!("--semantics must be and|or, got {other:?}")).into()),
    };
    let ranking = match args.get_str("ranking").unwrap_or("max") {
        "sum" => Ranking::Sum,
        "max" => Ranking::Max(BoundsMode::HotKeywords),
        "max-global" => Ranking::Max(BoundsMode::Global),
        other => {
            return Err(
                ArgError(format!("--ranking must be sum|max|max-global, got {other:?}")).into()
            )
        }
    };

    let mut query = TklusQuery::new(location, radius, keywords, k, semantics)
        .map_err(|e| ArgError(e.to_string()))?;
    match (args.get::<u64>("since")?, args.get::<u64>("until")?) {
        (None, None) => {}
        (since, until) => {
            query = query
                .with_time_range(since.unwrap_or(0), until.unwrap_or(u64::MAX))
                .map_err(|e| ArgError(e.to_string()))?;
        }
    }
    if let Some(now) = args.get::<u64>("now")? {
        let half_life: u64 = args.require("half-life")?;
        query = query.with_recency(now, half_life).map_err(|e| ArgError(e.to_string()))?;
    }
    // Per-query budget: exhausting it degrades the result (exit 0 with a
    // completeness note) rather than failing.
    if let Some(ms) = args.get::<u64>("timeout-ms")? {
        query = query.with_timeout_ms(ms);
    }
    if let Some(cells) = args.get::<usize>("max-cells")? {
        query = query.with_max_cells(cells);
    }

    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".to_string()).into());
    }

    // Per-layer query-cache budgets; 0 (the default) disables a layer.
    let caches = CacheConfig {
        cover: args.get_or("cover-cache", 0)?,
        postings: args.get_or("postings-cache", 0)?,
        thread: args.get_or("thread-cache", 0)?,
    };

    let corpus = corpus_from(&args)?;
    // `--postings-format` only shapes a freshly built engine; with
    // `--index` the loaded directory dictates the layout.
    let index_config = tklus_index::IndexBuildConfig {
        postings_format: postings_format_from(&args)?,
        ..tklus_index::IndexBuildConfig::default()
    };
    let engine_config = EngineConfig {
        hot_keywords: 200,
        parallelism: threads,
        caches,
        index: index_config,
        ..EngineConfig::default()
    };
    // Scatter-gather path: `--shards N` over a freshly built corpus, or a
    // `--index` directory carrying a sharded (format v3) manifest.
    let shards_flag = args.get::<usize>("shards")?;
    let index_dir = args.get_str("index").map(PathBuf::from);
    let is_sharded_dir = index_dir.as_ref().is_some_and(|d| d.join("manifest.tsv").exists());
    if shards_flag.is_some() || is_sharded_dir {
        if shards_flag.is_some() && index_dir.is_some() {
            return Err(ArgError(
                "--shards conflicts with --index: an index directory's shard count comes \
                 from its manifest (build one with `tklus shard-split`)"
                    .to_string(),
            )
            .into());
        }
        let sharded = match index_dir {
            Some(dir) => {
                eprintln!("loading sharded index from {} ...", dir.display());
                ShardedEngine::try_load_dir(&dir, &corpus, &engine_config)?
            }
            None => {
                let n = shards_flag.unwrap_or(1).max(1);
                eprintln!("building {n}-shard engine over {} posts ...", corpus.len());
                ShardedEngine::try_build(&corpus, n, &engine_config)?
            }
        };
        let outcome = sharded.query(&query, ranking);
        return print_sharded_outcome(&args, &query, &sharded, outcome, lat, lon, radius, k);
    }

    let engine = match args.get_str("index") {
        Some(dir) => {
            eprintln!("loading index from {dir} ...");
            let (index, report) = tklus_index::load_dir_with_report(&PathBuf::from(dir))?;
            for stray in &report.skipped_files {
                eprintln!("warning: skipped stray file in index dir: {stray}");
            }
            TklusEngine::try_from_index(index, &corpus, &engine_config)?
        }
        None => {
            eprintln!("building engine over {} posts ...", corpus.len());
            TklusEngine::try_build(&corpus, &engine_config)?.0
        }
    };
    let outcome = engine.try_query(&query, ranking)?;
    let (top, stats) = (outcome.users, outcome.stats);

    println!(
        "top-{k} local users for {:?} within {radius} km of ({lat}, {lon}) [{}]:",
        query.keywords, query.semantics
    );
    if top.is_empty() {
        println!("  (no qualifying users)");
    }
    for (rank, r) in top.iter().enumerate() {
        println!("  #{:<3} {:<12} score {:.4}", rank + 1, r.user.to_string(), r.score);
    }
    let mut degraded = None;
    if let Completeness::Degraded { cells_processed, cells_total } = outcome.completeness {
        println!(
            "note: degraded result — budget expired after {cells_processed}/{cells_total} \
             cover cells; the ranking is exact over the cells processed"
        );
        degraded = Some(CliError::Degraded { cells_processed, cells_total });
    }
    println!(
        "stats: {} candidates, {} in radius, {} threads built, {} pruned, {} metadata page reads, {:.2} ms",
        stats.candidates,
        stats.in_radius,
        stats.threads_built,
        stats.threads_pruned,
        stats.metadata_page_reads,
        stats.elapsed.as_secs_f64() * 1e3
    );
    // Per-stage span breakdown (DESIGN.md §12). Under Max ranking the
    // scoring stage reads 0: scoring is interleaved with thread
    // construction and attributed to `threads`.
    let st = &stats.stages;
    if *st != tklus_core::StageTimings::default() {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "stages: cover {:.2} ms, fetch {:.2} ms, combine {:.2} ms, threads {:.2} ms, \
             scoring {:.2} ms, topk {:.2} ms",
            ms(st.cover),
            ms(st.fetch),
            ms(st.combine),
            ms(st.threads),
            ms(st.scoring),
            ms(st.topk)
        );
    }
    if caches != CacheConfig::default() {
        let cs = engine.cache_stats();
        println!(
            "caches: cover {}/{} hit ({:.0}%), postings {}/{} ({:.0}%), thread {}/{} ({:.0}%)",
            cs.cover.hits,
            cs.cover.hits + cs.cover.misses,
            cs.cover.hit_rate() * 100.0,
            cs.postings.hits,
            cs.postings.hits + cs.postings.misses,
            cs.postings.hit_rate() * 100.0,
            cs.thread.hits,
            cs.thread.hits + cs.thread.misses,
            cs.thread.hit_rate() * 100.0,
        );
    }
    if args.get_flag("metrics")? {
        if let Some(snap) = engine.metrics_snapshot() {
            print!("-- metrics --\n{}", snap.render_prometheus());
        }
    }
    // The result (printed above) stands either way; the flag only decides
    // whether scripts see a partial answer as exit 6 instead of 0.
    match degraded {
        Some(e) if args.get_flag("fail-on-degraded")? => Err(e),
        _ => Ok(()),
    }
}

/// Prints a scatter-gather answer in the same shape as the monolithic
/// output, plus a `shards:` summary line (fanout, bound-skips, failures).
#[allow(clippy::too_many_arguments)]
fn print_sharded_outcome(
    args: &Args,
    query: &TklusQuery,
    engine: &ShardedEngine,
    outcome: ShardedOutcome,
    lat: f64,
    lon: f64,
    radius: f64,
    k: usize,
) -> Result<(), CliError> {
    println!(
        "top-{k} local users for {:?} within {radius} km of ({lat}, {lon}) [{}]:",
        query.keywords, query.semantics
    );
    if outcome.users.is_empty() {
        println!("  (no qualifying users)");
    }
    for (rank, r) in outcome.users.iter().enumerate() {
        println!("  #{:<3} {:<12} score {:.4}", rank + 1, r.user.to_string(), r.score);
    }
    let skipped: Vec<String> = outcome.skipped_by_bound.iter().map(|s| s.to_string()).collect();
    println!(
        "shards: {} total, fanout {}, skipped-by-bound {}{}",
        engine.n_shards(),
        outcome.fanout,
        skipped.len(),
        if skipped.is_empty() { String::new() } else { format!(" ({})", skipped.join(", ")) }
    );
    let mut degraded = None;
    if let ShardCompleteness::Degraded { ref failed_shards, cells_processed, cells_total } =
        outcome.completeness
    {
        if failed_shards.is_empty() {
            println!(
                "note: degraded result — budget expired after {cells_processed}/{cells_total} \
                 cover cells; the ranking is exact over the cells processed"
            );
        } else {
            let names: Vec<String> = failed_shards.iter().map(|s| s.to_string()).collect();
            println!(
                "note: degraded result — shard(s) {} failed; the ranking is exact over the \
                 healthy shards' data",
                names.join(", ")
            );
        }
        degraded = Some(CliError::Degraded { cells_processed, cells_total });
    }
    let stats = &outcome.stats;
    println!(
        "stats: {} candidates, {} in radius, {} threads built, {} pruned, {} metadata page reads, {:.2} ms",
        stats.candidates,
        stats.in_radius,
        stats.threads_built,
        stats.threads_pruned,
        stats.metadata_page_reads,
        stats.elapsed.as_secs_f64() * 1e3
    );
    if args.get_flag("metrics")? {
        print!("-- metrics --\n{}", engine.metrics_snapshot().render_prometheus());
    }
    match degraded {
        Some(e) if args.get_flag("fail-on-degraded")? => Err(e),
        _ => Ok(()),
    }
}
