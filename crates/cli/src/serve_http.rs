//! `tklus serve-http` — run the real-socket HTTP front-end (DESIGN.md
//! §16) over an engine built from a corpus, until SIGTERM/SIGINT.
//!
//! The process prints the bound address (`listening on http://...`) once
//! the listener is up — pass `--addr 127.0.0.1:0` to let the OS pick a
//! port and scrape it from that line. On SIGTERM or SIGINT the server
//! stops accepting, drains (answering every in-flight request, typed),
//! prints the drain accounting, and exits `0` — a clean shutdown is not
//! an error, however much work was abandoned at the deadline.
//!
//! With `--wal DIR`, `POST /ingest` writes land in the crash-safe WAL
//! store (DESIGN.md §15) through the admission queue's priority lane,
//! and a background compactor seals the memtable incrementally once it
//! crosses `--compact-threshold` live posts (polling every
//! `--compact-interval-ms`). On shutdown the compactor is stopped before
//! the drain's final seal. Without `--wal`, ingest answers a typed 503
//! `NotConfigured`.

use crate::args::Args;
use crate::{corpus_from, CliError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tklus_core::{EngineConfig, TklusEngine};
use tklus_http::{serve, HttpConfig, ParserConfig, WalSink};
use tklus_serve::{IngestSink, ServeConfig, TklusServer};

/// Set by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers via raw `signal(2)` — std exposes no
/// signal API and the workspace takes no external crates, but an
/// async-signal-safe atomic store is all a drain trigger needs.
#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {
    // No signals to hook; the process runs until killed.
}

fn parse_serve_config(args: &Args) -> Result<ServeConfig, CliError> {
    let defaults = ServeConfig::default();
    let degrade =
        match (args.get::<usize>("degrade-threshold")?, args.get::<usize>("degrade-cells")?) {
            (None, None) => defaults.degrade,
            (Some(queue_threshold), Some(max_cells)) => {
                Some(tklus_serve::DegradePolicy { queue_threshold, max_cells })
            }
            _ => {
                return Err(crate::args::ArgError(
                    "--degrade-threshold and --degrade-cells must be given together".into(),
                )
                .into())
            }
        };
    let cfg = ServeConfig {
        workers: args.get_or("workers", defaults.workers)?,
        queue_capacity: args.get_or("queue-capacity", defaults.queue_capacity)?,
        default_deadline_ms: args.get_or("deadline-ms", defaults.default_deadline_ms)?,
        est_service_ms: args.get_or("est-service-ms", defaults.est_service_ms)?,
        degrade,
        breaker: Default::default(),
    };
    cfg.validate().map_err(CliError::Usage)?;
    Ok(cfg)
}

fn parse_http_config(args: &Args) -> Result<HttpConfig, CliError> {
    let defaults = HttpConfig::default();
    let parser_defaults = ParserConfig::default();
    let cfg = HttpConfig {
        addr: args.get_str("addr").unwrap_or("127.0.0.1:8080").to_string(),
        max_connections: args.get_or("max-connections", defaults.max_connections)?,
        parser: ParserConfig {
            max_header_bytes: args.get_or("max-header-bytes", parser_defaults.max_header_bytes)?,
            max_body_bytes: args.get_or("max-body-bytes", parser_defaults.max_body_bytes)?,
        },
        read_timeout_ms: args.get_or("read-timeout-ms", defaults.read_timeout_ms)?,
        write_timeout_ms: args.get_or("write-timeout-ms", defaults.write_timeout_ms)?,
        max_batch: args.get_or("max-batch", defaults.max_batch)?,
        drain_timeout_ms: args.get_or("drain-timeout-ms", defaults.drain_timeout_ms)?,
    };
    cfg.validate().map_err(CliError::Usage)?;
    Ok(cfg)
}

/// `tklus serve-http` entry point.
pub fn cmd_serve_http(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&[
        "corpus",
        "posts",
        "seed",
        "addr",
        "workers",
        "queue-capacity",
        "deadline-ms",
        "est-service-ms",
        "degrade-threshold",
        "degrade-cells",
        "max-connections",
        "max-header-bytes",
        "max-body-bytes",
        "read-timeout-ms",
        "write-timeout-ms",
        "max-batch",
        "drain-timeout-ms",
        "wal",
        "compact-threshold",
        "compact-interval-ms",
        "threads",
    ])?;
    let serve_cfg = parse_serve_config(&args)?;
    let http_cfg = parse_http_config(&args)?;
    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err(crate::args::ArgError("--threads must be at least 1".to_string()).into());
    }

    let corpus = corpus_from(&args)?;
    eprintln!("building engine over {} posts ...", corpus.len());
    let config = EngineConfig { parallelism: threads, ..EngineConfig::default() };
    let engine = Arc::new(TklusEngine::try_build(&corpus, &config)?.0);

    // Optional durable write path: open (and replay) the WAL store before
    // the listener exists, so a bound port means writes are accepted.
    let mut wal_store: Option<Arc<tklus_wal::IngestStore>> = None;
    let sink: Option<Arc<dyn IngestSink>> = match args.get_str("wal") {
        Some(dir) => {
            use tklus_wal::{IngestStore, StdFs, StoreConfig, WalFs};
            let defaults = StoreConfig::default();
            let store_cfg = StoreConfig {
                compact_threshold: args.get_or("compact-threshold", defaults.compact_threshold)?,
                compact_interval: Duration::from_millis(
                    args.get_or(
                        "compact-interval-ms",
                        defaults.compact_interval.as_millis() as u64,
                    )?,
                ),
                ..defaults
            };
            let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(dir)?);
            let (store, open) = IngestStore::open(fs, store_cfg)?;
            eprintln!(
                "wal: opened {dir} at generation {} ({} sealed + {} live posts)",
                open.generation, open.sealed_posts, open.live_posts
            );
            let store = Arc::new(store);
            wal_store = Some(Arc::clone(&store));
            Some(Arc::new(WalSink::new(store)))
        }
        None => None,
    };

    let server =
        TklusServer::start_with_sink(engine, serve_cfg.clone(), sink).map_err(CliError::Usage)?;
    // The background compactor seals the memtable once it crosses the
    // threshold, keeping live-candidate scoring bounded under sustained
    // `POST /ingest`. Started after the server so a bind failure never
    // leaves a compactor thread behind.
    let compactor = wal_store.as_ref().map(|store| store.spawn_compactor());
    if let Some(store) = &wal_store {
        eprintln!(
            "wal: background compactor sealing at {} live posts (poll {} ms)",
            store.store_config().compact_threshold,
            store.store_config().compact_interval.as_millis(),
        );
    }
    let handle = serve(server, http_cfg.clone())
        .map_err(|e| CliError::General(format!("bind {}: {e}", http_cfg.addr)))?;
    // The contract line scripts scrape (port 0 resolves here).
    println!("listening on http://{}", handle.addr());
    println!(
        "serve: {} workers, queue {}, deadline {} ms; http: {} connections max, \
         read/write timeouts {}/{} ms, drain {} ms",
        serve_cfg.workers,
        serve_cfg.queue_capacity,
        serve_cfg.default_deadline_ms,
        http_cfg.max_connections,
        http_cfg.read_timeout_ms,
        http_cfg.write_timeout_ms,
        http_cfg.drain_timeout_ms,
    );

    install_signal_handlers();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("signal received; draining ...");
    // Stop the compactor *before* the drain's final seal: a background
    // round mid-build would otherwise contend with it for the compaction
    // gate and the final seal could absorb a stale snapshot.
    if let Some(compactor) = compactor {
        compactor.stop();
    }
    let report = handle.shutdown();
    println!(
        "shutdown: {} connections open at signal; drain: {} completed, {} abandoned in queue, \
         {} in flight at deadline",
        report.connections_at_shutdown,
        report.drain.completed,
        report.drain.abandoned_queued.len(),
        report.drain.in_flight_at_deadline,
    );
    if let Some(store) = &wal_store {
        // Every drained ingest is acked in the WAL; the final seal folds
        // them into the immutable form so the next open replays nothing.
        match store.compact() {
            Ok(true) => eprintln!(
                "wal: final seal wrote generation {} ({} posts sealed)",
                store.generation(),
                store.acked_posts()
            ),
            Ok(false) => eprintln!("wal: final seal found nothing live to seal"),
            Err(e) => eprintln!("wal: final seal failed: {e}"),
        }
    }
    Ok(())
}
