//! `tklus serve` — replay a seeded open-loop workload through the
//! overload-resilient serving layer (DESIGN.md §11) and report how it
//! degraded: shed breakdown, latency percentiles, breaker trajectory,
//! drain accounting, and the final health/readiness probes.
//!
//! Two modes share every knob:
//!
//! * `--mode sim` (default) — the virtual-time simulator: deterministic
//!   per `--load-seed`, finishes instantly regardless of the schedule's
//!   virtual length;
//! * `--mode threaded` — the real [`TklusServer`] with worker threads and
//!   wall-clock arrivals (the same schedule, replayed in real time).
//!
//! Threaded mode optionally attaches the crash-safe WAL store
//! (`--wal DIR`) as the ingest sink and runs its background compactor
//! (`--compact-threshold`, `--compact-interval-ms`), stopping it before
//! the drain's final seal — the same serving-path wiring `serve-http`
//! uses.

use crate::args::{ArgError, Args};
use crate::{corpus_from, CliError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_gen::{generate_queries, QueryConfig};
use tklus_metrics::RegistrySnapshot;
use tklus_metrics::Summary;
use tklus_model::{Semantics, TklusQuery};
use tklus_serve::sim::{
    generate_plan, run_sim, Disposition, DrainPlan, LoadConfig, SimConfig, SimReport,
};
use tklus_serve::{DegradePolicy, Rejected, ServeConfig, ServeError, TklusServer};

/// Builds the query workload the load generator draws from.
fn workload(
    corpus: &tklus_model::Corpus,
    seed: u64,
) -> Result<Vec<(TklusQuery, Ranking)>, CliError> {
    let specs = generate_queries(corpus, &QueryConfig { per_bucket: 4, seed });
    let queries: Vec<(TklusQuery, Ranking)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking =
                if i % 3 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            TklusQuery::new(spec.location, 15.0, spec.keywords, 5, semantics).map(|q| (q, ranking))
        })
        .collect::<Result<_, _>>()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    if queries.is_empty() {
        return Err(CliError::General("generated workload is empty".into()));
    }
    Ok(queries)
}

fn parse_serve_config(args: &Args) -> Result<ServeConfig, CliError> {
    let degrade =
        match (args.get::<usize>("degrade-threshold")?, args.get::<usize>("degrade-cells")?) {
            (None, None) => None,
            (Some(queue_threshold), Some(max_cells)) => {
                Some(DegradePolicy { queue_threshold, max_cells })
            }
            _ => {
                return Err(ArgError(
                    "--degrade-threshold and --degrade-cells must be given together".into(),
                )
                .into())
            }
        };
    let cfg = ServeConfig {
        workers: args.get_or("workers", 3)?,
        queue_capacity: args.get_or("queue-capacity", 16)?,
        default_deadline_ms: args.get_or("deadline-ms", 120)?,
        est_service_ms: args.get_or("est-service-ms", 5)?,
        degrade,
        breaker: Default::default(),
    };
    cfg.validate().map_err(CliError::Usage)?;
    Ok(cfg)
}

fn parse_load_config(args: &Args) -> Result<LoadConfig, CliError> {
    Ok(LoadConfig {
        seed: args.get_or("load-seed", 1)?,
        requests: args.get_or("requests", 400)?,
        mean_interarrival_ms: args.get_or("mean-interarrival-ms", 2)?,
        deadline_ms: args.get_or("deadline-ms", 120)?,
        mean_service_ms: args.get_or("mean-service-ms", 7)?,
        priority_weights: [1, 2, 1],
    })
}

fn parse_drain(args: &Args) -> Result<Option<DrainPlan>, CliError> {
    match (args.get::<u64>("drain-at-ms")?, args.get::<u64>("drain-deadline-ms")?) {
        (None, None) => Ok(None),
        (Some(at_ms), deadline) => {
            Ok(Some(DrainPlan { at_ms, deadline_ms: deadline.unwrap_or(50) }))
        }
        (None, Some(_)) => {
            Err(ArgError("--drain-deadline-ms requires --drain-at-ms".into()).into())
        }
    }
}

/// One compact line of the registry's headline numbers, for the
/// `--stats-every` periodic ticker.
fn stats_line(snap: &RegistrySnapshot) -> String {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let (p50, p99) = snap
        .histogram("tklus_query_latency_us")
        .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)));
    format!(
        "stats: {} answered ({} degraded, {} errors), {}/{} admitted, {} shed, \
         latency p50 {} us p99 {} us",
        c("tklus_queries_total"),
        c("tklus_queries_degraded_total"),
        c("tklus_query_errors_total"),
        c("tklus_serve_completed"),
        c("tklus_serve_admitted"),
        c("tklus_serve_shed_total"),
        p50,
        p99,
    )
}

fn print_latencies(label: &str, latencies: &[f64]) {
    if latencies.is_empty() {
        println!("{label}: no completions");
        return;
    }
    let s = Summary::of(latencies);
    println!(
        "{label}: n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1} (ms)",
        s.n, s.mean, s.p50, s.p95, s.p99, s.max
    );
}

fn print_sim_report(report: &SimReport) {
    let mut shed = 0usize;
    let mut expired = 0usize;
    let mut abandoned = 0usize;
    let mut completed = 0usize;
    for o in &report.outcomes {
        match o.disposition {
            Disposition::Shed(_) => shed += 1,
            Disposition::ExpiredInQueue => expired += 1,
            Disposition::Completed { .. } => completed += 1,
            Disposition::AbandonedQueued | Disposition::AbandonedInFlight { .. } => abandoned += 1,
        }
    }
    println!(
        "dispositions: {completed} completed ({} degraded, {} failed), {shed} shed, \
         {expired} expired in queue, {abandoned} abandoned",
        report.degraded, report.failed
    );
    let c = &report.admission;
    println!(
        "sheds: {} queue-full, {} hopeless-deadline, {} evicted, {} circuit-open, {} shutdown",
        c.shed_queue_full,
        c.shed_deadline,
        c.shed_evicted,
        report.shed_circuit,
        report.shed_shutdown
    );
    let latencies: Vec<f64> = report.latencies_ms.iter().map(|&v| v as f64).collect();
    print_latencies("latency (virtual)", &latencies);
    if report.breaker_trips > 0 {
        println!("breaker: {} trips", report.breaker_trips);
        for &(t, state) in &report.storage_transitions {
            println!("  storage @{t}ms -> {state}");
        }
        for &(t, state) in &report.index_transitions {
            println!("  index   @{t}ms -> {state}");
        }
    }
    if let Some(drain) = &report.drain {
        println!(
            "drain: {} abandoned in queue, {} abandoned in flight",
            drain.abandoned_queued.len(),
            drain.abandoned_in_flight.len()
        );
    }
    println!("-- health --\n{}", report.health.render());
}

fn run_threaded(
    engine: Arc<TklusEngine>,
    queries: &[(TklusQuery, Ranking)],
    serve: ServeConfig,
    load: &LoadConfig,
    drain: Option<DrainPlan>,
    stats_every: Option<u64>,
    wal_store: Option<Arc<tklus_wal::IngestStore>>,
) -> Result<(), CliError> {
    let plan = generate_plan(load, queries.len());
    let sink: Option<Arc<dyn tklus_serve::IngestSink>> =
        wal_store.as_ref().map(|store| Arc::new(tklus_http::WalSink::new(Arc::clone(store))) as _);
    let server = TklusServer::start_with_sink(engine, serve, sink).map_err(CliError::Usage)?;
    // The serving path owns the store's maintenance: seal live posts
    // (replayed at open, or ingested through the sink) in the background
    // so queries never score an unbounded memtable.
    let compactor = wal_store.as_ref().map(|store| store.spawn_compactor());
    let mut shed = 0usize;
    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut degraded = 0usize;
    let mut failed = 0usize;
    let mut post_admission = 0usize;
    let mut tickets = Vec::new();
    let ticker_stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if let Some(every_ms) = stats_every {
            let every = Duration::from_millis(every_ms.max(1));
            let (stop, server) = (&ticker_stop, &server);
            scope.spawn(move || {
                // Sleep in short slices so the ticker exits promptly when
                // the run ends, however long the emission period is.
                let slice = every.min(Duration::from_millis(50));
                let mut next = std::time::Instant::now() + every;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    if std::time::Instant::now() >= next {
                        println!("{}", stats_line(&server.metrics_snapshot()));
                        next += every;
                    }
                }
            });
        }
        let start = std::time::Instant::now();
        for req in &plan.requests {
            if let Some(d) = drain {
                if req.arrival_ms >= d.at_ms {
                    break; // admission closes at the drain instant
                }
            }
            // Open-loop pacing: wait until this request's wall-clock arrival.
            let arrival = Duration::from_millis(req.arrival_ms);
            if let Some(wait) = arrival.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            submitted += 1;
            let (q, ranking) = &queries[req.query_idx % queries.len()];
            let deadline = Duration::from_millis(req.deadline_ms.saturating_sub(req.arrival_ms));
            match server.submit(q.clone(), *ranking, req.priority, Some(deadline)) {
                Ok(t) => tickets.push(t),
                Err(_) => shed += 1,
            }
        }
        // The ticker keeps emitting while admitted work resolves, so the
        // periodic lines cover the full run, not just the arrival phase.
        for t in tickets.drain(..) {
            match t.wait() {
                Ok(outcome) => {
                    completed += 1;
                    if !outcome.completeness.is_complete() {
                        degraded += 1;
                    }
                }
                Err(ServeError::Engine(_)) => {
                    completed += 1;
                    failed += 1;
                }
                Err(ServeError::Rejected(
                    Rejected::Evicted { .. }
                    | Rejected::ExpiredInQueue { .. }
                    | Rejected::DeadlineHopeless { .. },
                ))
                | Err(ServeError::Abandoned) => post_admission += 1,
                Err(ServeError::Rejected(_)) => shed += 1,
            }
        }
        ticker_stop.store(true, Ordering::Relaxed);
    });
    println!(
        "threaded: {submitted} submitted, {completed} completed ({degraded} degraded, \
         {failed} failed), {shed} shed at admission, {post_admission} shed/abandoned after"
    );
    println!("-- health --\n{}", server.health().render());
    if stats_every.is_some() {
        println!("{}", stats_line(&server.metrics_snapshot()));
        println!("-- metrics --\n{}", server.metrics_snapshot().render_prometheus());
    }
    // The compactor stops before the drain's final seal — a round
    // mid-build would contend with it for the compaction gate.
    if let Some(compactor) = compactor {
        compactor.stop();
    }
    let drain_deadline = Duration::from_millis(drain.map_or(1_000, |d| d.deadline_ms));
    let report = server.drain(drain_deadline);
    println!(
        "drain: {} completed, {} abandoned in queue, {} in flight at deadline",
        report.completed,
        report.abandoned_queued.len(),
        report.in_flight_at_deadline
    );
    if let Some(store) = &wal_store {
        match store.compact() {
            Ok(sealed) => println!(
                "wal: final seal {} (generation {})",
                if sealed { "wrote" } else { "had nothing live" },
                store.generation()
            ),
            Err(e) => println!("wal: final seal failed: {e}"),
        }
    }
    Ok(())
}

/// `tklus serve` entry point.
pub fn cmd_serve(raw: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    args.check_known(&[
        "corpus",
        "posts",
        "seed",
        "mode",
        "requests",
        "load-seed",
        "mean-interarrival-ms",
        "deadline-ms",
        "mean-service-ms",
        "workers",
        "queue-capacity",
        "est-service-ms",
        "degrade-threshold",
        "degrade-cells",
        "drain-at-ms",
        "drain-deadline-ms",
        "stats-every",
        "wal",
        "compact-threshold",
        "compact-interval-ms",
    ])?;
    let serve = parse_serve_config(&args)?;
    let stats_every = args.get::<u64>("stats-every")?;
    let load = parse_load_config(&args)?;
    let drain = parse_drain(&args)?;
    let corpus = corpus_from(&args)?;
    let load_seed = load.seed;

    println!(
        "serve: {} workers, queue {}, deadline {} ms, degrade {}",
        serve.workers,
        serve.queue_capacity,
        serve.default_deadline_ms,
        serve.degrade.map_or("off".to_string(), |d| format!(
            "at depth {} -> {} cells",
            d.queue_threshold, d.max_cells
        ))
    );
    println!(
        "load: {} requests, seed {}, mean interarrival {} ms, mean service {} ms",
        load.requests, load.seed, load.mean_interarrival_ms, load.mean_service_ms
    );

    // Optional durable write path (threaded mode only: the virtual-time
    // simulator has no sink seam and no wall clock for a compactor).
    let wal_store = match args.get_str("wal") {
        Some(dir) => {
            if args.get_str("mode").unwrap_or("sim") != "threaded" {
                return Err(ArgError("--wal requires --mode threaded".into()).into());
            }
            use tklus_wal::{IngestStore, StdFs, StoreConfig, WalFs};
            let defaults = StoreConfig::default();
            let store_cfg = StoreConfig {
                compact_threshold: args.get_or("compact-threshold", defaults.compact_threshold)?,
                compact_interval: Duration::from_millis(
                    args.get_or(
                        "compact-interval-ms",
                        defaults.compact_interval.as_millis() as u64,
                    )?,
                ),
                ..defaults
            };
            let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(dir)?);
            let (store, open) = IngestStore::open(fs, store_cfg)?;
            println!(
                "wal: opened {dir} at generation {} ({} sealed + {} live posts)",
                open.generation, open.sealed_posts, open.live_posts
            );
            Some(Arc::new(store))
        }
        None => None,
    };

    match args.get_str("mode").unwrap_or("sim") {
        "sim" => {
            // Deterministic virtual-time replay: parallelism 1 keeps the
            // engine's execution order (and any fault schedule) seeded.
            let config = EngineConfig { parallelism: 1, ..EngineConfig::default() };
            let engine = TklusEngine::try_build(&corpus, &config)?.0;
            let queries = workload(&corpus, load_seed)?;
            let plan = generate_plan(&load, queries.len());
            let report = run_sim(&engine, &queries, &plan, &SimConfig { serve, drain });
            print_sim_report(&report);
            if stats_every.is_some() {
                // Virtual time has no wall-clock ticks; emit the final
                // registry exposition the periodic mode would converge to.
                println!("{}", stats_line(&report.metrics));
                println!("-- metrics --\n{}", report.metrics.render_prometheus());
            }
            Ok(())
        }
        "threaded" => {
            let engine = Arc::new(TklusEngine::try_build(&corpus, &EngineConfig::default())?.0);
            let queries = workload(&corpus, load_seed)?;
            run_threaded(engine, &queries, serve, &load, drain, stats_every, wal_store)
        }
        other => Err(ArgError(format!("--mode must be sim|threaded, got {other:?}")).into()),
    }
}
