//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed flags: `--name value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// A flag parsing/validation failure, printed as the CLI error message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (already stripped of the program name and
    /// subcommand). A flag followed by another flag (or by nothing) is a
    /// boolean switch and records the value `"true"` — values themselves
    /// never start with `--` (negative numbers start with a single `-`).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        iter.next().expect("peeked value exists")
                    }
                    _ => "true".to_string(),
                };
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("flag --{name} given twice")));
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// A boolean switch: absent -> `false`, bare or `true`/`false` valued.
    pub fn get_flag(&self, name: &str) -> Result<bool, ArgError> {
        self.get_or(name, false)
    }

    /// A required flag, parsed to `T`.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))?;
        raw.parse().map_err(|_| ArgError(format!("flag --{name}: cannot parse {raw:?}")))
    }

    /// An optional flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| ArgError(format!("flag --{name}: cannot parse {raw:?}")))
            }
        }
    }

    /// An optional flag as `Option<T>`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("flag --{name}: cannot parse {raw:?}"))),
        }
    }

    /// Raw string flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Errors if any flag outside `allowed` was supplied, or any stray
    /// positional argument is present (typo guard).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name}; expected one of: {}",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(" ")
                )));
            }
        }
        if let Some(stray) = self.positional().first() {
            return Err(ArgError(format!("unexpected argument {stray:?}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse(&["--posts", "100", "extra", "--seed", "7"]).unwrap();
        assert_eq!(a.require::<usize>("posts").unwrap(), 100);
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.positional(), &["extra".to_string()]);
    }

    #[test]
    fn defaults_and_options() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.get_or::<usize>("k", 5).unwrap(), 5);
        assert_eq!(a.get::<f64>("radius").unwrap(), None);
        assert!(a.require::<usize>("posts").is_err());
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        // A trailing flag and a flag followed by another flag read "true".
        let a = parse(&["--fail-on-degraded", "--posts", "1", "--verbose"]).unwrap();
        assert!(a.get_flag("fail-on-degraded").unwrap());
        assert!(a.get_flag("verbose").unwrap());
        assert!(!a.get_flag("absent").unwrap());
        assert_eq!(a.require::<usize>("posts").unwrap(), 1);
        // An explicit value still works; a bare value-flag fails at parse.
        let a = parse(&["--fail-on-degraded", "false"]).unwrap();
        assert!(!a.get_flag("fail-on-degraded").unwrap());
        let a = parse(&["--posts"]).unwrap();
        assert!(a.require::<usize>("posts").is_err(), "boolean 'true' is not a count");
        // Negative numbers are values, not flags.
        let a = parse(&["--lon", "-79.37"]).unwrap();
        assert_eq!(a.require::<f64>("lon").unwrap(), -79.37);
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse(&["--posts", "1", "--posts", "2"]).is_err());
    }

    #[test]
    fn rejects_bad_parses_and_unknown_flags() {
        let a = parse(&["--posts", "abc"]).unwrap();
        assert!(a.require::<usize>("posts").is_err());
        let a = parse(&["--tpyo", "1"]).unwrap();
        assert!(a.check_known(&["posts"]).is_err());
        assert!(a.check_known(&["tpyo"]).is_ok());
        // Stray positionals are rejected by check_known.
        let a = parse(&["--posts", "1", "oops"]).unwrap();
        assert!(a.check_known(&["posts"]).is_err());
    }
}
