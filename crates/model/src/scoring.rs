//! Scoring parameters.
//!
//! Collects every tunable the paper's scoring and query-processing sections
//! introduce, with the defaults the experimental study uses (Section VI-B1):
//! α = 0.5, ε = 0.1, N ≈ 40.

use serde::{Deserialize, Serialize};
use tklus_geo::DistanceMetric;

/// Parameters of the scoring functions (Definitions 4–11) and of thread
/// construction (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoringConfig {
    /// α in Definition 10: weight of keyword relevance vs distance score.
    /// The experiments "set α as 0.5 so that the two factors are considered
    /// as having the same impact".
    pub alpha: f64,
    /// ε in Definition 4: popularity of a singleton tweet thread.
    /// "The ε in Definition 4 is set 0.1 in our implementation."
    pub epsilon: f64,
    /// N in Definition 6: keyword-occurrence normalizer. "N is empirically
    /// set around 40 such that keyword relevance score is comparable to the
    /// distance score."
    pub keyword_norm: f64,
    /// Thread-construction depth `d` in Algorithm 1: "a thread depth d is
    /// always set to constrain the construction process".
    pub thread_depth: usize,
    /// Distance metric for radius checks and distance scores.
    pub metric: DistanceMetric,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            epsilon: 0.1,
            keyword_norm: 40.0,
            thread_depth: 6,
            metric: DistanceMetric::Euclidean,
        }
    }
}

impl ScoringConfig {
    /// Validates parameter ranges: `alpha ∈ [0, 1]`, `epsilon ≥ 0`,
    /// `keyword_norm > 0`, `thread_depth ≥ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) || !self.alpha.is_finite() {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if !(self.epsilon >= 0.0 && self.epsilon.is_finite()) {
            return Err(format!("epsilon must be >= 0, got {}", self.epsilon));
        }
        if !(self.keyword_norm > 0.0 && self.keyword_norm.is_finite()) {
            return Err(format!("keyword_norm must be > 0, got {}", self.keyword_norm));
        }
        if self.thread_depth == 0 {
            return Err("thread_depth must be >= 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ScoringConfig::default();
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.keyword_norm, 40.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let base = ScoringConfig::default();
        assert!(ScoringConfig { alpha: 1.1, ..base }.validate().is_err());
        assert!(ScoringConfig { alpha: -0.1, ..base }.validate().is_err());
        assert!(ScoringConfig { alpha: f64::NAN, ..base }.validate().is_err());
        assert!(ScoringConfig { epsilon: -1.0, ..base }.validate().is_err());
        assert!(ScoringConfig { keyword_norm: 0.0, ..base }.validate().is_err());
        assert!(ScoringConfig { thread_depth: 0, ..base }.validate().is_err());
    }
}
