//! Identifier newtypes.
//!
//! Section IV-A: "Attribute sid represents the tweet ID which is essentially
//! the tweet timestamp" and "each timestamp is unique". We model tweet ids
//! as `u64`s that are *monotone in time*, so the inverted index's
//! sort-by-id postings order (Algorithm 3 sorts postings "by the timestamp")
//! coincides with time order, exactly as in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique tweet identifier; numerically ordered by publication time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TweetId(pub u64);

impl TweetId {
    /// The timestamp the id encodes (identity in this model).
    #[inline]
    pub fn timestamp(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TweetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Unique user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweet_ids_order_by_time() {
        assert!(TweetId(1) < TweetId(2));
        assert_eq!(TweetId(42).timestamp(), 42);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TweetId(7).to_string(), "s7");
        assert_eq!(UserId(3).to_string(), "u3");
    }
}
