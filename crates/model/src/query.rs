//! The TkLUS query `q(l, r, W)`.

use serde::{Deserialize, Serialize};
use tklus_geo::Point;

/// Keyword combination semantics for multi-keyword queries (Section V):
/// "The 'AND' semantic requires the search results containing all the query
/// keywords while the 'OR' semantic relaxes the constraint".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Semantics {
    /// Candidate tweets must contain every query keyword.
    And,
    /// Candidate tweets must contain at least one query keyword
    /// (paper default for single-keyword queries; Problem Definition
    /// condition 1 requires `p.W ∩ q.W ≠ ∅`).
    #[default]
    Or,
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Semantics::And => "AND",
            Semantics::Or => "OR",
        })
    }
}

/// Recency bias for temporal ranking (the paper's Section VIII extension:
/// "give priority to more recent tweets (and their users) in ranking").
/// A tweet's keyword relevance is multiplied by
/// `2^(-(now - t) / half_life)` — 1.0 for a tweet posted right now, 0.5
/// for one posted `half_life` time units ago.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecencyBias {
    /// The reference "now" timestamp (same unit as tweet ids).
    pub now: u64,
    /// Half-life of tweet relevance, in timestamp units. Must be positive.
    pub half_life: u64,
}

impl RecencyBias {
    /// The decay factor for a tweet posted at `t`. Tweets from the future
    /// of `now` (possible in backfills) are clamped to factor 1.
    pub fn factor(&self, t: u64) -> f64 {
        let age = self.now.saturating_sub(t) as f64;
        (-age / self.half_life as f64).exp2()
    }
}

/// Scheduling priority of a query under load (DESIGN.md §11). The serving
/// layer sheds lowest-priority work first when saturated; the engine
/// itself ignores priority — it only shapes admission and dispatch order,
/// never the answer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Background / best-effort work: first to be shed.
    Low,
    /// Interactive default.
    #[default]
    Normal,
    /// Latency-critical work: may evict queued `Low`/`Normal` entries
    /// when the admission queue is full.
    High,
}

impl Priority {
    /// All priorities, lowest first (shedding order).
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Dense index (0 = `Low`), for per-priority bookkeeping arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Resource budget for one query execution (DESIGN.md §10): when the
/// budget is exhausted mid-query, the engine returns a *degraded* result —
/// the top-k over the cover cells processed so far, flagged as incomplete —
/// instead of blocking past a deadline. Budgets are checked at cover-cell
/// granularity, so `max_cells` gives bit-for-bit deterministic degradation
/// for tests while `timeout_ms` serves interactive latency floors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryBudget {
    /// Wall-clock deadline in milliseconds from the start of execution.
    pub timeout_ms: Option<u64>,
    /// Maximum number of cover cells to fetch and score.
    pub max_cells: Option<usize>,
}

impl QueryBudget {
    /// Whether this budget can never terminate a query early.
    pub fn is_unlimited(&self) -> bool {
        self.timeout_ms.is_none() && self.max_cells.is_none()
    }

    /// Tightens the cell cap to at most `max_cells` (keeps a stricter
    /// existing cap). The serving layer's degrade mode uses this to trade
    /// completeness for latency under saturation without ever *loosening*
    /// a budget the client asked for.
    pub fn tighten_max_cells(&mut self, max_cells: usize) {
        self.max_cells = Some(self.max_cells.map_or(max_cells, |cur| cur.min(max_cells)));
    }

    /// Tightens the wall-clock cap to at most `timeout_ms` (keeps a
    /// stricter existing cap) — used to fit a query into the time left
    /// before its arrival deadline after it waited in the queue.
    pub fn tighten_timeout_ms(&mut self, timeout_ms: u64) {
        self.timeout_ms = Some(self.timeout_ms.map_or(timeout_ms, |cur| cur.min(timeout_ms)));
    }
}

/// A top-k local user search query.
///
/// ```
/// use tklus_model::{Semantics, TklusQuery};
/// use tklus_geo::Point;
///
/// // The paper's running example: "hotel" within 10 km of downtown Toronto.
/// let q = TklusQuery::new(
///     Point::new_unchecked(43.6839128037, -79.37356590),
///     10.0,
///     vec!["hotel".into()],
///     1,
///     Semantics::Or,
/// ).unwrap()
/// // Section VIII temporal extension: restrict to a period, favour recent tweets.
/// .with_time_range(0, 1_000_000).unwrap()
/// .with_recency(1_000_000, 10_000).unwrap();
/// assert!(q.in_time_range(500));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TklusQuery {
    /// Query location `q.l`.
    pub location: Point,
    /// Query radius `q.r` in kilometres.
    pub radius_km: f64,
    /// Raw query keywords `q.W` (normalized by the engine's text pipeline).
    pub keywords: Vec<String>,
    /// Number of users to return.
    pub k: usize,
    /// AND/OR keyword semantics.
    pub semantics: Semantics,
    /// Optional time window (inclusive timestamps): only tweets posted in
    /// `[start, end]` qualify — the paper's Section VIII "query for a
    /// particular period of time".
    pub time_range: Option<(u64, u64)>,
    /// Optional recency weighting of tweet relevance.
    pub recency: Option<RecencyBias>,
    /// Optional execution budget; exhausting it degrades the result
    /// instead of failing the query.
    pub budget: Option<QueryBudget>,
}

impl TklusQuery {
    /// Builds a query, validating the radius, keyword list, and `k`.
    pub fn new(
        location: Point,
        radius_km: f64,
        keywords: Vec<String>,
        k: usize,
        semantics: Semantics,
    ) -> Result<Self, InvalidQuery> {
        if !(radius_km.is_finite() && radius_km > 0.0) {
            return Err(InvalidQuery::BadRadius(radius_km));
        }
        if keywords.is_empty() {
            return Err(InvalidQuery::NoKeywords);
        }
        if k == 0 {
            return Err(InvalidQuery::ZeroK);
        }
        Ok(Self {
            location,
            radius_km,
            keywords,
            k,
            semantics,
            time_range: None,
            recency: None,
            budget: None,
        })
    }

    /// Caps execution at `timeout_ms` milliseconds of wall-clock time
    /// (merged with any budget already set).
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.budget.get_or_insert_with(QueryBudget::default).timeout_ms = Some(timeout_ms);
        self
    }

    /// Caps execution at `max_cells` cover cells (merged with any budget
    /// already set).
    pub fn with_max_cells(mut self, max_cells: usize) -> Self {
        self.budget.get_or_insert_with(QueryBudget::default).max_cells = Some(max_cells);
        self
    }

    /// Restricts the query to tweets posted within `[start, end]`
    /// (inclusive, in timestamp units — tweet ids are timestamps).
    pub fn with_time_range(mut self, start: u64, end: u64) -> Result<Self, InvalidQuery> {
        if start > end {
            return Err(InvalidQuery::BadTimeRange { start, end });
        }
        self.time_range = Some((start, end));
        Ok(self)
    }

    /// Applies recency weighting with the given reference time and
    /// half-life.
    pub fn with_recency(mut self, now: u64, half_life: u64) -> Result<Self, InvalidQuery> {
        if half_life == 0 {
            return Err(InvalidQuery::ZeroHalfLife);
        }
        self.recency = Some(RecencyBias { now, half_life });
        Ok(self)
    }

    /// Whether a tweet timestamp falls in the query's time window
    /// (trivially true without one).
    pub fn in_time_range(&self, t: u64) -> bool {
        self.time_range.is_none_or(|(lo, hi)| (lo..=hi).contains(&t))
    }

    /// The recency factor for a tweet timestamp (1.0 without a bias).
    pub fn recency_factor(&self, t: u64) -> f64 {
        self.recency.map_or(1.0, |r| r.factor(t))
    }
}

/// Validation failures for [`TklusQuery`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidQuery {
    /// Radius must be positive and finite.
    BadRadius(f64),
    /// At least one keyword is required.
    NoKeywords,
    /// `k` must be at least 1.
    ZeroK,
    /// Time window start must not exceed its end.
    BadTimeRange {
        /// Window start.
        start: u64,
        /// Window end.
        end: u64,
    },
    /// Recency half-life must be positive.
    ZeroHalfLife,
}

impl std::fmt::Display for InvalidQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidQuery::BadRadius(r) => {
                write!(f, "query radius must be positive and finite, got {r}")
            }
            InvalidQuery::NoKeywords => f.write_str("query must have at least one keyword"),
            InvalidQuery::ZeroK => f.write_str("query k must be at least 1"),
            InvalidQuery::BadTimeRange { start, end } => {
                write!(f, "time range start {start} exceeds end {end}")
            }
            InvalidQuery::ZeroHalfLife => f.write_str("recency half-life must be positive"),
        }
    }
}

impl std::error::Error for InvalidQuery {}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> Point {
        Point::new_unchecked(43.6839128037, -79.37356590)
    }

    #[test]
    fn paper_running_example() {
        // "a TkLUS query is issued at the crossed location
        // (43.6839128037, -79.37356590), with a single keyword 'hotel' and a
        // distance of 10 km".
        let q = TklusQuery::new(loc(), 10.0, vec!["hotel".into()], 1, Semantics::Or).unwrap();
        assert_eq!(q.keywords, vec!["hotel"]);
        assert_eq!(q.k, 1);
    }

    #[test]
    fn validation() {
        assert_eq!(
            TklusQuery::new(loc(), 0.0, vec!["x".into()], 1, Semantics::Or),
            Err(InvalidQuery::BadRadius(0.0))
        );
        assert_eq!(
            TklusQuery::new(loc(), -2.0, vec!["x".into()], 1, Semantics::Or),
            Err(InvalidQuery::BadRadius(-2.0))
        );
        assert_eq!(
            TklusQuery::new(loc(), 5.0, vec![], 1, Semantics::Or),
            Err(InvalidQuery::NoKeywords)
        );
        assert_eq!(
            TklusQuery::new(loc(), 5.0, vec!["x".into()], 0, Semantics::Or),
            Err(InvalidQuery::ZeroK)
        );
        assert!(TklusQuery::new(loc(), f64::NAN, vec!["x".into()], 1, Semantics::Or).is_err());
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::And.to_string(), "AND");
        assert_eq!(Semantics::Or.to_string(), "OR");
        assert_eq!(Semantics::default(), Semantics::Or);
    }

    #[test]
    fn time_range_filters_inclusively() {
        let q = TklusQuery::new(loc(), 10.0, vec!["x".into()], 1, Semantics::Or)
            .unwrap()
            .with_time_range(100, 200)
            .unwrap();
        assert!(!q.in_time_range(99));
        assert!(q.in_time_range(100));
        assert!(q.in_time_range(150));
        assert!(q.in_time_range(200));
        assert!(!q.in_time_range(201));
        // Without a window everything qualifies.
        let plain = TklusQuery::new(loc(), 10.0, vec!["x".into()], 1, Semantics::Or).unwrap();
        assert!(plain.in_time_range(0) && plain.in_time_range(u64::MAX));
    }

    #[test]
    fn invalid_time_range_rejected() {
        let q = TklusQuery::new(loc(), 10.0, vec!["x".into()], 1, Semantics::Or).unwrap();
        assert_eq!(
            q.clone().with_time_range(5, 4),
            Err(InvalidQuery::BadTimeRange { start: 5, end: 4 })
        );
        assert_eq!(q.with_recency(10, 0), Err(InvalidQuery::ZeroHalfLife));
    }

    #[test]
    fn budget_builders_merge() {
        let q = TklusQuery::new(loc(), 10.0, vec!["x".into()], 1, Semantics::Or).unwrap();
        assert!(q.budget.is_none());
        let q = q.with_timeout_ms(250).with_max_cells(40);
        let budget = q.budget.unwrap();
        assert_eq!(budget.timeout_ms, Some(250));
        assert_eq!(budget.max_cells, Some(40));
        assert!(!budget.is_unlimited());
        assert!(QueryBudget::default().is_unlimited());
    }

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::ALL.map(Priority::index), [0, 1, 2]);
        assert_eq!(Priority::High.to_string(), "high");
    }

    #[test]
    fn tighten_never_loosens() {
        let mut b = QueryBudget::default();
        b.tighten_max_cells(10);
        assert_eq!(b.max_cells, Some(10));
        b.tighten_max_cells(20); // looser: ignored
        assert_eq!(b.max_cells, Some(10));
        b.tighten_max_cells(5); // stricter: applied
        assert_eq!(b.max_cells, Some(5));
        b.tighten_timeout_ms(100);
        b.tighten_timeout_ms(500);
        assert_eq!(b.timeout_ms, Some(100));
        b.tighten_timeout_ms(50);
        assert_eq!(b.timeout_ms, Some(50));
    }

    #[test]
    fn recency_factor_halves_per_half_life() {
        let bias = RecencyBias { now: 1000, half_life: 100 };
        assert_eq!(bias.factor(1000), 1.0);
        assert!((bias.factor(900) - 0.5).abs() < 1e-12);
        assert!((bias.factor(800) - 0.25).abs() < 1e-12);
        // Future tweets clamp to 1.
        assert_eq!(bias.factor(2000), 1.0);
        // Without a bias, the query factor is 1.
        let q = TklusQuery::new(loc(), 10.0, vec!["x".into()], 1, Semantics::Or).unwrap();
        assert_eq!(q.recency_factor(0), 1.0);
        let q = q.with_recency(1000, 100).unwrap();
        assert!((q.recency_factor(900) - 0.5).abs() < 1e-12);
    }
}
