//! Shared data model for the TkLUS reproduction.
//!
//! Mirrors Section II of the paper:
//!
//! * [`Post`] — Definition 1's social media post `p = (uid, t, l, W)`,
//!   extended with the reply/forward back-pointer the metadata relation of
//!   Section IV-A records (`ruid`, `rsid`).
//! * [`TweetId`] / [`UserId`] — "tweet ID … is essentially the tweet
//!   timestamp"; ids are `u64`s monotone in publication time.
//! * [`TklusQuery`] — the query `q(l, r, W)` with result size `k` and the
//!   AND/OR keyword [`Semantics`] of Algorithms 4/5.
//! * [`ScoringConfig`] — the paper's tunables: α (Def. 10), ε (Def. 4),
//!   N (Def. 6), the thread-construction depth `d` (Algorithm 1), and the
//!   distance metric.
//! * [`Corpus`] — an in-memory post collection with the user/post
//!   cross-references (`P_u`) that user-level scoring needs.

pub mod corpus;
pub mod ids;
pub mod post;
pub mod query;
pub mod scoring;

pub use corpus::Corpus;
pub use ids::{TweetId, UserId};
pub use post::{InteractionKind, Post, ReplyTo};
pub use query::{Priority, QueryBudget, RecencyBias, Semantics, TklusQuery};
pub use scoring::ScoringConfig;
