//! The social media post of Definition 1, plus the reply/forward
//! back-pointer from the Section IV-A metadata relation.

use crate::ids::{TweetId, UserId};
use serde::{Deserialize, Serialize};
use tklus_geo::Point;

/// How a post refers to its target: Definition 2 distinguishes "reply"
/// edges (`E_reply`) from "forward" edges (`E_forward`). Thread
/// construction (Algorithm 1) treats both uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractionKind {
    /// `u1` replies to `u2` in this post.
    Reply,
    /// `u1` forwards (retweets) `u2`'s post.
    Forward,
}

/// A reply/forward back-pointer: the `(rsid, ruid)` columns of the
/// metadata relation plus the edge kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplyTo {
    /// The post being replied to / forwarded (`rsid`).
    pub target: TweetId,
    /// That post's author (`ruid`).
    pub target_user: UserId,
    /// Reply or forward.
    pub kind: InteractionKind,
}

/// A geo-tagged social media post.
///
/// Definition 1's 4-tuple `(uid, t, l, W)` with `t` folded into the id (ids
/// are timestamps), plus the optional `(ruid, rsid)` pair recording which
/// post (and whose) this one replies to or forwards — the columns the
/// metadata database stores and thread construction (Algorithm 1) queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Tweet id (`sid`); equals the publication timestamp.
    pub id: TweetId,
    /// Author (`uid`).
    pub user: UserId,
    /// Publication location (`lat`, `lon`). This reproduction only models
    /// posts with non-empty locations, as the paper's problem setting does.
    pub location: Point,
    /// Raw text content; tokenization/stemming happens at index build.
    pub text: String,
    /// The post this one replies to or forwards (`rsid`, `ruid`), if any.
    pub in_reply_to: Option<ReplyTo>,
}

impl Post {
    /// Creates an original (non-reply) post.
    pub fn original(id: TweetId, user: UserId, location: Point, text: impl Into<String>) -> Self {
        Self { id, user, location, text: text.into(), in_reply_to: None }
    }

    /// Creates a reply to `target` (a post by `target_user`).
    pub fn reply(
        id: TweetId,
        user: UserId,
        location: Point,
        text: impl Into<String>,
        target: TweetId,
        target_user: UserId,
    ) -> Self {
        Self {
            id,
            user,
            location,
            text: text.into(),
            in_reply_to: Some(ReplyTo { target, target_user, kind: InteractionKind::Reply }),
        }
    }

    /// Creates a forward (retweet) of `target` (a post by `target_user`).
    pub fn forward(
        id: TweetId,
        user: UserId,
        location: Point,
        text: impl Into<String>,
        target: TweetId,
        target_user: UserId,
    ) -> Self {
        Self {
            id,
            user,
            location,
            text: text.into(),
            in_reply_to: Some(ReplyTo { target, target_user, kind: InteractionKind::Forward }),
        }
    }

    /// Whether this post replies to or forwards another.
    pub fn is_reply(&self) -> bool {
        self.in_reply_to.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Point {
        Point::new_unchecked(43.7, -79.4)
    }

    #[test]
    fn original_has_no_reply_target() {
        let post = Post::original(TweetId(1), UserId(9), p(), "I'm at Clarion Hotel");
        assert!(!post.is_reply());
        assert_eq!(post.in_reply_to, None);
    }

    #[test]
    fn reply_records_target() {
        let post = Post::reply(TweetId(2), UserId(3), p(), "nice!", TweetId(1), UserId(9));
        assert!(post.is_reply());
        let rt = post.in_reply_to.unwrap();
        assert_eq!(
            (rt.target, rt.target_user, rt.kind),
            (TweetId(1), UserId(9), InteractionKind::Reply)
        );
    }

    #[test]
    fn forward_records_kind() {
        let post = Post::forward(TweetId(5), UserId(4), p(), "RT", TweetId(1), UserId(9));
        assert_eq!(post.in_reply_to.unwrap().kind, InteractionKind::Forward);
    }
}
