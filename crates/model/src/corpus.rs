//! In-memory post collections with user cross-references.
//!
//! The scoring functions aggregate over `P_u`, "all the posts by a user u"
//! (Section II-A). [`Corpus`] owns the posts sorted by tweet id and
//! maintains the `user → posts` mapping plus id lookups that both query
//! algorithms and the social-network builder rely on.

use crate::ids::{TweetId, UserId};
use crate::post::Post;
use std::collections::HashMap;

/// An immutable collection of geo-tagged posts.
///
/// Construction sorts posts by id and rejects duplicate ids (ids are
/// timestamps and "each timestamp is unique").
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    posts: Vec<Post>,
    by_id: HashMap<TweetId, usize>,
    by_user: HashMap<UserId, Vec<usize>>,
}

impl Corpus {
    /// Builds a corpus from posts. Returns an error naming the duplicate if
    /// two posts share an id.
    pub fn new(mut posts: Vec<Post>) -> Result<Self, DuplicateTweetId> {
        posts.sort_by_key(|p| p.id);
        let mut by_id = HashMap::with_capacity(posts.len());
        let mut by_user: HashMap<UserId, Vec<usize>> = HashMap::new();
        for (i, post) in posts.iter().enumerate() {
            if by_id.insert(post.id, i).is_some() {
                return Err(DuplicateTweetId(post.id));
            }
            by_user.entry(post.user).or_default().push(i);
        }
        Ok(Self { posts, by_id, by_user })
    }

    /// All posts, sorted by tweet id (= time).
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when the corpus holds no posts.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Number of distinct users.
    pub fn user_count(&self) -> usize {
        self.by_user.len()
    }

    /// Looks up a post by id.
    pub fn get(&self, id: TweetId) -> Option<&Post> {
        self.by_id.get(&id).map(|&i| &self.posts[i])
    }

    /// `P_u`: the posts of `user`, in time order.
    pub fn posts_of(&self, user: UserId) -> impl Iterator<Item = &Post> {
        self.by_user.get(&user).into_iter().flatten().map(move |&i| &self.posts[i])
    }

    /// Number of posts by `user` (`|P_u|` in Definition 9).
    pub fn post_count_of(&self, user: UserId) -> usize {
        self.by_user.get(&user).map_or(0, Vec::len)
    }

    /// Iterates all user ids (arbitrary order).
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.by_user.keys().copied()
    }
}

/// Two posts shared the same tweet id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateTweetId(pub TweetId);

impl std::fmt::Display for DuplicateTweetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "duplicate tweet id {}", self.0)
    }
}

impl std::error::Error for DuplicateTweetId {}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_geo::Point;

    fn post(id: u64, user: u64) -> Post {
        Post::original(
            TweetId(id),
            UserId(user),
            Point::new_unchecked(43.7, -79.4),
            format!("tweet {id}"),
        )
    }

    #[test]
    fn sorts_by_id_and_indexes() {
        let c = Corpus::new(vec![post(3, 1), post(1, 2), post(2, 1)]).unwrap();
        let ids: Vec<u64> = c.posts().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(c.get(TweetId(2)).unwrap().user, UserId(1));
        assert_eq!(c.get(TweetId(9)), None);
    }

    #[test]
    fn user_cross_reference() {
        let c = Corpus::new(vec![post(3, 1), post(1, 2), post(2, 1)]).unwrap();
        assert_eq!(c.user_count(), 2);
        assert_eq!(c.post_count_of(UserId(1)), 2);
        assert_eq!(c.post_count_of(UserId(2)), 1);
        assert_eq!(c.post_count_of(UserId(3)), 0);
        let u1_ids: Vec<u64> = c.posts_of(UserId(1)).map(|p| p.id.0).collect();
        assert_eq!(u1_ids, vec![2, 3]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = Corpus::new(vec![post(1, 1), post(1, 2)]).unwrap_err();
        assert_eq!(err, DuplicateTweetId(TweetId(1)));
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::new(vec![]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.user_count(), 0);
        assert_eq!(c.users().count(), 0);
    }
}
