//! Property-based tests for the geospatial substrate.

use proptest::prelude::*;
use tklus_geo::{circle_cover, encode, Cell, CoverKey, DistanceMetric, Geohash, Point};

fn arb_point() -> impl Strategy<Value = Point> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| Point::new_unchecked(lat, lon))
}

fn arb_metric() -> impl Strategy<Value = DistanceMetric> {
    prop_oneof![Just(DistanceMetric::Euclidean), Just(DistanceMetric::Haversine)]
}

proptest! {
    #[test]
    fn encode_decode_contains_point(p in arb_point(), len in 1usize..=12) {
        let gh = encode(&p, len).unwrap();
        let cell = Cell::from_geohash(&gh);
        // Half-open cells: the north pole / antimeridian sit on the closed
        // upper edge, so allow boundary equality there.
        prop_assert!(cell.lat_lo() <= p.lat() && p.lat() <= cell.lat_hi());
        prop_assert!(cell.lon_lo() <= p.lon() && p.lon() <= cell.lon_hi());
    }

    #[test]
    fn geohash_string_roundtrip(p in arb_point(), len in 1usize..=12) {
        let gh = encode(&p, len).unwrap();
        let parsed: Geohash = gh.to_string().parse().unwrap();
        prop_assert_eq!(gh, parsed);
    }

    #[test]
    fn prefix_truncation_consistent(p in arb_point(), len in 2usize..=12, cut in 1usize..=11) {
        prop_assume!(cut < len);
        let long = encode(&p, len).unwrap();
        let short = encode(&p, cut).unwrap();
        prop_assert!(short.is_prefix_of(&long));
        prop_assert_eq!(long.truncate(cut).unwrap(), short);
        prop_assert!(long.to_string().starts_with(&short.to_string()));
    }

    #[test]
    fn geohash_order_matches_string_order(a in arb_point(), b in arb_point(), len in 1usize..=12) {
        let ga = encode(&a, len).unwrap();
        let gb = encode(&b, len).unwrap();
        prop_assert_eq!(ga.cmp(&gb), ga.to_string().cmp(&gb.to_string()));
    }

    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.haversine_km(&b);
        let bc = b.haversine_km(&c);
        let ac = a.haversine_km(&c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn euclid_close_to_haversine_at_city_scale(
        lat in -60.0f64..=60.0,
        lon in -179.0f64..=179.0,
        dlat in -0.2f64..=0.2,
        dlon in -0.2f64..=0.2,
    ) {
        let a = Point::new_unchecked(lat, lon);
        let b = Point::new_unchecked((lat + dlat).clamp(-90.0, 90.0), (lon + dlon).clamp(-180.0, 180.0));
        let h = a.haversine_km(&b);
        let e = a.euclidean_km(&b);
        prop_assume!(h > 0.01);
        prop_assert!((h - e).abs() / h < 0.02, "h={h} e={e}");
    }

    #[test]
    fn cover_is_sorted_complete_and_minimal(
        lat in -60.0f64..=60.0,
        lon in -170.0f64..=170.0,
        radius in 0.5f64..=60.0,
        len in 2usize..=4,
    ) {
        let center = Point::new_unchecked(lat, lon);
        let cover = circle_cover(&center, radius, len, DistanceMetric::Euclidean).unwrap();
        prop_assert!(!cover.is_empty());
        prop_assert!(cover.windows(2).all(|w| w[0] < w[1]));
        // The centre's own cell is always in the cover.
        prop_assert!(cover.contains(&encode(&center, len).unwrap()));
        // Minimality: no cell entirely outside the circle.
        for gh in &cover {
            let cell = Cell::from_geohash(gh);
            prop_assert!(cell.min_distance_km(&center, DistanceMetric::Euclidean) <= radius);
        }
        // Completeness for a sampled in-circle point.
        let q = Point::new_unchecked(
            (lat + radius / 222.0).clamp(-90.0, 90.0),
            lon,
        );
        if center.euclidean_km(&q) <= radius {
            prop_assert!(cover.contains(&encode(&q, len).unwrap()));
        }
    }

    /// Cover-cache key canonicalization: the key is the circle's identity,
    /// so describing the same circle twice must produce the same key.
    /// `-0.0 == 0.0` for floats but not for raw bit patterns, so the key
    /// must fold the zero signs together.
    #[test]
    fn cover_key_folds_signed_zeros(
        radius in 0.5f64..=60.0,
        len in 1usize..=8,
        metric in arb_metric(),
        neg_lat in any::<bool>(),
        neg_lon in any::<bool>(),
    ) {
        let pos = Point::new_unchecked(0.0, 0.0);
        let signed = Point::new_unchecked(
            if neg_lat { -0.0 } else { 0.0 },
            if neg_lon { -0.0 } else { 0.0 },
        );
        let a = CoverKey::new(&pos, radius, len, metric);
        let b = CoverKey::new(&signed, radius, len, metric);
        prop_assert_eq!(a, b);
        // And plain equal circles are trivially the same key.
        let p = Point::new_unchecked(43.68, -79.38);
        prop_assert_eq!(
            CoverKey::new(&p, radius, len, metric),
            CoverKey::new(&p, radius, len, metric)
        );
    }

    /// The flip side of canonicalization: nearly-equal is not equal. A
    /// 1-ULP nudge in any continuous component describes a *different*
    /// circle and must map to a different key (no false sharing between
    /// cache entries).
    #[test]
    fn cover_key_distinguishes_one_ulp_differences(
        p in arb_point(),
        radius in 0.5f64..=60.0,
        len in 1usize..=8,
        metric in arb_metric(),
    ) {
        let base = CoverKey::new(&p, radius, len, metric);
        let bumped_radius = f64::from_bits(radius.to_bits() + 1);
        prop_assert!(base != CoverKey::new(&p, bumped_radius, len, metric), "radius ULP");
        // Zero lat/lon would canonicalize; skip the bump there (the
        // signed-zero test owns that case).
        if p.lat() != 0.0 {
            let q = Point::new_unchecked(f64::from_bits(p.lat().to_bits() + 1), p.lon());
            prop_assert!(base != CoverKey::new(&q, radius, len, metric), "lat ULP");
        }
        if p.lon() != 0.0 {
            let q = Point::new_unchecked(p.lat(), f64::from_bits(p.lon().to_bits() + 1));
            prop_assert!(base != CoverKey::new(&q, radius, len, metric), "lon ULP");
        }
        // Discrete components distinguish too.
        prop_assert!(base != CoverKey::new(&p, radius, len + 1, metric), "len");
        let other = match metric {
            DistanceMetric::Euclidean => DistanceMetric::Haversine,
            DistanceMetric::Haversine => DistanceMetric::Euclidean,
        };
        prop_assert!(base != CoverKey::new(&p, radius, len, other), "metric");
    }
}
