//! Geohash cells: the bounding rectangle a geohash prefix denotes.
//!
//! Circle-cover construction (Section IV-B1) needs two geometric predicates
//! per candidate prefix: "can any point of this cell be within `r` of the
//! query?" (keep/expand) and "is the whole cell within `r`?" (useful for
//! cover statistics). Both reduce to point-to-rectangle minimum/maximum
//! distance, implemented here on top of the crate's distance metrics.

use crate::geohash::{decode, Geohash};
use crate::point::{DistanceMetric, Point};
use serde::{Deserialize, Serialize};

/// The axis-aligned lat/lon rectangle of a geohash prefix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    lat_lo: f64,
    lat_hi: f64,
    lon_lo: f64,
    lon_hi: f64,
}

impl Cell {
    /// The cell denoted by a geohash.
    pub fn from_geohash(gh: &Geohash) -> Self {
        let ((lat_lo, lat_hi), (lon_lo, lon_hi)) = decode(gh);
        Self { lat_lo, lat_hi, lon_lo, lon_hi }
    }

    /// A cell from explicit bounds. Intended for tests; callers must supply
    /// `lo <= hi` on both axes.
    pub fn from_bounds(lat_lo: f64, lat_hi: f64, lon_lo: f64, lon_hi: f64) -> Self {
        debug_assert!(lat_lo <= lat_hi && lon_lo <= lon_hi);
        Self { lat_lo, lat_hi, lon_lo, lon_hi }
    }

    /// Lower latitude bound (inclusive).
    pub fn lat_lo(&self) -> f64 {
        self.lat_lo
    }
    /// Upper latitude bound (exclusive in geohash terms).
    pub fn lat_hi(&self) -> f64 {
        self.lat_hi
    }
    /// Lower longitude bound (inclusive).
    pub fn lon_lo(&self) -> f64 {
        self.lon_lo
    }
    /// Upper longitude bound (exclusive in geohash terms).
    pub fn lon_hi(&self) -> f64 {
        self.lon_hi
    }

    /// Cell centre.
    pub fn center(&self) -> Point {
        Point::new_unchecked((self.lat_lo + self.lat_hi) / 2.0, (self.lon_lo + self.lon_hi) / 2.0)
    }

    /// Whether the point lies inside the cell (geohash half-open semantics:
    /// low edges inclusive, high edges exclusive).
    pub fn contains(&self, p: &Point) -> bool {
        self.lat_lo <= p.lat()
            && p.lat() < self.lat_hi
            && self.lon_lo <= p.lon()
            && p.lon() < self.lon_hi
    }

    /// The point of the cell closest to `p` (clamping on both axes).
    pub fn closest_point_to(&self, p: &Point) -> Point {
        let lat = p.lat().clamp(self.lat_lo, self.lat_hi);
        let lon = p.lon().clamp(self.lon_lo, self.lon_hi);
        Point::new_unchecked(lat, lon)
    }

    /// Minimum distance from `p` to any point of the cell, in km. Zero when
    /// `p` is inside.
    pub fn min_distance_km(&self, p: &Point, metric: DistanceMetric) -> f64 {
        p.distance_km(&self.closest_point_to(p), metric)
    }

    /// Maximum distance from `p` to any point of the cell, in km
    /// (the farthest corner).
    pub fn max_distance_km(&self, p: &Point, metric: DistanceMetric) -> f64 {
        let corners = [
            Point::new_unchecked(self.lat_lo, self.lon_lo),
            Point::new_unchecked(self.lat_lo, self.lon_hi.min(180.0)),
            Point::new_unchecked(self.lat_hi.min(90.0), self.lon_lo),
            Point::new_unchecked(self.lat_hi.min(90.0), self.lon_hi.min(180.0)),
        ];
        corners.iter().map(|c| p.distance_km(c, metric)).fold(0.0, f64::max)
    }

    /// Whether any part of the cell lies within `radius_km` of `center`.
    pub fn intersects_circle(
        &self,
        center: &Point,
        radius_km: f64,
        metric: DistanceMetric,
    ) -> bool {
        self.min_distance_km(center, metric) <= radius_km
    }

    /// Whether the entire cell lies within `radius_km` of `center`.
    pub fn within_circle(&self, center: &Point, radius_km: f64, metric: DistanceMetric) -> bool {
        self.max_distance_km(center, metric) <= radius_km
    }

    /// Approximate cell area in km², using the equirectangular projection at
    /// the cell's mean latitude. Used only for cover-quality statistics.
    pub fn area_km2(&self) -> f64 {
        use crate::point::EARTH_RADIUS_KM;
        let mean_lat = ((self.lat_lo + self.lat_hi) / 2.0).to_radians();
        let height = (self.lat_hi - self.lat_lo).to_radians() * EARTH_RADIUS_KM;
        let width = (self.lon_hi - self.lon_lo).to_radians() * mean_lat.cos() * EARTH_RADIUS_KM;
        (height * width).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geohash::encode;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    #[test]
    fn cell_of_encoded_point_contains_it() {
        let point = p(43.6839128037, -79.37356590);
        for len in 1..=8 {
            let cell = Cell::from_geohash(&encode(&point, len).unwrap());
            assert!(cell.contains(&point), "len {len}");
            assert_eq!(cell.min_distance_km(&point, DistanceMetric::Euclidean), 0.0);
        }
    }

    #[test]
    fn min_distance_zero_inside_positive_outside() {
        let cell = Cell::from_bounds(0.0, 1.0, 0.0, 1.0);
        assert_eq!(cell.min_distance_km(&p(0.5, 0.5), DistanceMetric::Euclidean), 0.0);
        let outside = p(2.0, 0.5);
        let d = cell.min_distance_km(&outside, DistanceMetric::Euclidean);
        // 1 degree of latitude is ~111 km.
        assert!((105.0..118.0).contains(&d), "distance was {d}");
    }

    #[test]
    fn min_distance_clamps_to_nearest_corner() {
        let cell = Cell::from_bounds(0.0, 1.0, 0.0, 1.0);
        let diag = p(2.0, 2.0);
        let to_corner = diag.euclidean_km(&p(1.0, 1.0));
        assert!((cell.min_distance_km(&diag, DistanceMetric::Euclidean) - to_corner).abs() < 1e-9);
    }

    #[test]
    fn max_distance_reaches_far_corner() {
        let cell = Cell::from_bounds(0.0, 1.0, 0.0, 1.0);
        let origin = p(0.0, 0.0);
        let far = origin.euclidean_km(&p(1.0, 1.0));
        assert!((cell.max_distance_km(&origin, DistanceMetric::Euclidean) - far).abs() < 1e-9);
    }

    #[test]
    fn min_le_max_distance() {
        let cell = Cell::from_geohash(&"6gxp".parse().unwrap());
        for point in [p(-23.9, -46.2), p(0.0, 0.0), p(-24.5, -47.0)] {
            for metric in [DistanceMetric::Euclidean, DistanceMetric::Haversine] {
                assert!(
                    cell.min_distance_km(&point, metric)
                        <= cell.max_distance_km(&point, metric) + 1e-9
                );
            }
        }
    }

    #[test]
    fn circle_predicates() {
        let cell = Cell::from_bounds(0.0, 1.0, 0.0, 1.0);
        let center = p(0.5, 0.5);
        // Cell diagonal half-extent is ~78 km; a 200 km circle swallows it.
        assert!(cell.within_circle(&center, 200.0, DistanceMetric::Euclidean));
        assert!(cell.intersects_circle(&center, 200.0, DistanceMetric::Euclidean));
        // A 10 km circle intersects but does not contain the cell.
        assert!(cell.intersects_circle(&center, 10.0, DistanceMetric::Euclidean));
        assert!(!cell.within_circle(&center, 10.0, DistanceMetric::Euclidean));
        // A far-away circle does neither.
        let far = p(50.0, 50.0);
        assert!(!cell.intersects_circle(&far, 10.0, DistanceMetric::Euclidean));
    }

    #[test]
    fn area_shrinks_with_length() {
        let point = p(40.0, -74.0);
        let a4 = Cell::from_geohash(&encode(&point, 4).unwrap()).area_km2();
        let a5 = Cell::from_geohash(&encode(&point, 5).unwrap()).area_km2();
        // One extra character = 32x finer subdivision.
        assert!((a4 / a5 - 32.0).abs() < 0.5, "ratio {}", a4 / a5);
    }

    #[test]
    fn center_is_inside() {
        let cell = Cell::from_geohash(&"u4pr".parse().unwrap());
        assert!(cell.contains(&cell.center()));
    }
}
