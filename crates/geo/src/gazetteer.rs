//! Place-name gazetteer: inferring implicit locations from text.
//!
//! The paper's Section VIII names this future-work direction: "There are
//! also tweets that lack longitude/latitude in the metadata but mention
//! place name(s) in the short content. It is worth studying how to exploit
//! the implicit spatial information in such tweets." This module implements
//! the classic dictionary approach: a gazetteer of place names (cities and
//! well-known landmarks) with representative coordinates, matched against
//! tweet text with multi-word names taking precedence over single words
//! ("new york" beats "york").
//!
//! A recovered location is a city-level estimate, far coarser than a GPS
//! fix; [`Inference::precision_km`] reports the expected error radius so
//! downstream scoring can discount it (or a caller can choose to index
//! recovered posts only for large-radius queries).

use crate::point::Point;
use std::collections::HashMap;

/// One inferred location.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// The inferred coordinate (the place's representative point).
    pub location: Point,
    /// The canonical place name that matched.
    pub place: String,
    /// Expected error radius of the inference, in kilometres.
    pub precision_km: f64,
}

/// A dictionary of place names to representative coordinates.
///
/// ```
/// use tklus_geo::Gazetteer;
///
/// let g = Gazetteer::builtin();
/// let inf = g.infer("Finally Toronto (at Clarion Hotel)").unwrap();
/// assert_eq!(inf.place, "toronto");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    /// name (lowercase, single-space-separated) -> (point, precision_km).
    entries: HashMap<String, (Point, f64)>,
    /// Longest entry name, in words, to bound n-gram probing.
    max_words: usize,
}

impl Gazetteer {
    /// An empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A built-in world gazetteer covering major cities (including every
    /// city the synthetic corpus generator uses) and a few landmarks.
    pub fn builtin() -> Self {
        let mut g = Self::new();
        const CITY_PRECISION_KM: f64 = 15.0;
        const LANDMARK_PRECISION_KM: f64 = 1.0;
        let cities: &[(&str, f64, f64)] = &[
            ("toronto", 43.6532, -79.3832),
            ("new york", 40.7128, -74.0060),
            ("nyc", 40.7128, -74.0060),
            ("los angeles", 34.0522, -118.2437),
            ("chicago", 41.8781, -87.6298),
            ("london", 51.5074, -0.1278),
            ("paris", 48.8566, 2.3522),
            ("sao paulo", -23.5505, -46.6333),
            ("tokyo", 35.6762, 139.6503),
            ("seoul", 37.5665, 126.9780),
            ("sydney", -33.8688, 151.2093),
            ("copenhagen", 55.6761, 12.5683),
            ("houston", 29.7604, -95.3698),
            ("berlin", 52.5200, 13.4050),
            ("madrid", 40.4168, -3.7038),
            ("rome", 41.9028, 12.4964),
            ("beijing", 39.9042, 116.4074),
            ("mumbai", 19.0760, 72.8777),
            ("mexico city", 19.4326, -99.1332),
            ("cairo", 30.0444, 31.2357),
            ("moscow", 55.7558, 37.6173),
            ("singapore", 1.3521, 103.8198),
            ("hong kong", 22.3193, 114.1694),
            ("san francisco", 37.7749, -122.4194),
            ("boston", 42.3601, -71.0589),
            ("seattle", 47.6062, -122.3321),
            ("vancouver", 49.2827, -123.1207),
            ("montreal", 45.5017, -73.5673),
            ("amsterdam", 52.3676, 4.9041),
            ("barcelona", 41.3851, 2.1734),
            ("dubai", 25.2048, 55.2708),
            ("istanbul", 41.0082, 28.9784),
            ("bangkok", 13.7563, 100.5018),
            ("buenos aires", -34.6037, -58.3816),
            ("aalborg", 57.0488, 9.9217),
        ];
        for &(name, lat, lon) in cities {
            g.add(name, Point::new_unchecked(lat, lon), CITY_PRECISION_KM);
        }
        let landmarks: &[(&str, f64, f64)] = &[
            ("times square", 40.7580, -73.9855),
            ("eiffel tower", 48.8584, 2.2945),
            ("central park", 40.7829, -73.9654),
            ("cn tower", 43.6426, -79.3871),
            ("golden gate bridge", 37.8199, -122.4783),
        ];
        for &(name, lat, lon) in landmarks {
            g.add(name, Point::new_unchecked(lat, lon), LANDMARK_PRECISION_KM);
        }
        g
    }

    /// Adds (or replaces) an entry. Names are normalized to lowercase with
    /// single spaces.
    pub fn add(&mut self, name: &str, location: Point, precision_km: f64) {
        let norm = normalize(name);
        assert!(!norm.is_empty(), "place name must contain words");
        self.max_words = self.max_words.max(norm.split(' ').count());
        self.entries.insert(norm, (location, precision_km));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Infers a location from free text. Scans every n-gram of the text
    /// (longest n-grams first, so "mexico city" wins over a hypothetical
    /// "mexico" entry); the earliest longest match wins.
    pub fn infer(&self, text: &str) -> Option<Inference> {
        let words: Vec<String> = normalize(text).split(' ').map(str::to_string).collect();
        if words.is_empty() || self.entries.is_empty() {
            return None;
        }
        for n in (1..=self.max_words.min(words.len())).rev() {
            for start in 0..=(words.len() - n) {
                let candidate = words[start..start + n].join(" ");
                if let Some(&(location, precision_km)) = self.entries.get(&candidate) {
                    return Some(Inference { location, place: candidate, precision_km });
                }
            }
        }
        None
    }
}

/// Lowercases and keeps only alphanumeric words, single-space-separated.
fn normalize(text: &str) -> String {
    text.chars()
        .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { ' ' })
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_infers_single_word_city() {
        let g = Gazetteer::builtin();
        let inf = g.infer("Finally Toronto (at Clarion Hotel)").unwrap();
        assert_eq!(inf.place, "toronto");
        assert!((inf.location.lat() - 43.6532).abs() < 1e-9);
        assert!(inf.precision_km > 1.0, "city matches are coarse");
    }

    #[test]
    fn multiword_names_beat_substrings() {
        let mut g = Gazetteer::new();
        g.add("york", Point::new_unchecked(53.96, -1.08), 10.0);
        g.add("new york", Point::new_unchecked(40.7128, -74.0060), 15.0);
        let inf = g.infer("greetings from New York city!").unwrap();
        assert_eq!(inf.place, "new york");
        // Plain "york" still matches alone.
        assert_eq!(g.infer("visiting york today").unwrap().place, "york");
    }

    #[test]
    fn landmarks_are_high_precision() {
        let g = Gazetteer::builtin();
        let inf = g.infer("watching the sunset at the Eiffel Tower").unwrap();
        assert_eq!(inf.place, "eiffel tower");
        assert!(inf.precision_km <= 1.0);
    }

    #[test]
    fn no_place_no_inference() {
        let g = Gazetteer::builtin();
        assert_eq!(g.infer("great pizza with friends tonight"), None);
        assert_eq!(g.infer(""), None);
        assert_eq!(Gazetteer::new().infer("toronto"), None);
    }

    #[test]
    fn punctuation_and_case_insensitive() {
        let g = Gazetteer::builtin();
        for text in ["TOKYO!!!", "#tokyo", "…tokyo,", "in Tokyo."] {
            assert_eq!(g.infer(text).unwrap().place, "tokyo", "{text:?}");
        }
    }

    #[test]
    fn earliest_longest_match_wins() {
        let g = Gazetteer::builtin();
        // Two cities mentioned: the earliest one at the longest n-gram
        // level wins deterministically.
        let inf = g.infer("flying from london to paris tomorrow").unwrap();
        assert_eq!(inf.place, "london");
    }

    #[test]
    fn custom_entries() {
        let mut g = Gazetteer::builtin();
        let before = g.len();
        g.add("Bloor Yorkville", Point::new_unchecked(43.6709, -79.3933), 0.5);
        assert_eq!(g.len(), before + 1);
        let inf = g.infer("I'm at Toronto Marriott Bloor Yorkville Hotel").unwrap();
        // The landmark (2 words) and the city (1 word) both match; the
        // 2-gram is probed first.
        assert_eq!(inf.place, "bloor yorkville");
    }

    #[test]
    #[should_panic(expected = "place name must contain words")]
    fn empty_name_rejected() {
        let mut g = Gazetteer::new();
        g.add("!!!", Point::new_unchecked(0.0, 0.0), 1.0);
    }
}
