//! Circle covers: the `GeoHashCircleQuery` primitive of Algorithms 4 and 5.
//!
//! "To answer a circle query, a set of prefixes need to be constructed which
//! completely covers the circle region while minimizing the area outside the
//! query region" (Section IV-B1). We descend the implicit geohash quadtree
//! (32-way at the character level) from the 32 root cells, pruning every
//! prefix whose cell lies entirely outside the circle, and emit the
//! surviving prefixes at the requested encoding length.
//!
//! The result is sorted in geohash (= Z-order) order, matching the sorted
//! `⟨geohash, term⟩` key layout of the inverted index so postings for a
//! cover are fetched in contiguous key ranges.

use crate::cell::Cell;
use crate::geohash::{Geohash, GeohashError, ALPHABET, MAX_GEOHASH_LEN};
use crate::point::{DistanceMetric, Point};

/// Quality statistics for a computed cover, used by the cover ablation bench
/// (how much area outside the circle does a given encoding length admit?).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverStats {
    /// Number of cells in the cover.
    pub cells: usize,
    /// Total area of the cover cells, km² (approximate).
    pub cover_area_km2: f64,
    /// Area of the query circle, km² (planar approximation).
    pub circle_area_km2: f64,
}

impl CoverStats {
    /// Ratio of cover area to circle area; 1.0 would be a perfect cover,
    /// larger values waste candidate tweets outside the query region.
    pub fn overcover_ratio(&self) -> f64 {
        if self.circle_area_km2 == 0.0 {
            f64::INFINITY
        } else {
            self.cover_area_km2 / self.circle_area_km2
        }
    }
}

/// A canonical cache key for a circle-cover computation: the cover of
/// Algorithms 4/5 is a pure function of `(center, radius, encoding length,
/// metric)`, so equal circles may share one memoized cover.
///
/// Canonicalization is deliberately conservative — raw IEEE-754 bit
/// patterns, with the single adjustment that `-0.0` folds onto `+0.0`
/// (the two compare equal and describe the same circle, but differ in
/// bits). Circles that differ by even one ULP of latitude, longitude, or
/// radius therefore get distinct keys: a cover is only reused for inputs
/// `circle_cover` itself would treat identically, never for "close
/// enough" ones.
///
/// ```
/// use tklus_geo::{CoverKey, DistanceMetric, Point};
///
/// let m = DistanceMetric::Euclidean;
/// let a = CoverKey::new(&Point::new_unchecked(0.0, -0.0), 10.0, 4, m);
/// let b = CoverKey::new(&Point::new_unchecked(-0.0, 0.0), 10.0, 4, m);
/// assert_eq!(a, b); // ±0.0 describe the same circle
/// let ulp = f64::from_bits(10.0f64.to_bits() + 1);
/// assert_ne!(a, CoverKey::new(&Point::new_unchecked(0.0, 0.0), ulp, 4, m));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoverKey {
    lat_bits: u64,
    lon_bits: u64,
    radius_bits: u64,
    len: u8,
    metric: DistanceMetric,
}

impl CoverKey {
    /// Builds the canonical key for `circle_cover(center, radius_km, len,
    /// metric)`.
    pub fn new(center: &Point, radius_km: f64, len: usize, metric: DistanceMetric) -> Self {
        // `-0.0 == 0.0`, so `x + 0.0` canonicalizes the zero sign while
        // leaving every other value's bits untouched.
        fn canon(x: f64) -> u64 {
            (x + 0.0).to_bits()
        }
        Self {
            lat_bits: canon(center.lat()),
            lon_bits: canon(center.lon()),
            radius_bits: canon(radius_km),
            len: len as u8,
            metric,
        }
    }
}

/// Computes the set of geohash cells of exactly `len` characters that
/// completely covers the circle of `radius_km` around `center`.
///
/// ```
/// use tklus_geo::{circle_cover, encode, DistanceMetric, Point};
///
/// let toronto = Point::new_unchecked(43.6839, -79.3736);
/// let cover = circle_cover(&toronto, 10.0, 4, DistanceMetric::Euclidean).unwrap();
/// // The centre's own cell is always covered.
/// assert!(cover.contains(&encode(&toronto, 4).unwrap()));
/// ```
///
/// Guarantees:
/// * **Completeness** — every point within `radius_km` of `center` lies in
///   some returned cell (up to the metric's precision).
/// * **Minimality at the given length** — no returned cell is entirely
///   outside the circle.
/// * The result is sorted and free of duplicates.
///
/// `radius_km` must be positive and finite; `len` must be in
/// `1..=MAX_GEOHASH_LEN`.
pub fn circle_cover(
    center: &Point,
    radius_km: f64,
    len: usize,
    metric: DistanceMetric,
) -> Result<Vec<Geohash>, GeohashError> {
    if len == 0 || len > MAX_GEOHASH_LEN {
        return Err(GeohashError::BadLength(len));
    }
    assert!(radius_km.is_finite() && radius_km > 0.0, "radius must be positive and finite");

    let mut out = Vec::new();
    // Depth-first descent keeps the output in Z-order without a final sort:
    // children() yields cells in Base32 order and we expand in order.
    let mut stack: Vec<Geohash> = root_cells().collect();
    stack.reverse();
    while let Some(gh) = stack.pop() {
        let cell = Cell::from_geohash(&gh);
        if !cell.intersects_circle(center, radius_km, metric) {
            continue;
        }
        if gh.len() == len {
            out.push(gh);
        } else {
            let mut kids = gh.children();
            kids.reverse();
            stack.extend(kids);
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    Ok(out)
}

/// Computes a cover plus its quality statistics.
pub fn circle_cover_with_stats(
    center: &Point,
    radius_km: f64,
    len: usize,
    metric: DistanceMetric,
) -> Result<(Vec<Geohash>, CoverStats), GeohashError> {
    let cover = circle_cover(center, radius_km, len, metric)?;
    let cover_area_km2 = cover.iter().map(|g| Cell::from_geohash(g).area_km2()).sum();
    let stats = CoverStats {
        cells: cover.len(),
        cover_area_km2,
        circle_area_km2: std::f64::consts::PI * radius_km * radius_km,
    };
    Ok((cover, stats))
}

/// The 32 length-1 geohash cells tiling the globe.
fn root_cells() -> impl Iterator<Item = Geohash> {
    (0..ALPHABET.len() as u64).map(|i| Geohash::from_low_bits(i, 1).expect("root cell"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geohash::encode;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    const M: DistanceMetric = DistanceMetric::Euclidean;

    #[test]
    fn cover_contains_cell_of_center() {
        let center = p(43.6839128037, -79.37356590);
        for len in 1..=5 {
            let cover = circle_cover(&center, 10.0, len, M).unwrap();
            let home = encode(&center, len).unwrap();
            assert!(cover.contains(&home), "len {len} cover missing the centre cell");
        }
    }

    #[test]
    fn cover_is_sorted_and_unique() {
        let center = p(40.7128, -74.0060);
        let cover = circle_cover(&center, 50.0, 5, M).unwrap();
        assert!(cover.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cover_is_complete_for_sampled_points() {
        // Every sampled point within the radius must fall in a covered cell.
        let center = p(48.8566, 2.3522);
        let radius = 20.0;
        let len = 5;
        let cover = circle_cover(&center, radius, len, M).unwrap();
        for dlat in -20..=20 {
            for dlon in -20..=20 {
                let q = p(center.lat() + dlat as f64 * 0.01, center.lon() + dlon as f64 * 0.015);
                if center.euclidean_km(&q) <= radius {
                    let cell = encode(&q, len).unwrap();
                    assert!(
                        cover.contains(&cell),
                        "point {q} ({} km) not covered",
                        center.euclidean_km(&q)
                    );
                }
            }
        }
    }

    #[test]
    fn cover_has_no_fully_outside_cells() {
        let center = p(35.6762, 139.6503);
        let radius = 15.0;
        let cover = circle_cover(&center, radius, 5, M).unwrap();
        for gh in &cover {
            let cell = Cell::from_geohash(gh);
            assert!(
                cell.min_distance_km(&center, M) <= radius,
                "cell {gh} is entirely outside the circle"
            );
        }
    }

    #[test]
    fn longer_encoding_gives_tighter_cover() {
        let center = p(43.7, -79.4);
        let radius = 10.0;
        let (_, s3) = circle_cover_with_stats(&center, radius, 3, M).unwrap();
        let (_, s4) = circle_cover_with_stats(&center, radius, 4, M).unwrap();
        let (_, s5) = circle_cover_with_stats(&center, radius, 5, M).unwrap();
        assert!(s3.overcover_ratio() >= s4.overcover_ratio());
        assert!(s4.overcover_ratio() >= s5.overcover_ratio());
        // More cells at longer lengths.
        assert!(s3.cells <= s4.cells && s4.cells <= s5.cells);
        // A length-5 cover of a 10 km circle should be reasonably tight.
        assert!(s5.overcover_ratio() < 2.0, "ratio {}", s5.overcover_ratio());
    }

    #[test]
    fn small_radius_short_length_single_cell_when_interior() {
        // A 0.1 km circle deep inside a length-3 cell is covered by cells
        // including that cell; at most a handful near edges.
        let center = p(43.7, -79.4);
        let cover = circle_cover(&center, 0.1, 3, M).unwrap();
        assert!(!cover.is_empty() && cover.len() <= 4, "got {} cells", cover.len());
        assert!(cover.contains(&encode(&center, 3).unwrap()));
    }

    #[test]
    fn cover_works_across_meridian() {
        let center = p(51.48, 0.0); // Greenwich
        let cover = circle_cover(&center, 10.0, 4, M).unwrap();
        // The cover must include cells on both sides (geohash 'u...' east,
        // 'g...' west of the prime meridian at this latitude).
        let has_east = cover.iter().any(|g| g.to_string().starts_with('u'));
        let has_west = cover.iter().any(|g| g.to_string().starts_with('g'));
        assert!(
            has_east && has_west,
            "cover: {:?}",
            cover.iter().map(|g| g.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_bad_length() {
        let center = p(0.0, 0.0);
        assert!(circle_cover(&center, 1.0, 0, M).is_err());
        assert!(circle_cover(&center, 1.0, 13, M).is_err());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_nonpositive_radius() {
        let _ = circle_cover(&p(0.0, 0.0), 0.0, 4, M);
    }

    #[test]
    fn haversine_and_euclidean_covers_similar_at_city_scale() {
        let center = p(43.7, -79.4);
        let a = circle_cover(&center, 10.0, 4, DistanceMetric::Euclidean).unwrap();
        let b = circle_cover(&center, 10.0, 4, DistanceMetric::Haversine).unwrap();
        // The two metrics differ by <1% at this scale; covers should be
        // nearly identical (allow a one-cell fringe difference).
        let a_set: std::collections::BTreeSet<_> = a.iter().collect();
        let b_set: std::collections::BTreeSet<_> = b.iter().collect();
        let sym_diff = a_set.symmetric_difference(&b_set).count();
        assert!(sym_diff <= 2, "covers differ by {sym_diff} cells");
    }
}
