//! Latitude/longitude points and the distance metrics used by TkLUS scoring.
//!
//! Definition 5 in the paper scores a tweet by `(r - ||q.l, p.l||) / r`,
//! where `||·,·||` is "the Euclidean distance between locations". Since the
//! experiments express radii in kilometres (5 km to 100 km), a raw Euclidean
//! distance over degrees would be dimensionally wrong; the conventional
//! reading, which we adopt, is Euclidean distance on a locally flat
//! (equirectangular) projection of the Earth. The paper also notes the
//! techniques "can be adapted to other distance metrics", so the metric is a
//! pluggable [`DistanceMetric`] everywhere downstream.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres (IUGG value), used by both metrics.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic location: latitude and longitude in decimal degrees.
///
/// Invariants: `lat ∈ [-90, 90]`, `lon ∈ [-180, 180]`, both finite. The
/// constructor enforces them; the fields are private so every `Point` in the
/// system is valid by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    lat: f64,
    lon: f64,
}

/// Error returned when constructing a [`Point`] from out-of-range or
/// non-finite coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCoordinate;

impl fmt::Display for InvalidCoordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("latitude must be in [-90, 90] and longitude in [-180, 180], both finite")
    }
}

impl std::error::Error for InvalidCoordinate {}

impl Point {
    /// Creates a point, validating ranges and finiteness.
    pub fn new(lat: f64, lon: f64) -> Result<Self, InvalidCoordinate> {
        if lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon)
        {
            Ok(Self { lat, lon })
        } else {
            Err(InvalidCoordinate)
        }
    }

    /// Creates a point, panicking on invalid input. Convenient for literals
    /// in tests and examples.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range or non-finite.
    pub fn new_unchecked(lat: f64, lon: f64) -> Self {
        Self::new(lat, lon).expect("coordinates out of range")
    }

    /// Latitude in decimal degrees, in `[-90, 90]`.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees, in `[-180, 180]`.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn haversine_km(&self, other: &Point) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Euclidean distance on an equirectangular projection, in kilometres.
    ///
    /// This is the paper's "Euclidean distance" made dimensionally sound: at
    /// city scale (the 5–100 km query radii of Section VI) it differs from
    /// haversine by well under 1%. Longitude wrap-around across the
    /// antimeridian is handled by taking the shorter direction.
    pub fn euclidean_km(&self, other: &Point) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let mut dlon = (self.lon - other.lon).abs();
        if dlon > 180.0 {
            dlon = 360.0 - dlon;
        }
        let dx = dlon.to_radians() * mean_lat.cos() * EARTH_RADIUS_KM;
        let dy = (self.lat - other.lat).to_radians() * EARTH_RADIUS_KM;
        (dx * dx + dy * dy).sqrt()
    }

    /// Distance under the given metric, in kilometres.
    #[inline]
    pub fn distance_km(&self, other: &Point, metric: DistanceMetric) -> f64 {
        match metric {
            DistanceMetric::Euclidean => self.euclidean_km(other),
            DistanceMetric::Haversine => self.haversine_km(other),
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.7}, {:.7})", self.lat, self.lon)
    }
}

/// The distance metric used for query-radius checks and distance scores.
///
/// The whole pipeline is generic over this; the paper's footnote 4 promises
/// exactly that adaptability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Euclidean distance on an equirectangular projection (paper default).
    #[default]
    Euclidean,
    /// Great-circle (haversine) distance.
    Haversine,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Point::new(90.01, 0.0).is_err());
        assert!(Point::new(-90.01, 0.0).is_err());
        assert!(Point::new(0.0, 180.01).is_err());
        assert!(Point::new(0.0, -180.01).is_err());
        assert!(Point::new(f64::NAN, 0.0).is_err());
        assert!(Point::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn accepts_boundary_values() {
        assert!(Point::new(90.0, 180.0).is_ok());
        assert!(Point::new(-90.0, -180.0).is_ok());
        assert!(Point::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zero_distance_to_self() {
        let a = p(43.6839128037, -79.37356590);
        assert_eq!(a.haversine_km(&a), 0.0);
        assert_eq!(a.euclidean_km(&a), 0.0);
    }

    #[test]
    fn haversine_known_value() {
        // Toronto City Hall to Four Seasons Hotel Toronto, roughly 2.4 km.
        let city_hall = p(43.6534, -79.3839);
        let four_seasons = p(43.6714, -79.3894);
        let d = city_hall.haversine_km(&four_seasons);
        assert!((2.0..2.6).contains(&d), "distance was {d}");
    }

    #[test]
    fn haversine_long_range_known_value() {
        // Copenhagen to Beijing is about 7200 km.
        let cph = p(55.6761, 12.5683);
        let pek = p(39.9042, 116.4074);
        let d = cph.haversine_km(&pek);
        assert!((7100.0..7300.0).contains(&d), "distance was {d}");
    }

    #[test]
    fn metrics_agree_at_city_scale() {
        let a = p(43.6534, -79.3839);
        let b = p(43.76, -79.21);
        let h = a.haversine_km(&b);
        let e = a.euclidean_km(&b);
        assert!((h - e).abs() / h < 0.01, "haversine={h} euclid={e}");
    }

    #[test]
    fn euclidean_handles_antimeridian() {
        let a = p(0.0, 179.9);
        let b = p(0.0, -179.9);
        // Shorter way around: 0.2 degrees of longitude at the equator,
        // roughly 22 km. The naive difference (359.8 degrees) would be
        // tens of thousands of km.
        let d = a.euclidean_km(&b);
        assert!((20.0..25.0).contains(&d), "distance was {d}");
    }

    #[test]
    fn distances_are_symmetric() {
        let a = p(43.6534, -79.3839);
        let b = p(40.7128, -74.0060);
        assert!((a.haversine_km(&b) - b.haversine_km(&a)).abs() < 1e-12);
        assert!((a.euclidean_km(&b) - b.euclidean_km(&a)).abs() < 1e-12);
    }

    #[test]
    fn metric_dispatch_matches_direct_calls() {
        let a = p(10.0, 20.0);
        let b = p(11.0, 21.0);
        assert_eq!(a.distance_km(&b, DistanceMetric::Euclidean), a.euclidean_km(&b));
        assert_eq!(a.distance_km(&b, DistanceMetric::Haversine), a.haversine_km(&b));
    }

    #[test]
    fn display_formats_coordinates() {
        let a = p(43.6839128037, -79.3735659);
        assert_eq!(format!("{a}"), "(43.6839128, -79.3735659)");
    }
}
