//! Geohash encoding: quadtree bit interleaving plus Base32.
//!
//! Section IV-B1 of the paper: a full-height quadtree over the lat/lon space
//! is encoded by appending two bits per level (a longitude halving and a
//! latitude halving), and every five bits become one character of the Base32
//! alphabet that "uses ten digits 0-9 and twenty-two letters (a-z excluding
//! a,i,l,o)". Points in proximity share prefixes, so a prefix tree over
//! geohashes doubles as a spatial index, and all points of a rectangular
//! area land in contiguous key ranges — the property the hybrid index's
//! on-disk layout exploits.
//!
//! The paper's worked example is reproduced in the tests: encoding
//! `(-23.994140625, -46.23046875)` at 20 bits yields the geohash `6gxp`
//! (Table IV lists its prefixes `6`, `6g`, `6gx`, `6gxp`).

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The Base32 alphabet used by geohash (digits plus a–z without a, i, l, o).
pub const ALPHABET: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash length in characters. Twelve characters is 60
/// bits, i.e. 30 longitude and 30 latitude halvings — far below a millimetre
/// of precision, and the most that fits a `u64` bit path.
pub const MAX_GEOHASH_LEN: usize = 12;

/// Errors arising when parsing or constructing a [`Geohash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeohashError {
    /// The requested or supplied length is zero or exceeds [`MAX_GEOHASH_LEN`].
    BadLength(usize),
    /// A character outside the geohash Base32 alphabet was encountered.
    BadChar(char),
}

impl fmt::Display for GeohashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeohashError::BadLength(n) => {
                write!(f, "geohash length must be 1..={MAX_GEOHASH_LEN}, got {n}")
            }
            GeohashError::BadChar(c) => write!(f, "character {c:?} is not in the geohash alphabet"),
        }
    }
}

impl std::error::Error for GeohashError {}

/// A geohash of 1 to [`MAX_GEOHASH_LEN`] characters, stored as a left-aligned
/// bit path.
///
/// The representation keeps the `5 * len` path bits in the *high* bits of a
/// `u64`. Because the Base32 alphabet is strictly increasing in ASCII, the
/// derived ordering — high-aligned bits first, then length — is exactly the
/// lexicographic order of the string form, so sorted collections of
/// `Geohash` keys cluster spatially adjacent cells together just like the
/// paper's HDFS key layout does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Geohash {
    /// Path bits, left-aligned: bit 63 is the first (longitude) decision.
    bits: u64,
    /// Number of Base32 characters, in `1..=MAX_GEOHASH_LEN`.
    len: u8,
}

impl Geohash {
    /// Builds a geohash from raw path bits given in the *low* `5 * len` bits
    /// of `low_bits` (most natural when composing characters).
    pub fn from_low_bits(low_bits: u64, len: usize) -> Result<Self, GeohashError> {
        if len == 0 || len > MAX_GEOHASH_LEN {
            return Err(GeohashError::BadLength(len));
        }
        let nbits = 5 * len as u32;
        debug_assert!(nbits == 64 || low_bits >> nbits == 0, "extra bits beyond the path");
        Ok(Self { bits: low_bits << (64 - nbits), len: len as u8 })
    }

    /// Number of characters.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Geohashes are never empty; kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of path bits (`5 * len`).
    #[inline]
    pub fn bit_len(&self) -> u32 {
        5 * self.len as u32
    }

    /// The path bits in the low `5 * len` bits.
    #[inline]
    pub fn low_bits(&self) -> u64 {
        self.bits >> (64 - self.bit_len())
    }

    /// The parent cell (one character shorter), or `None` for length-1 cells.
    pub fn parent(&self) -> Option<Geohash> {
        if self.len <= 1 {
            None
        } else {
            let len = self.len - 1;
            let keep = 5 * len as u32;
            Some(Geohash { bits: self.bits & (u64::MAX << (64 - keep)), len })
        }
    }

    /// Returns true if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Geohash) -> bool {
        if self.len > other.len {
            return false;
        }
        let keep = self.bit_len();
        (self.bits ^ other.bits) >> (64 - keep) == 0
    }

    /// The 32 children of this cell, in Base32 (= Z-order) order. Empty if
    /// already at [`MAX_GEOHASH_LEN`].
    pub fn children(&self) -> Vec<Geohash> {
        if self.len() >= MAX_GEOHASH_LEN {
            return Vec::new();
        }
        let len = self.len + 1;
        let shift = 64 - 5 * len as u32;
        (0u64..32).map(|c| Geohash { bits: self.bits | (c << shift), len }).collect()
    }

    /// The `i`-th character's 5-bit value (0-based).
    #[inline]
    fn char_value(&self, i: usize) -> u8 {
        debug_assert!(i < self.len());
        ((self.bits >> (64 - 5 * (i as u32 + 1))) & 0x1F) as u8
    }

    /// Truncates to the first `len` characters.
    pub fn truncate(&self, len: usize) -> Result<Geohash, GeohashError> {
        if len == 0 || len > self.len() {
            return Err(GeohashError::BadLength(len));
        }
        let keep = 5 * len as u32;
        Ok(Geohash { bits: self.bits & (u64::MAX << (64 - keep)), len: len as u8 })
    }
}

impl fmt::Display for Geohash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            f.write_str(
                std::str::from_utf8(
                    &ALPHABET[self.char_value(i) as usize..=self.char_value(i) as usize],
                )
                .unwrap(),
            )?;
        }
        Ok(())
    }
}

impl FromStr for Geohash {
    type Err = GeohashError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s.len() > MAX_GEOHASH_LEN {
            return Err(GeohashError::BadLength(s.len()));
        }
        let mut bits = 0u64;
        for ch in s.chars() {
            let v = decode_char(ch)?;
            bits = (bits << 5) | v as u64;
        }
        Geohash::from_low_bits(bits, s.len())
    }
}

fn decode_char(ch: char) -> Result<u8, GeohashError> {
    let lower = ch.to_ascii_lowercase();
    ALPHABET
        .iter()
        .position(|&a| a as char == lower)
        .map(|p| p as u8)
        .ok_or(GeohashError::BadChar(ch))
}

/// Encodes a point at the given character length.
///
/// ```
/// use tklus_geo::{encode, Point};
///
/// // The paper's worked example (Section IV-B1 / Table IV).
/// let p = Point::new_unchecked(-23.994140625, -46.23046875);
/// assert_eq!(encode(&p, 4).unwrap().to_string(), "6gxp");
/// ```
///
/// Bit semantics: the first bit splits the longitude range `[-180, 180]`
/// (0 = west half, 1 = east half), the second splits latitude `[-90, 90]`
/// (0 = south, 1 = north), alternating thereafter — the standard geohash
/// layout, equivalent to the paper's per-level two-bit quadrant labels.
pub fn encode(point: &Point, len: usize) -> Result<Geohash, GeohashError> {
    if len == 0 || len > MAX_GEOHASH_LEN {
        return Err(GeohashError::BadLength(len));
    }
    let nbits = 5 * len as u32;
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let mut bits = 0u64;
    for i in 0..nbits {
        bits <<= 1;
        if i % 2 == 0 {
            let mid = (lon_lo + lon_hi) / 2.0;
            if point.lon() >= mid {
                bits |= 1;
                lon_lo = mid;
            } else {
                lon_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            if point.lat() >= mid {
                bits |= 1;
                lat_lo = mid;
            } else {
                lat_hi = mid;
            }
        }
    }
    Geohash::from_low_bits(bits, len)
}

/// Decodes a geohash into the lat/lon ranges of its cell; returned as
/// `((lat_lo, lat_hi), (lon_lo, lon_hi))`. [`crate::Cell`] wraps this.
pub fn decode(gh: &Geohash) -> ((f64, f64), (f64, f64)) {
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let nbits = gh.bit_len();
    for i in 0..nbits {
        let bit = (gh.bits >> (63 - i)) & 1;
        if i % 2 == 0 {
            let mid = (lon_lo + lon_hi) / 2.0;
            if bit == 1 {
                lon_lo = mid;
            } else {
                lon_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            if bit == 1 {
                lat_lo = mid;
            } else {
                lat_hi = mid;
            }
        }
    }
    ((lat_lo, lat_hi), (lon_lo, lon_hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    #[test]
    fn paper_example_encodes_to_6gxp() {
        // Section IV-B1: (-23.994140625, -46.23046875) at 20 bits -> "6gxp".
        let gh = encode(&p(-23.994140625, -46.23046875), 4).unwrap();
        assert_eq!(gh.to_string(), "6gxp");
    }

    #[test]
    fn paper_table4_prefixes() {
        // Table IV: lengths 1..4 give 6, 6g, 6gx, 6gxp.
        let point = p(-23.994140625, -46.23046875);
        let expect = ["6", "6g", "6gx", "6gxp"];
        for (len, want) in (1..=4).zip(expect) {
            assert_eq!(encode(&point, len).unwrap().to_string(), want);
        }
    }

    #[test]
    fn known_geohash_values() {
        // Independently known geohash reference values.
        assert_eq!(encode(&p(57.64911, 10.40744), 11).unwrap().to_string(), "u4pruydqqvj");
        assert_eq!(encode(&p(42.6, -5.6), 5).unwrap().to_string(), "ezs42");
    }

    #[test]
    fn rejects_bad_lengths() {
        let point = p(0.0, 0.0);
        assert_eq!(encode(&point, 0), Err(GeohashError::BadLength(0)));
        assert_eq!(encode(&point, 13), Err(GeohashError::BadLength(13)));
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["6gxp", "u4pruydqqvj", "0", "zzzzzzzzzzzz", "ezs42"] {
            let gh: Geohash = s.parse().unwrap();
            assert_eq!(gh.to_string(), s);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        let a: Geohash = "6GXP".parse().unwrap();
        let b: Geohash = "6gxp".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_excluded_letters() {
        for bad in ["a", "6gai", "hello", "x l"] {
            assert!(
                matches!(bad.parse::<Geohash>(), Err(GeohashError::BadChar(_))),
                "{bad:?} should fail"
            );
        }
        assert!(matches!("".parse::<Geohash>(), Err(GeohashError::BadLength(0))));
    }

    #[test]
    fn parent_strips_last_char() {
        let gh: Geohash = "6gxp".parse().unwrap();
        assert_eq!(gh.parent().unwrap().to_string(), "6gx");
        let root: Geohash = "6".parse().unwrap();
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn prefix_relation() {
        let short: Geohash = "6g".parse().unwrap();
        let long: Geohash = "6gxp".parse().unwrap();
        let other: Geohash = "6h".parse().unwrap();
        assert!(short.is_prefix_of(&long));
        assert!(short.is_prefix_of(&short));
        assert!(!long.is_prefix_of(&short));
        assert!(!other.is_prefix_of(&long));
    }

    #[test]
    fn children_are_sorted_and_prefixed() {
        let gh: Geohash = "6g".parse().unwrap();
        let kids = gh.children();
        assert_eq!(kids.len(), 32);
        assert!(kids.windows(2).all(|w| w[0] < w[1]));
        assert!(kids.iter().all(|k| gh.is_prefix_of(k) && k.len() == 3));
        assert_eq!(kids[0].to_string(), "6g0");
        assert_eq!(kids[31].to_string(), "6gz");
    }

    #[test]
    fn children_empty_at_max_len() {
        let gh: Geohash = "zzzzzzzzzzzz".parse().unwrap();
        assert!(gh.children().is_empty());
    }

    #[test]
    fn ordering_matches_string_order() {
        let mut hashes: Vec<Geohash> = ["6gxp", "6g", "7", "6gx", "u4pr", "0", "zz", "6h"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        hashes.sort();
        let strings: Vec<String> = hashes.iter().map(|g| g.to_string()).collect();
        let mut by_string = strings.clone();
        by_string.sort();
        assert_eq!(strings, by_string);
    }

    #[test]
    fn decode_contains_encoded_point() {
        let point = p(43.6839128037, -79.37356590);
        for len in 1..=MAX_GEOHASH_LEN {
            let gh = encode(&point, len).unwrap();
            let ((lat_lo, lat_hi), (lon_lo, lon_hi)) = decode(&gh);
            assert!(lat_lo <= point.lat() && point.lat() < lat_hi, "lat out of cell at len {len}");
            assert!(lon_lo <= point.lon() && point.lon() < lon_hi, "lon out of cell at len {len}");
        }
    }

    #[test]
    fn truncate_equals_shorter_encode() {
        let point = p(-33.8688, 151.2093);
        let full = encode(&point, 8).unwrap();
        for len in 1..=8 {
            assert_eq!(full.truncate(len).unwrap(), encode(&point, len).unwrap());
        }
        assert!(full.truncate(0).is_err());
        assert!(full.truncate(9).is_err());
    }

    #[test]
    fn longer_hashes_give_smaller_cells() {
        let point = p(51.5074, -0.1278);
        let mut prev_area = f64::INFINITY;
        for len in 1..=8 {
            let gh = encode(&point, len).unwrap();
            let ((lat_lo, lat_hi), (lon_lo, lon_hi)) = decode(&gh);
            let area = (lat_hi - lat_lo) * (lon_hi - lon_lo);
            assert!(area < prev_area);
            prev_area = area;
        }
    }
}
