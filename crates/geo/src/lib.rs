//! Geospatial substrate for the TkLUS reproduction.
//!
//! This crate provides everything the hybrid spatial-keyword index in the
//! paper (Section IV-B) needs from the spatial side:
//!
//! * [`Point`] — a validated latitude/longitude pair with the distance
//!   metrics used by the scoring functions (Definition 5 uses Euclidean
//!   distance; we offer a projected-Euclidean metric in kilometres plus
//!   haversine).
//! * [`geohash`] — the quadtree-derived Geohash encoding the paper adapts:
//!   bit interleaving of longitude/latitude halvings followed by Base32
//!   encoding ("ten digits 0-9 and twenty-two letters a-z excluding a,i,l,o").
//! * [`Cell`] — the bounding box denoted by a geohash prefix, with
//!   point-to-cell distance computations used when covering a circular query
//!   region.
//! * [`cover`] — construction of the set of geohash prefixes that completely
//!   covers a circular query region while minimising the area outside it
//!   (Section IV-B1), the `GeoHashCircleQuery` primitive of Algorithms 4/5.
//! * [`zorder`] — Z-order (Morton) interleaving utilities underlying the
//!   geohash bit layout.
//! * [`gazetteer`] — place-name → coordinate inference for tweets that
//!   lack geo-tags but mention places in their text (the paper's Section
//!   VIII future-work direction).

pub mod cell;
pub mod cover;
pub mod gazetteer;
pub mod geohash;
pub mod point;
pub mod zorder;

pub use cell::Cell;
pub use cover::{circle_cover, circle_cover_with_stats, CoverKey, CoverStats};
pub use gazetteer::{Gazetteer, Inference};
pub use geohash::{decode, encode, Geohash, GeohashError, MAX_GEOHASH_LEN};
pub use point::{DistanceMetric, Point, EARTH_RADIUS_KM};
