//! Z-order (Morton) bit interleaving.
//!
//! Geohash is a Z-order curve over recursive longitude/latitude halvings:
//! even bit positions (0, 2, 4, …) hold longitude decisions and odd positions
//! hold latitude decisions. The paper cites the Z-order curve (Samet 2006)
//! as the mechanism behind constructing prefix sets covering a circular
//! region. These helpers implement the interleaving on `u32` coordinates and
//! are shared by [`crate::geohash`] and its tests.

/// Spreads the low 32 bits of `x` so bit `i` of the input lands at bit `2i`
/// of the output (the classic "part 1 by 1" bit trick).
#[inline]
pub fn spread(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collects every second bit (bits 0, 2, 4, …).
#[inline]
pub fn squash(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Interleaves `x` (even bit positions) and `y` (odd bit positions) into a
/// single Morton code. For geohash, `x` is the longitude path and `y` the
/// latitude path.
#[inline]
pub fn interleave(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Splits a Morton code back into its `(x, y)` components.
#[inline]
pub fn deinterleave(z: u64) -> (u32, u32) {
    (squash(z), squash(z >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_examples() {
        assert_eq!(spread(0), 0);
        assert_eq!(spread(1), 1);
        assert_eq!(spread(0b11), 0b101);
        assert_eq!(spread(0b101), 0b10001);
        assert_eq!(spread(u32::MAX), 0x5555_5555_5555_5555);
    }

    #[test]
    fn squash_inverts_spread() {
        for x in [0u32, 1, 2, 3, 0xDEAD_BEEF, u32::MAX, 0x8000_0000] {
            assert_eq!(squash(spread(x)), x);
        }
    }

    #[test]
    fn interleave_examples() {
        // x bits at even positions, y bits at odd.
        assert_eq!(interleave(0b1, 0b0), 0b01);
        assert_eq!(interleave(0b0, 0b1), 0b10);
        assert_eq!(interleave(0b11, 0b11), 0b1111);
        assert_eq!(interleave(0b10, 0b01), 0b0110);
    }

    #[test]
    fn deinterleave_inverts_interleave() {
        for (x, y) in [
            (0u32, 0u32),
            (1, 2),
            (12345, 67890),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
        ] {
            assert_eq!(deinterleave(interleave(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_preserves_locality_ordering_within_quadrant() {
        // Points in the same quadrant share the high interleaved bits.
        let a = interleave(0b1000, 0b1000);
        let b = interleave(0b1001, 0b1001);
        let c = interleave(0b0000, 0b0000);
        // a and b share the top 6 bits of an 8-bit Morton code; c does not.
        assert_eq!(a >> 2, b >> 2);
        assert_ne!(a >> 6, c >> 6);
    }
}
