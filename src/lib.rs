//! # TkLUS — Top-k Local User Search
//!
//! A faithful, from-scratch reproduction of *"Finding Top-k Local Users in
//! Geo-Tagged Social Media Data"* (Jiang, Lu, Yang, Cui — ICDE 2015) as a
//! Rust workspace. This facade crate re-exports every subsystem so examples
//! and downstream users can depend on a single crate:
//!
//! ```
//! use tklus::geo::Point;
//!
//! let toronto = Point::new_unchecked(43.6839128037, -79.37356590);
//! let gh = tklus::geo::encode(&toronto, 4).unwrap();
//! assert_eq!(gh.len(), 4);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every reproduced table and figure.

pub use tklus_core as core;
pub use tklus_gen as gen;
pub use tklus_geo as geo;
pub use tklus_graph as graph;
pub use tklus_index as index;
pub use tklus_mapreduce as mapreduce;
pub use tklus_metrics as metrics;
pub use tklus_model as model;
pub use tklus_serve as serve;
pub use tklus_shard as shard;
pub use tklus_storage as storage;
pub use tklus_text as text;
