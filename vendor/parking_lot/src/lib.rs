//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock`/`read`/`write` that
//! return guards directly (no `Result`). Internally these delegate to
//! `std::sync`; a poisoned lock (a panic while holding the guard) is
//! recovered rather than propagated, matching parking_lot's semantics of
//! not having poisoning at all.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn no_poisoning_on_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
