//! Offline stand-in for `serde`.
//!
//! Provides marker traits named `Serialize`/`Deserialize` plus the no-op
//! derive macros of the same names (real serde does the same dual-namespace
//! re-export). The traits carry no methods: nothing in this workspace
//! serializes through generic serde bounds — the one JSON ingestion path
//! parses via `serde_json::Value` explicitly.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` namespace stub.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace stub.
pub mod ser {
    pub use crate::Serialize;
}
