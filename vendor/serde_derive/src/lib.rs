//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types purely as
//! a forward-compatibility affordance — nothing in-tree consumes the trait
//! impls through generic bounds (the one real JSON path, `tklus-gen`'s ETL,
//! parses through `serde_json::Value` directly). These derives therefore
//! expand to nothing; they exist so `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` helper attributes keep compiling without crates.io
//! access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
