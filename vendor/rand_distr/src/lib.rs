//! Offline stand-in for `rand_distr` 0.4: the [`Normal`] and [`Zipf`]
//! distributions the corpus generator samples from.
//!
//! As with the vendored `rand`, streams are deterministic per seed but not
//! bit-compatible with upstream — every fixture in this repo was produced
//! through these implementations.

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can be sampled given a bit source.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid [`Normal`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Normal requires a finite mean and a finite non-negative std_dev")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Validates parameters; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Self { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the paired variate is discarded so that each call
        // consumes a fixed amount of the stream (keeps replay simple).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Invalid [`Zipf`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError;

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Zipf requires n >= 1 and a finite non-negative exponent")
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n`: P(k) ∝ k^(-s).
///
/// Sampling is inverse-CDF over a precomputed cumulative table — O(n)
/// memory at construction, O(log n) per sample. The generator builds one
/// instance per corpus, so the table cost is paid once.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf<F> {
    cumulative: Vec<F>,
}

impl Zipf<f64> {
    /// Validates parameters; `n` must be at least 1 and `s` finite, `>= 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(ZipfError);
        }
        let n = usize::try_from(n).map_err(|_| ZipfError)?;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        Ok(Self { cumulative })
    }
}

impl Distribution<f64> for Zipf<f64> {
    /// Returns the sampled rank as `f64`, in `1.0..=n`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cumulative.last().expect("n >= 1");
        let u: f64 = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        (idx.min(self.cumulative.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zipf_ranks_in_domain_and_skewed() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Zipf::new(100, 1.0).unwrap();
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            let r = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
            assert_eq!(r.fract(), 0.0, "ranks are integral");
            counts[r as usize - 1] += 1;
        }
        // Rank 1 should appear far more often than rank 50.
        assert!(counts[0] > 5 * counts[49], "c1={} c50={}", counts[0], counts[49]);
        // With s=1 and 50k draws, every low rank is hit.
        assert!(counts[..10].iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = Zipf::new(4, 0.0).unwrap();
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng) as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| (9_000..11_000).contains(&c)), "{counts:?}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
        assert!(Zipf::new(1, 2.0).is_ok());
    }
}
