//! Offline stand-in for `criterion` 0.5.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the criterion API surface the `crates/bench` microbenches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: per benchmark it calibrates an
//! iteration count (~5 ms per sample), takes `sample_size` samples, and
//! prints min/median ns-per-iter to stdout. No HTML reports, no
//! statistical regression testing — good enough for relative comparisons
//! on one machine, which is how this repo's benches are read.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function part and a parameter part.
    pub fn new<S: Display, P: Display>(function_id: S, parameter: P) -> Self {
        Self { label: format!("{function_id}/{parameter}") }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Calibrates, then times `self.samples` batches of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            // Aim straight for the target to keep calibration cheap.
            let grow = if elapsed < Duration::from_micros(50) { 16 } else { 4 };
            iters = iters.saturating_mul(grow);
        }
        self.results_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.results_ns.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.results_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{label:<50} median {median:>12.1} ns/iter  (min {min:.1}, {} samples)",
            sorted.len()
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, results_ns: Vec::new() };
    f(&mut b);
    b.report(label);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (separator line, matching criterion's API shape).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 20 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 20, f);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("free_standing", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_records_samples() {
        benches();
        let mut b = Bencher { samples: 4, results_ns: Vec::new() };
        b.iter(|| black_box(42));
        assert_eq!(b.results_ns.len(), 4);
        assert!(b.results_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("lone").label, "lone");
    }
}
