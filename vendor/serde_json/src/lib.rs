//! Offline stand-in for `serde_json`: a compact, self-contained JSON
//! parser producing a [`Value`] tree.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the subset of serde_json the workspace needs: parsing
//! line-delimited tweet JSON into a dynamically-typed [`Value`] (the ETL
//! extracts fields explicitly rather than through derived `Deserialize`).
//! The parser accepts the full JSON grammar: objects, arrays, strings with
//! escapes (including `\uXXXX` and surrogate pairs), numbers, booleans,
//! and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are unique; later duplicates win, as in serde_json.
    Object(BTreeMap<String, Value>),
}

/// A JSON number, preserving integer-ness so `u64` ids round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer without fraction/exponent.
    PosInt(u64),
    /// Negative integer without fraction/exponent.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Value {
    /// Member lookup on objects; `None` for any other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure, with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document from `input`. Trailing non-whitespace
/// is an error, as in serde_json.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through).
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        let num = if is_float {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("malformed number"))?)
        } else if let Some(neg) = text.strip_prefix('-') {
            let _ = neg;
            Number::NegInt(text.parse::<i64>().map_err(|_| self.err("integer overflow"))?)
        } else {
            Number::PosInt(text.parse::<u64>().map_err(|_| self.err("integer overflow"))?)
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tweet_shaped_object() {
        let v = from_str(
            r#"{"id": 123, "user_id": 7, "text": "at the hotel",
                "coordinates": {"lat": 43.7, "lon": -79.4},
                "in_reply_to_status_id": 100, "retweeted_status_id": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(123));
        assert_eq!(v.get("text").and_then(Value::as_str), Some("at the hotel"));
        let coords = v.get("coordinates").unwrap();
        assert_eq!(coords.get("lat").and_then(Value::as_f64), Some(43.7));
        assert_eq!(coords.get("lon").and_then(Value::as_f64), Some(-79.4));
        assert!(v.get("retweeted_status_id").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn u64_ids_roundtrip_exactly() {
        let v = from_str(&format!("{{\"id\": {}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn string_escapes() {
        let v = from_str(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = from_str(r#"[1, -2, 3.5, [true, false, null], {"k": []}]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(arr[3].as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nulls").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = from_str(" \t\r\n { \"a\" : 1 } \n").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
    }
}
