//! Offline stand-in for `proptest`: deterministic generate-and-check.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the proptest surface the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`,
//! range/tuple/regex-string strategies, [`collection`] strategies,
//! [`prop_oneof!`], `any::<T>()`, and [`ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case reports its case number and the
//!   per-test seed; reruns are deterministic, so failures reproduce;
//! * string strategies support the regex subset the tests use
//!   (concatenations of `.`, `[a-z0-9A-Z]`-style classes, and literals,
//!   each with an optional `{m,n}` quantifier);
//! * case count defaults to 64 (upstream 256) to keep CI fast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies; deterministic per test name.
pub type TestRng = StdRng;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the string is the panic message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the runner retries.
    Reject,
}

/// Runner configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Builds the deterministic per-test RNG (helper for the [`proptest!`]
/// expansion, so calling crates need no direct `rand` dependency).
pub fn rng_for(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Generates `T` uniformly over its whole domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for FullRange<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The full-domain strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy: &str literals are strategies.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CharSet {
    /// `.` — a broad palette of printable ASCII plus some Unicode.
    Any,
    /// `[a-zA-Z0-9]`-style class, as inclusive char ranges.
    Ranges(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

impl CharSet {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Lit(c) => *c,
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick).expect("class range is valid");
                    }
                    pick -= span;
                }
                unreachable!("pick < total")
            }
            CharSet::Any => {
                // Weighted palette: mostly printable ASCII (including
                // uppercase and punctuation, to stress tokenizers), with
                // some whitespace, accented letters, CJK, and emoji.
                match rng.gen_range(0u32..100) {
                    0..=69 => char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("ascii"),
                    70..=79 => *['\t', '\n', ' ', ' '].get(rng.gen_range(0..4)).expect("len 4"),
                    80..=89 => char::from_u32(rng.gen_range(0xC0u32..0x17F)).expect("latin ext"),
                    90..=95 => char::from_u32(rng.gen_range(0x4E00u32..0x4FFF)).expect("cjk"),
                    _ => char::from_u32(rng.gen_range(0x1F600u32..0x1F640)).expect("emoji"),
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pattern:?}");
                i += 1; // ']'
                CharSet::Ranges(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern:?}");
                let c = chars[i];
                i += 1;
                CharSet::Lit(c)
            }
            c => {
                i += 1;
                CharSet::Lit(c)
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.set.generate(rng));
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection::vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size bounds accepted by the collection strategies.
    pub trait SizeRange {
        /// Draws a target size.
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s; the target size is best-effort (duplicates
    /// are retried a bounded number of times, as in upstream proptest).
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A set of roughly `size` elements drawn from `element`.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample_size(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some` otherwise
    /// (upstream's default `Some` probability is 0.75 too).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` values drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case with a message; `prop_assert!(cond)` or
/// `prop_assert!(cond, "fmt {args}")`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Rejects the current case (the runner draws fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$first_meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $(#[$first_meta])* fn $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng: $crate::TestRng = $crate::rng_for(seed);
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20);
                while passed < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest {}: too many prop_assume! rejections ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (seed {:#x}): {}",
                                stringify!($name), attempts, seed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{3,30}".generate(&mut rng);
            assert!((3..=30).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let t = ".{0,200}".generate(&mut rng);
            assert!(t.chars().count() <= 200);
            let u = "[a-zA-Z0-9]{5}".generate(&mut rng);
            assert_eq!(u.len(), 5);
            assert!(u.bytes().all(|b| b.is_ascii_alphanumeric()));
            let v = "ab[0-9]{2}".generate(&mut rng);
            assert!(v.starts_with("ab") && v.len() == 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (1usize..=4, -2i32..3)) {
            prop_assert!(x < 100);
            prop_assert!((1..=4).contains(&a));
            prop_assert!((-2..3).contains(&b));
        }

        #[test]
        fn oneof_map_and_collections(
            v in crate::collection::vec(prop_oneof![0u8..10, 200u8..=255], 0..50),
            s in crate::collection::btree_set(0u32..1000, 0..64),
            y in any::<u64>().prop_map(|n| n % 7),
        ) {
            prop_assert!(v.iter().all(|&e| !(10..200).contains(&e)));
            prop_assert!(s.len() < 64);
            prop_assert!(y < 7);
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() <= 49, "len={}", v.len());
        }
    }
}
