//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the slice of the rand API the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via splitmix64),
//! the [`Rng`] extension surface (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`).
//!
//! Determinism contract: for a fixed seed the output stream is fixed
//! forever within this repository (corpus generation and tests depend on
//! it). The stream is NOT bit-compatible with upstream rand — all seeds in
//! this repo produced their fixtures through this implementation.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types with uniform range sampling, for [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Widening-multiply (Lemire-style) bounded draw; bias is < 2^-64 per call,
/// far below anything the statistical tests in this repo can resolve.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing sampling methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value from `range`. Panics on empty ranges.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with splitmix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices; implemented for `[T]`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements (clamped to `len`) in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table: first `amount`
            // slots end up holding a uniform random sample.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes_and_rough_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn slice_random_surface() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool: Vec<u32> = (0..50).collect();
        assert!(pool.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let picked: Vec<&u32> = pool.choose_multiple(&mut rng, 10).collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "choose_multiple must not repeat");
        // Over-asking clamps to len.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 50);
        let mut arr: Vec<u32> = (0..100).collect();
        arr.shuffle(&mut rng);
        let mut sorted = arr.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(arr, sorted, "a 100-element shuffle staying sorted is ~impossible");
    }
}
